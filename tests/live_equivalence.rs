//! Live-mode equivalence and stopping-rule soundness (DESIGN.md §16).
//!
//! The live analyzer's contract has two halves:
//!
//! 1. **Equivalence** — with stopping disabled, a run through the
//!    [`LiveAnalyzer`] sink must produce a final analysis **bit-identical**
//!    to the offline `analyze_stream` path over the same trace, at any
//!    thread count and for any seed. The online machinery (warmup seeding,
//!    incremental centers, drift re-formation) drives only the stop
//!    decision; it must never leak into the output.
//! 2. **Soundness** — when the early stop fires, the half-width the
//!    analyzer claimed must survive an independent two-pass recomputation
//!    over exactly the units seen at stop, and the stop must never fire
//!    while any non-empty live phase holds fewer than 2 units.
//!
//! The thread-count tests mutate the process-wide worker override, so they
//! serialize on a lock (same discipline as `parallel_equivalence.rs`).

use std::sync::Mutex;

use proptest::prelude::*;

use simprof::core::{LiveAnalyzer, LiveConfig, SimProf, SimProfConfig};
use simprof::engine::MethodId;
use simprof::profiler::{ProfileTrace, ProfilerConfig, SamplingUnit, UnitSink};
use simprof::sim::Counters;

static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// A synthetic phase-structured trace: `behaviours` latent method
/// signatures, each with its own CPI plateau plus deterministic jitter.
fn structured_trace(units: usize, behaviours: usize, seed: u64) -> ProfileTrace {
    const UNIT_INSTRS: u64 = 1_000;
    let units = (0..units as u64)
        .map(|i| {
            let b = (i as usize) % behaviours;
            let jitter = (i.wrapping_mul(0x9E37_79B9).wrapping_add(seed)) % 37;
            let cycles = UNIT_INSTRS * (10 + 3 * b as u64) / 10 + jitter;
            SamplingUnit {
                id: i,
                histogram: vec![(MethodId(0), 8), (MethodId(1 + b as u32), 12)],
                snapshots: 20,
                counters: Counters { instructions: UNIT_INSTRS, cycles, ..Default::default() },
                slices: Vec::new(),
                truncated: false,
                dropped_snapshots: 0,
            }
        })
        .collect();
    ProfileTrace { unit_instrs: UNIT_INSTRS, snapshot_instrs: 50, core: 0, units }
}

fn live_over(trace: &ProfileTrace, cfg: SimProfConfig) -> LiveAnalyzer {
    let profiler = ProfilerConfig {
        unit_instrs: trace.unit_instrs,
        snapshot_instrs: trace.snapshot_instrs,
        core: trace.core,
    };
    let mut live = LiveAnalyzer::new(cfg, profiler);
    for u in &trace.units {
        if live.stop_requested() {
            break;
        }
        live.accept(u);
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identity: live (stopping disabled) equals offline, across
    /// random seeds, trace sizes, and behaviour counts.
    #[test]
    fn live_equals_offline_with_stopping_disabled(
        seed in any::<u64>(),
        units in 20usize..160,
        behaviours in 1usize..5,
    ) {
        let trace = structured_trace(units, behaviours, seed);
        let cfg = SimProfConfig {
            seed,
            live: Some(LiveConfig { warmup_units: 16, ..Default::default() }),
            ..Default::default()
        };
        let offline = SimProf::new(cfg).analyze(&trace).unwrap();
        let mut live = live_over(&trace, cfg);
        let (analysis, report) = live.finalize().unwrap();
        prop_assert!(!report.stopped_early, "stopping is disabled");
        prop_assert_eq!(report.units_profiled, trace.units.len());
        prop_assert_eq!(&analysis.cpis, &offline.cpis);
        prop_assert_eq!(&analysis.model.assignments, &offline.model.assignments);
        prop_assert_eq!(&analysis.model.centers, &offline.model.centers);
        prop_assert_eq!(&analysis.model.space, &offline.model.space);
        prop_assert_eq!(&analysis.stats, &offline.stats);
        prop_assert_eq!(&analysis.weights, &offline.weights);
    }

    /// Soundness: whenever the early stop fires, the claimed half-width
    /// matches an independent two-pass recomputation over exactly the
    /// units seen at stop, the claimed target is really met, and no live
    /// phase holds fewer than 2 units.
    #[test]
    fn early_stop_is_never_premature(
        seed in any::<u64>(),
        units in 100usize..240,
        behaviours in 1usize..4,
        target_rel_err in 0.02f64..0.2,
    ) {
        let trace = structured_trace(units, behaviours, seed);
        let cfg = SimProfConfig {
            seed,
            live: Some(LiveConfig {
                warmup_units: 24,
                target_rel_err,
                z: 1.96,
                ..Default::default()
            }),
            ..Default::default()
        };
        let live = live_over(&trace, cfg);
        let report = live.report();
        if !report.stopped_early {
            return;
        }
        let n = report.units_profiled;
        prop_assert!(n < trace.units.len() || n == trace.units.len());
        let asg = live.live_assignments();
        prop_assert_eq!(asg.len(), n);

        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); live.live_k()];
        for i in 0..n {
            let u = &trace.units[i];
            buckets[asg[i]].push(u.counters.cycles as f64 / u.counters.instructions as f64);
        }
        let mut se2 = 0.0;
        for b in &buckets {
            if b.is_empty() {
                continue;
            }
            prop_assert!(b.len() >= 2, "stop fired with a 1-unit phase");
            let m = b.iter().sum::<f64>() / b.len() as f64;
            let var = b.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (b.len() - 1) as f64;
            let w = b.len() as f64 / n as f64;
            se2 += w * w * var / b.len() as f64;
        }
        let oracle_hw = 1.96 * se2.sqrt();
        let stated = report.live_half_width.expect("half-width stated at stop");
        // Streaming (Σx, Σx²) vs two-pass variance: tiny FP slack only.
        prop_assert!(
            (stated - oracle_hw).abs() <= 1e-6 * oracle_hw.max(1e-9),
            "claimed hw {} vs recomputed {}", stated, oracle_hw
        );
        let all: Vec<f64> = buckets.concat();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        prop_assert!(
            oracle_hw <= target_rel_err * mean * (1.0 + 1e-9),
            "stop fired before the target: hw {} vs target {}", oracle_hw, target_rel_err * mean
        );
    }
}

/// Bit-identity holds at 1 and N worker threads: the live analyzer is
/// single-threaded by construction, and the offline finalize path obeys
/// the workspace-wide determinism contract.
#[test]
fn live_output_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let trace = structured_trace(180, 3, 11);
    let cfg = SimProfConfig {
        seed: 11,
        live: Some(LiveConfig { warmup_units: 32, ..Default::default() }),
        ..Default::default()
    };
    let run = || {
        let mut live = live_over(&trace, cfg);
        let (analysis, _) = live.finalize().unwrap();
        (analysis.cpis, analysis.model.assignments, analysis.model.centers, analysis.stats)
    };
    rayon::set_threads(1);
    let one = run();
    let offline_one = SimProf::new(cfg).analyze(&trace).unwrap();
    for threads in [4, 8] {
        rayon::set_threads(threads);
        let many = run();
        assert_eq!(one, many, "live output diverged between 1 and {threads} threads");
    }
    rayon::set_threads(0);
    assert_eq!(one.0, offline_one.cpis);
    assert_eq!(one.1, offline_one.model.assignments);
}

/// A regime change the warmup never saw triggers re-formation, and the
/// final analysis still equals the offline one.
#[test]
fn drift_reformation_preserves_equivalence() {
    let mut trace = structured_trace(120, 2, 5);
    // Splice in a new behaviour after unit 120: method 9, CPI ≈ 5.
    for i in 120..300u64 {
        trace.units.push(SamplingUnit {
            id: i,
            histogram: vec![(MethodId(0), 8), (MethodId(9), 12)],
            snapshots: 20,
            counters: Counters {
                instructions: 1_000,
                cycles: 5_000 + (i % 23),
                ..Default::default()
            },
            slices: Vec::new(),
            truncated: false,
            dropped_snapshots: 0,
        });
    }
    let cfg = SimProfConfig {
        seed: 5,
        live: Some(LiveConfig { warmup_units: 32, drift_threshold: 0.2, ..Default::default() }),
        ..Default::default()
    };
    let mut live = live_over(&trace, cfg);
    let (analysis, report) = live.finalize().unwrap();
    assert!(report.reformations > 0, "regime change must re-form phases");
    let offline = SimProf::new(cfg).analyze(&trace).unwrap();
    assert_eq!(analysis.cpis, offline.cpis);
    assert_eq!(analysis.model.assignments, offline.model.assignments);
    assert_eq!(analysis.stats, offline.stats);
}
