//! The observability layer must be a pure observer: running the pipeline
//! under a reporting session produces bit-identical results to running it
//! with observability disabled, and the session's report still covers every
//! pipeline stage.

use simprof::core::{SimProf, SimProfConfig};
use simprof::obs;
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

/// Profile → phases → points → estimate, serialized canonically so any
/// perturbation — a reordered tie-break, a consumed RNG draw, a rounded
/// float — shows up as a byte difference.
fn run_pipeline() -> String {
    let cfg = WorkloadConfig::tiny(11);
    let trace = Benchmark::Grep.run(Framework::Spark, &cfg);
    let analysis = SimProf::new(SimProfConfig { seed: 3, ..Default::default() })
        .analyze(&trace)
        .expect("valid trace");
    let points = analysis.select_points(8, 21);
    let est = analysis.estimate(&points, 3.0);
    format!(
        "{}\n{}\n{}\n{}",
        serde_json::to_string(&trace).unwrap(),
        serde_json::to_string(&points).unwrap(),
        serde_json::to_string(&est).unwrap(),
        serde_json::to_string(&analysis.allocation_table(&points)).unwrap(),
    )
}

#[test]
fn reporting_session_does_not_perturb_the_pipeline() {
    assert!(!obs::enabled(), "observability starts disabled");
    let baseline = run_pipeline();

    let session = obs::Session::begin();
    assert!(obs::enabled(), "session enables collection");
    let observed = run_pipeline();
    let report = session.finish();
    assert!(!obs::enabled(), "finish disables collection again");

    assert_eq!(baseline, observed, "observed run must be bit-identical to the unobserved run");

    // The session saw every pipeline stage while changing none of them.
    for span in ["engine.run", "core.analyze", "core.form_phases", "core.select_points"] {
        assert!(report.find_span(span).is_some(), "report lacks span `{span}`");
    }
    assert!(report.metrics.counters.contains_key("core.units_analyzed"));

    // And a rerun after the session closed is still byte-identical.
    assert_eq!(baseline, run_pipeline(), "pipeline output must not drift after a session");
}
