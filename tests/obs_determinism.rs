//! The observability layer must be a pure observer: running the pipeline
//! under a reporting session produces bit-identical results to running it
//! with observability disabled, and the session's report still covers every
//! pipeline stage.

use simprof::core::{SimProf, SimProfConfig};
use simprof::obs;
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

/// Both tests claim the process default slot via the legacy `Session`
/// shim (which now fails fast with `SessionBusy` instead of blocking), so
/// they serialize explicitly here.
static SESSION: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Profile → phases → points → estimate, serialized canonically so any
/// perturbation — a reordered tie-break, a consumed RNG draw, a rounded
/// float — shows up as a byte difference.
fn run_pipeline() -> String {
    let cfg = WorkloadConfig::tiny(11);
    let trace = Benchmark::Grep.run(Framework::Spark, &cfg);
    let analysis = SimProf::new(SimProfConfig { seed: 3, ..Default::default() })
        .analyze(&trace)
        .expect("valid trace");
    let points = analysis.select_points(8, 21);
    let est = analysis.estimate(&points, 3.0);
    format!(
        "{}\n{}\n{}\n{}",
        serde_json::to_string(&trace).unwrap(),
        serde_json::to_string(&points).unwrap(),
        serde_json::to_string(&est).unwrap(),
        serde_json::to_string(&analysis.allocation_table(&points)).unwrap(),
    )
}

#[test]
fn reporting_session_does_not_perturb_the_pipeline() {
    let _serial = SESSION.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(!obs::enabled(), "observability starts disabled");
    let baseline = run_pipeline();

    let session = obs::Session::begin().expect("no concurrent session");
    assert!(obs::enabled(), "session enables collection");
    let observed = run_pipeline();
    let report = session.finish();
    assert!(!obs::enabled(), "finish disables collection again");

    assert_eq!(baseline, observed, "observed run must be bit-identical to the unobserved run");

    // The session saw every pipeline stage while changing none of them.
    for span in ["engine.run", "core.analyze", "core.form_phases", "core.select_points"] {
        assert!(report.find_span(span).is_some(), "report lacks span `{span}`");
    }
    assert!(report.metrics.counters.contains_key("core.units_analyzed"));

    // And a rerun after the session closed is still byte-identical.
    assert_eq!(baseline, run_pipeline(), "pipeline output must not drift after a session");
}

#[test]
fn event_streaming_and_timeline_export_do_not_perturb_the_pipeline() {
    let _serial = SESSION.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Force a real worker pool so the run exercises the parallel regions
    // (and their span hooks) even on a single-core host.
    rayon::set_threads(2);
    let baseline = run_pipeline();

    let dir = std::env::temp_dir().join("simprof_obs_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let events_path = dir.join("events.jsonl");
    let timeline_path = dir.join("timeline.json");

    // Full sink stack live: session + streaming JSONL event sink, with the
    // Chrome-trace export run afterwards from the finished report.
    let session = obs::Session::begin().expect("no concurrent session");
    let sink = obs::JsonlEventWriter::create(&events_path).expect("create event log");
    obs::events::install(Box::new(sink));
    assert!(obs::event_streaming(), "sink installation enables streaming");
    let observed = run_pipeline();
    let report = session.finish();
    assert!(!obs::event_streaming(), "finish uninstalls the sink");
    obs::write_chrome_trace(&report, &timeline_path).expect("write timeline");
    rayon::set_threads(0);

    assert_eq!(
        baseline, observed,
        "run with event streaming must be bit-identical to the unobserved run"
    );

    // The streamed log is real: meta header first, then span and counter
    // records with strictly increasing sequence numbers.
    let log = std::fs::read_to_string(&events_path).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert!(lines.len() > 2, "event log captured the run");
    assert!(lines[0].contains("\"meta\""), "first record is the meta header: {}", lines[0]);
    assert!(log.contains("span_open"), "log carries span_open records");
    assert!(log.contains("span_close"), "log carries span_close records");
    assert!(log.contains("counter"), "log carries counter records");
    let seqs: Vec<u64> = lines
        .iter()
        .map(|l| {
            let v: serde_json::Value = serde_json::from_str(l).expect("record parses");
            v.get("seq").and_then(serde_json::Value::as_u64).expect("record has seq")
        })
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq strictly increasing");

    // Worker-thread attribution made it through: the report holds a
    // parallel.worker span on a different thread than the driver's spans,
    // and the timeline names the worker's tid. (Thread ids are assigned on
    // first span entry, so the driver is identified by its engine.run span
    // rather than assumed to be id 0.)
    let worker = report.find_span("parallel.worker").expect("report records a worker span");
    let driver = report.find_span("engine.run").expect("report records the engine span");
    assert_ne!(worker.thread, driver.thread, "worker span is not on the driver thread");
    let timeline = std::fs::read_to_string(&timeline_path).unwrap();
    assert!(timeline.contains("traceEvents"));
    assert!(timeline.contains("worker-"), "timeline names a worker thread");

    let _ = std::fs::remove_file(&events_path);
    let _ = std::fs::remove_file(&timeline_path);

    // A rerun with everything torn down is still byte-identical.
    assert_eq!(baseline, run_pipeline(), "pipeline output must not drift after streaming");
}
