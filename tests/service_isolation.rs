//! The service layer's two determinism contracts, end to end through the
//! facade crate:
//!
//! 1. **Concurrency isolation** — K seeded jobs served on K worker
//!    threads each write a shard bit-identical to the same job run alone
//!    in its own store. Any cross-job leak (shared RNG state, a sink
//!    observing a neighbor, context bleed through the thread pool) shows
//!    up as a byte diff.
//! 2. **Service ≡ batch** — a job served through the [`JobRunner`] writes
//!    exactly the bytes `simprof profile` writes for the same
//!    workload/scale/seed, so traces are interchangeable between the two
//!    entry points.
//! 3. **Fleet-report determinism** — under a [`ScriptedClock`] the
//!    serialized [`FleetReport`] is byte-identical whether the fleet ran
//!    on one worker or K, and its per-tenant byte totals equal the
//!    store's own accounting (DESIGN.md §18).

use std::sync::Arc;

use proptest::prelude::*;

use simprof::obs::FleetReport;
use simprof::service::{fleet_report, JobRunner, JobSpec, ScriptedClock, TraceStore};
use simprof::trace::TraceReader;
use simprof::workloads::WorkloadId;

fn tmp_root(name: &str) -> String {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_str().unwrap().to_owned()
}

fn spec(id: &str, workload: &str, seed: u64, codec: Option<&str>) -> JobSpec {
    let mut s = JobSpec::new(id, workload);
    s.seed = Some(seed);
    s.scale = Some("tiny".into());
    s.codec = codec.map(str::to_owned);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// K jobs with arbitrary seeds/workloads/codecs, served at K-way
    /// concurrency, are each bit-identical to their solo run.
    #[test]
    fn concurrent_jobs_are_bit_identical_to_solo_runs(
        seeds in proptest::collection::vec(0u64..1000, 2..5),
        picks in proptest::collection::vec(0usize..12, 2..5),
        lz_mask in any::<u8>(),
    ) {
        let k = seeds.len().min(picks.len());
        let workloads = WorkloadId::all();
        let specs: Vec<JobSpec> = (0..k)
            .map(|i| {
                let codec = if lz_mask & (1 << i) != 0 { Some("lz") } else { None };
                spec(
                    &format!("prop-{i}"),
                    &workloads[picks[i] % workloads.len()].label(),
                    seeds[i],
                    codec,
                )
            })
            .collect();

        let fleet_root = tmp_root(&format!("simprof_svc_prop_fleet_{}", std::process::id()));
        let fleet = JobRunner::new(TraceStore::create(&fleet_root).unwrap())
            .with_max_concurrent(k);
        let results = fleet.run(&specs);
        for r in &results {
            prop_assert!(r.is_ok(), "{r:?}");
        }
        fleet.store().write_index().unwrap();
        let check = TraceStore::validate(&fleet_root).unwrap();
        prop_assert!(check.clean(), "store problems: {:?}", check.problems);

        for s in &specs {
            let solo_root = tmp_root(&format!("simprof_svc_prop_solo_{}", std::process::id()));
            let solo = JobRunner::new(TraceStore::create(&solo_root).unwrap());
            let res = solo.run(std::slice::from_ref(s));
            prop_assert!(res[0].is_ok(), "{:?}", res[0]);
            let fleet_bytes = std::fs::read(fleet.store().shard_path(&s.id)).unwrap();
            let solo_bytes = std::fs::read(solo.store().shard_path(&s.id)).unwrap();
            prop_assert_eq!(
                &fleet_bytes,
                &solo_bytes,
                "job `{}` diverged under {}-way concurrency",
                s.id,
                k
            );
            let _ = std::fs::remove_dir_all(&solo_root);
        }
        let _ = std::fs::remove_dir_all(&fleet_root);
    }
}

/// A job served through the runner writes exactly the bytes the batch CLI
/// writes for the same workload/scale/seed — the two entry points share
/// one trace contract.
#[test]
fn service_job_matches_batch_cli_trace_bytes() {
    let root = tmp_root("simprof_svc_cli_equiv");
    let runner = JobRunner::new(TraceStore::create(&root).unwrap());
    let results = runner.run(&[spec("cli-equiv", "wc_sp", 7, None)]);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    let service_bytes = std::fs::read(runner.store().shard_path("cli-equiv")).unwrap();

    let cli_out = std::env::temp_dir().join("simprof_svc_cli_equiv.sptrc");
    let cli_out = cli_out.to_str().unwrap().to_owned();
    let argv: Vec<String> =
        ["profile", "-w", "wc_sp", "--seed", "7", "--scale", "tiny", "-o", &cli_out]
            .iter()
            .map(|s| s.to_string())
            .collect();
    simprof_cli::dispatch(&argv).expect("batch profile succeeds");
    let cli_bytes = std::fs::read(&cli_out).unwrap();

    assert_eq!(service_bytes, cli_bytes, "service shard differs from the batch CLI trace");
    let _ = std::fs::remove_file(&cli_out);
    let _ = std::fs::remove_dir_all(&root);
}

/// Per-job event sinks stay per-job: two jobs served concurrently each
/// get their own report with the `service.job` span, and a compressed
/// shard reads back with the same units the footer counts.
#[test]
fn served_jobs_keep_their_own_reports_and_readable_shards() {
    let root = tmp_root("simprof_svc_reports");
    let runner = JobRunner::new(TraceStore::create(&root).unwrap()).with_max_concurrent(2);
    let results = runner.run(&[spec("a", "wc_sp", 5, Some("lz")), spec("b", "grep_hp", 6, None)]);
    for r in &results {
        let outcome = r.as_ref().expect("job succeeds");
        assert!(
            outcome.report.find_span("service.job").is_some(),
            "job `{}` report lacks its service.job span",
            outcome.id
        );
        let path = runner.store().shard_path(&outcome.id);
        let mut reader = TraceReader::open(path.to_str().unwrap()).unwrap();
        let mut units = 0u64;
        while reader.next_unit().unwrap().is_some() {
            units += 1;
        }
        assert_eq!(units, outcome.units, "job `{}` shard unit count drifted", outcome.id);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The fleet of specs the determinism tests below serve: two tenants, a
/// mix of codecs, one job that fails.
fn fleet_specs() -> Vec<JobSpec> {
    let mut specs = vec![
        spec("det-a", "wc_sp", 11, Some("lz")),
        spec("det-b", "grep_hp", 12, None),
        spec("det-c", "sort_sp", 13, Some("lz")),
        spec("det-d", "wc_hp", 14, None),
        spec("det-e", "no_such_workload", 15, None),
    ];
    for (i, s) in specs.iter_mut().enumerate() {
        s.tenant = Some(format!("tenant-{}", i % 2));
    }
    specs
}

/// Serves `fleet_specs` into a fresh store under a fixed scripted clock
/// and returns the runner plus the serialized fleet report.
fn scripted_fleet(
    root: &str,
    workers: usize,
) -> (JobRunner, Vec<Result<simprof::service::JobOutcome, String>>, String) {
    let runner = JobRunner::new(TraceStore::create(root).unwrap())
        .with_max_concurrent(workers)
        .with_clock(Arc::new(ScriptedClock::fixed(0)));
    let specs = fleet_specs();
    let results = runner.run(&specs);
    let report = fleet_report(runner.store(), &specs, &results).unwrap();
    (runner, results, report.to_json_pretty())
}

/// Under a scripted clock the fleet report serializes to the same bytes
/// on one worker as on K — no field may leak worker count, completion
/// order, or wall-clock time.
#[test]
fn fleet_report_is_byte_deterministic_across_concurrency() {
    let solo_root = tmp_root("simprof_svc_fleet_det_1");
    let wide_root = tmp_root("simprof_svc_fleet_det_k");
    let again_root = tmp_root("simprof_svc_fleet_det_k2");
    let (_, _, solo) = scripted_fleet(&solo_root, 1);
    let (_, _, wide) = scripted_fleet(&wide_root, 4);
    let (_, _, again) = scripted_fleet(&again_root, 4);

    assert_eq!(solo, wide, "fleet report differs between 1 and 4 workers");
    assert_eq!(wide, again, "fleet report differs across identical runs");

    let report: FleetReport = serde_json::from_str(solo.trim_end()).unwrap();
    assert_eq!(report.totals.jobs, 5);
    assert_eq!(report.totals.failed, 1);
    assert_eq!(report.totals.run_us, 0, "scripted clock pins every duration to zero");
    let ids: Vec<&str> = report.jobs.iter().map(|j| j.id.as_str()).collect();
    assert_eq!(ids, ["det-a", "det-b", "det-c", "det-d", "det-e"], "jobs sorted by id");

    for root in [&solo_root, &wide_root, &again_root] {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// The report's per-tenant `store_bytes` is the store's own accounting,
/// not a re-derivation that could drift.
#[test]
fn fleet_report_tenant_bytes_match_the_store() {
    let root = tmp_root("simprof_svc_fleet_bytes");
    let (runner, results, text) = scripted_fleet(&root, 2);
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 4);

    let report: FleetReport = serde_json::from_str(text.trim_end()).unwrap();
    assert_eq!(report.tenants.len(), 2);
    let mut store_total = 0u64;
    for (tenant, stats) in &report.tenants {
        assert_eq!(
            stats.store_bytes,
            runner.store().tenant_bytes(tenant),
            "tenant `{tenant}` byte totals drifted from the store"
        );
        store_total += stats.store_bytes;
    }
    assert_eq!(
        store_total, report.totals.trace_bytes,
        "single-run store: tenant bytes sum to the fleet's sealed shard bytes"
    );
    let _ = std::fs::remove_dir_all(&root);
}
