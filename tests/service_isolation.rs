//! The service layer's two determinism contracts, end to end through the
//! facade crate:
//!
//! 1. **Concurrency isolation** — K seeded jobs served on K worker
//!    threads each write a shard bit-identical to the same job run alone
//!    in its own store. Any cross-job leak (shared RNG state, a sink
//!    observing a neighbor, context bleed through the thread pool) shows
//!    up as a byte diff.
//! 2. **Service ≡ batch** — a job served through the [`JobRunner`] writes
//!    exactly the bytes `simprof profile` writes for the same
//!    workload/scale/seed, so traces are interchangeable between the two
//!    entry points.

use proptest::prelude::*;

use simprof::service::{JobRunner, JobSpec, TraceStore};
use simprof::trace::TraceReader;
use simprof::workloads::WorkloadId;

fn tmp_root(name: &str) -> String {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_str().unwrap().to_owned()
}

fn spec(id: &str, workload: &str, seed: u64, codec: Option<&str>) -> JobSpec {
    let mut s = JobSpec::new(id, workload);
    s.seed = Some(seed);
    s.scale = Some("tiny".into());
    s.codec = codec.map(str::to_owned);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// K jobs with arbitrary seeds/workloads/codecs, served at K-way
    /// concurrency, are each bit-identical to their solo run.
    #[test]
    fn concurrent_jobs_are_bit_identical_to_solo_runs(
        seeds in proptest::collection::vec(0u64..1000, 2..5),
        picks in proptest::collection::vec(0usize..12, 2..5),
        lz_mask in any::<u8>(),
    ) {
        let k = seeds.len().min(picks.len());
        let workloads = WorkloadId::all();
        let specs: Vec<JobSpec> = (0..k)
            .map(|i| {
                let codec = if lz_mask & (1 << i) != 0 { Some("lz") } else { None };
                spec(
                    &format!("prop-{i}"),
                    &workloads[picks[i] % workloads.len()].label(),
                    seeds[i],
                    codec,
                )
            })
            .collect();

        let fleet_root = tmp_root(&format!("simprof_svc_prop_fleet_{}", std::process::id()));
        let fleet = JobRunner::new(TraceStore::create(&fleet_root).unwrap())
            .with_max_concurrent(k);
        let results = fleet.run(&specs);
        for r in &results {
            prop_assert!(r.is_ok(), "{r:?}");
        }
        fleet.store().write_index().unwrap();
        let check = TraceStore::validate(&fleet_root).unwrap();
        prop_assert!(check.clean(), "store problems: {:?}", check.problems);

        for s in &specs {
            let solo_root = tmp_root(&format!("simprof_svc_prop_solo_{}", std::process::id()));
            let solo = JobRunner::new(TraceStore::create(&solo_root).unwrap());
            let res = solo.run(std::slice::from_ref(s));
            prop_assert!(res[0].is_ok(), "{:?}", res[0]);
            let fleet_bytes = std::fs::read(fleet.store().shard_path(&s.id)).unwrap();
            let solo_bytes = std::fs::read(solo.store().shard_path(&s.id)).unwrap();
            prop_assert_eq!(
                &fleet_bytes,
                &solo_bytes,
                "job `{}` diverged under {}-way concurrency",
                s.id,
                k
            );
            let _ = std::fs::remove_dir_all(&solo_root);
        }
        let _ = std::fs::remove_dir_all(&fleet_root);
    }
}

/// A job served through the runner writes exactly the bytes the batch CLI
/// writes for the same workload/scale/seed — the two entry points share
/// one trace contract.
#[test]
fn service_job_matches_batch_cli_trace_bytes() {
    let root = tmp_root("simprof_svc_cli_equiv");
    let runner = JobRunner::new(TraceStore::create(&root).unwrap());
    let results = runner.run(&[spec("cli-equiv", "wc_sp", 7, None)]);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    let service_bytes = std::fs::read(runner.store().shard_path("cli-equiv")).unwrap();

    let cli_out = std::env::temp_dir().join("simprof_svc_cli_equiv.sptrc");
    let cli_out = cli_out.to_str().unwrap().to_owned();
    let argv: Vec<String> =
        ["profile", "-w", "wc_sp", "--seed", "7", "--scale", "tiny", "-o", &cli_out]
            .iter()
            .map(|s| s.to_string())
            .collect();
    simprof_cli::dispatch(&argv).expect("batch profile succeeds");
    let cli_bytes = std::fs::read(&cli_out).unwrap();

    assert_eq!(service_bytes, cli_bytes, "service shard differs from the batch CLI trace");
    let _ = std::fs::remove_file(&cli_out);
    let _ = std::fs::remove_dir_all(&root);
}

/// Per-job event sinks stay per-job: two jobs served concurrently each
/// get their own report with the `service.job` span, and a compressed
/// shard reads back with the same units the footer counts.
#[test]
fn served_jobs_keep_their_own_reports_and_readable_shards() {
    let root = tmp_root("simprof_svc_reports");
    let runner = JobRunner::new(TraceStore::create(&root).unwrap()).with_max_concurrent(2);
    let results = runner.run(&[spec("a", "wc_sp", 5, Some("lz")), spec("b", "grep_hp", 6, None)]);
    for r in &results {
        let outcome = r.as_ref().expect("job succeeds");
        assert!(
            outcome.report.find_span("service.job").is_some(),
            "job `{}` report lacks its service.job span",
            outcome.id
        );
        let path = runner.store().shard_path(&outcome.id);
        let mut reader = TraceReader::open(path.to_str().unwrap()).unwrap();
        let mut units = 0u64;
        while reader.next_unit().unwrap().is_some() {
            units += 1;
        }
        assert_eq!(units, outcome.units, "job `{}` shard unit count drifted", outcome.id);
    }
    let _ = std::fs::remove_dir_all(&root);
}
