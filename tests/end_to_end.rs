//! Cross-crate integration tests: every workload through the full SimProf
//! pipeline at test scale.

use simprof::core::{
    input_sensitivity, second_points_by_cycles, srs_points, SimProf, SimProfConfig,
};
use simprof::workloads::{Benchmark, Framework, WorkloadConfig, WorkloadId};

fn pipeline() -> SimProf {
    SimProf::new(SimProfConfig { seed: 7, ..Default::default() })
}

#[test]
fn every_workload_through_full_pipeline() {
    let cfg = WorkloadConfig::tiny(7);
    for id in WorkloadId::all() {
        let out = id.run_full(&cfg);
        assert!(out.trace.units.len() >= 10, "{}: {} units", id.label(), out.trace.units.len());

        let analysis = pipeline().analyze(&out.trace).expect("valid trace");
        assert!(analysis.k() >= 1, "{}", id.label());
        assert_eq!(analysis.cpis.len(), out.trace.units.len());
        assert!(
            (analysis.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "{}: weights sum",
            id.label()
        );

        // Phase formation must never make things worse than no phases.
        assert!(
            analysis.cov.weighted <= analysis.cov.population + 1e-9,
            "{}: weighted {} vs population {}",
            id.label(),
            analysis.cov.weighted,
            analysis.cov.population
        );

        // Stratified sampling end-to-end: points valid, estimate finite.
        let n = 10.min(out.trace.units.len());
        let points = analysis.select_points(n, 3);
        assert_eq!(points.len(), n, "{}", id.label());
        assert!(points.points.iter().all(|&p| (p as usize) < out.trace.units.len()));
        let est = analysis.estimate(&points, 3.0);
        assert!(est.mean_cpi.is_finite() && est.mean_cpi > 0.0, "{}", id.label());
        assert!(est.se >= 0.0);
    }
}

#[test]
fn full_enumeration_recovers_oracle_exactly() {
    let cfg = WorkloadConfig::tiny(11);
    let out = Benchmark::WordCount.run_full(Framework::Hadoop, &cfg);
    let analysis = pipeline().analyze(&out.trace).expect("valid trace");
    let all = analysis.select_points(out.trace.units.len(), 1);
    let est = analysis.estimate(&all, 3.0);
    assert!((est.mean_cpi - analysis.oracle_cpi()).abs() < 1e-9);
    assert_eq!(est.se, 0.0);
}

#[test]
fn stratified_beats_srs_on_staged_workload() {
    // The paper's core claim, checked empirically on a staged job: with the
    // same budget, SimProf's stratified estimate has lower average error
    // than simple random sampling.
    let cfg = WorkloadConfig::tiny(13);
    let out = Benchmark::Sort.run_full(Framework::Spark, &cfg);
    let analysis = pipeline().analyze(&out.trace).expect("valid trace");
    let oracle = analysis.oracle_cpi();
    let n = 12;
    let reps = 60;
    let mut strat = 0.0;
    let mut srs = 0.0;
    for rep in 0..reps {
        let pts = analysis.select_points(n, 100 + rep);
        strat += (analysis.estimate(&pts, 3.0).mean_cpi - oracle).abs();
        srs += (srs_points(&out.trace, n, 500 + rep).predicted_cpi - oracle).abs();
    }
    assert!(strat < srs, "stratified {strat} < srs {srs}");
}

#[test]
fn confidence_interval_covers_oracle() {
    // 99.7 % CI should cover the oracle in almost all draws.
    let cfg = WorkloadConfig::tiny(17);
    let out = Benchmark::NaiveBayes.run_full(Framework::Spark, &cfg);
    let analysis = pipeline().analyze(&out.trace).expect("valid trace");
    let oracle = analysis.oracle_cpi();
    let reps: u64 = 50;
    let covered = (0..reps)
        .filter(|&rep| {
            let pts = analysis.select_points(15, 700 + rep);
            let est = analysis.estimate(&pts, 3.0);
            est.ci.0 <= oracle && oracle <= est.ci.1
        })
        .count();
    assert!(covered as u64 * 100 >= reps * 90, "coverage {covered}/{reps}");
}

#[test]
fn second_is_contiguous_and_biased_on_staged_jobs() {
    let cfg = WorkloadConfig::tiny(19);
    let out = Benchmark::WordCount.run_full(Framework::Hadoop, &cfg);
    let second = second_points_by_cycles(&out.trace, 400_000);
    // Contiguity from the start.
    let expect: Vec<u64> = (0..second.points.len() as u64).collect();
    assert_eq!(second.points, expect);
    assert!(second.points.len() < out.trace.units.len(), "budget must not cover the job");
}

#[test]
fn input_sensitivity_full_cycle_on_graphs() {
    use simprof::workloads::{GraphInput, Kronecker};
    let cfg = WorkloadConfig::tiny(23);
    let google =
        Kronecker::for_input(GraphInput::Google, cfg.graph_scale, cfg.graph_degree).generate(1);
    let road =
        Kronecker::for_input(GraphInput::Road, cfg.graph_scale, cfg.graph_degree).generate(2);

    let train = Benchmark::ConnectedComponents.run_spark_on_graph(&cfg, &google);
    let reference = Benchmark::ConnectedComponents.run_spark_on_graph(&cfg, &road);
    let analysis = pipeline().analyze(&train.trace).expect("valid trace");

    let report = input_sensitivity(&analysis.model, &train.trace, &[&reference.trace], 0.10);
    assert_eq!(report.sensitive.len(), analysis.k());
    assert_eq!(report.per_reference.len(), 1);
    // A Road-network graph is wildly different from a web graph; *something*
    // must register as input sensitive.
    assert!(report.sensitive_count() >= 1, "{:?}", report.sensitive);

    let points = analysis.select_points(12, 5);
    let frac = report.sensitive_point_fraction(&points);
    assert!((0.0..=1.0).contains(&frac));
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let cfg = WorkloadConfig::tiny(29);
        let out = Benchmark::PageRank.run_full(Framework::Spark, &cfg);
        let analysis = pipeline().analyze(&out.trace).expect("valid trace");
        let points = analysis.select_points(10, 4);
        (out.trace, analysis.model.assignments.clone(), points.points)
    };
    let (t1, a1, p1) = run();
    let (t2, a2, p2) = run();
    assert_eq!(t1, t2);
    assert_eq!(a1, a2);
    assert_eq!(p1, p2);
}

#[test]
fn hadoop_sort_spends_more_on_io_than_spark_sort() {
    // §IV-D: "Hadoop-based workloads spent more time on IO operations
    // instead of doing actual work". Sort shows it most clearly: sort_hp
    // moves its whole input through spill files, sort_sp sorts in memory.
    let cfg = WorkloadConfig::tiny(31);
    let share = |f: Framework| {
        let out = Benchmark::Sort.run_full(f, &cfg);
        let stall: u64 = out.trace.units.iter().map(|u| u.counters.io_stall_cycles).sum();
        let cycles: u64 = out.trace.units.iter().map(|u| u.counters.cycles).sum();
        stall as f64 / cycles as f64
    };
    let hp = share(Framework::Hadoop);
    let sp = share(Framework::Spark);
    assert!(hp > sp, "hadoop io share {hp} vs spark {sp}");
}
