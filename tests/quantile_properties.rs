//! Property tests for the obs layer's log2-bucket histogram: quantile
//! estimates stay within one bucket width of the exact sorted-order
//! quantiles, and merging histograms is observationally identical to
//! histogramming the concatenated inputs.

use proptest::prelude::*;

use simprof::obs::Log2Histogram;
use simprof::stats::quantile_sorted;

fn hist(values: &[f64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// Log-uniform positive values spanning ~18 decades, so observations land
/// across many log2 buckets instead of piling into the top one.
fn value_strategy() -> impl Strategy<Value = f64> {
    (-6.0f64..12.0).prop_map(|e| 10f64.powf(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `|p50/p95/p99 − exact sorted quantile| ≤` one bucket width of the
    /// exact value — the error bound the histogram's docs state.
    #[test]
    fn histogram_quantiles_within_one_bucket_width(
        values in proptest::collection::vec(value_strategy(), 1..300)
    ) {
        let h = hist(&values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.5, 0.95, 0.99] {
            let exact = quantile_sorted(&sorted, q);
            let est = h.quantile(q);
            let width = Log2Histogram::bucket_width_of(exact);
            prop_assert!(
                (est - exact).abs() <= width * (1.0 + 1e-12),
                "q = {q}: estimate {est} vs exact {exact} (bucket width {width})"
            );
        }
    }

    /// `merge(h(A), h(B))` matches `h(A ++ B)`: identical count/min/max,
    /// identical quantiles at every probe point (bucket counts agree), and
    /// the same sum up to float-addition reassociation.
    #[test]
    fn merge_equals_histogram_of_concatenation(
        a in proptest::collection::vec(value_strategy(), 0..120),
        b in proptest::collection::vec(value_strategy(), 0..120),
    ) {
        let mut merged = hist(&a);
        merged.merge(&hist(&b));
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        let whole = hist(&concat);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        for i in 1..=20u32 {
            let q = f64::from(i) / 20.0;
            prop_assert_eq!(merged.quantile(q), whole.quantile(q), "q = {}", q);
        }
        let tol = 1e-9 * whole.sum().abs().max(1.0);
        prop_assert!(
            (merged.sum() - whole.sum()).abs() <= tol,
            "sums diverged beyond reassociation: {} vs {}",
            merged.sum(),
            whole.sum()
        );
    }
}
