//! Property-based tests on the core data structures and statistical
//! invariants, spanning crates.

use proptest::prelude::*;

use simprof::sim::{AccessCursor, AccessPattern, Cache, CacheConfig, Region};
use simprof::stats::{
    kmeans, mean, optimal_allocation, srs_indices_seeded, stddev, stratified_se, KMeans, Matrix,
    StratumStats,
};

proptest! {
    // ---------------- stratified sampling ----------------

    /// Optimal allocation always sums to min(n, total units), respects caps,
    /// and gives every non-empty stratum at least one slot.
    #[test]
    fn allocation_invariants(
        strata in proptest::collection::vec((0usize..200, 0.0f64..5.0), 1..10),
        n in 0usize..300,
    ) {
        let strata: Vec<StratumStats> =
            strata.into_iter().map(|(units, stddev)| StratumStats { units, stddev }).collect();
        let alloc = optimal_allocation(n, &strata);
        prop_assert_eq!(alloc.len(), strata.len());
        let cap_total: usize = strata.iter().map(|s| s.units).sum();
        let total: usize = alloc.iter().sum();
        for (a, s) in alloc.iter().zip(&strata) {
            prop_assert!(*a <= s.units);
            if n > 0 && s.units > 0 {
                prop_assert!(*a >= 1);
            }
        }
        if n >= strata.iter().filter(|s| s.units > 0).count() {
            prop_assert_eq!(total, n.min(cap_total));
        }
    }

    /// The stratified standard error shrinks (weakly) as the budget grows.
    #[test]
    fn se_monotone_in_budget(
        strata in proptest::collection::vec((1usize..100, 0.01f64..3.0), 1..6),
    ) {
        let strata: Vec<StratumStats> =
            strata.into_iter().map(|(units, stddev)| StratumStats { units, stddev }).collect();
        let cap: usize = strata.iter().map(|s| s.units).sum();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            if n > cap { break; }
            let se = stratified_se(&strata, &optimal_allocation(n, &strata));
            prop_assert!(se <= last + 1e-6, "se {} grew past {}", se, last);
            last = se;
        }
        // Full enumeration is exact.
        let full: Vec<usize> = strata.iter().map(|s| s.units).collect();
        prop_assert_eq!(stratified_se(&strata, &full), 0.0);
    }

    /// SRS draws k distinct ascending in-range indices for any (n, k, seed).
    #[test]
    fn srs_invariants(n in 0usize..500, k in 0usize..500, seed in any::<u64>()) {
        let s = srs_indices_seeded(n, k, seed);
        prop_assert_eq!(s.len(), k.min(n));
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&i| i < n));
    }

    // ---------------- clustering ----------------

    /// k-means assignments are valid, every point maps to its nearest
    /// center, and inertia equals the recomputed sum.
    #[test]
    fn kmeans_invariants(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3), 2..40),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let data = Matrix::from_rows(&rows);
        let r = kmeans(&data, KMeans::new(k, seed));
        let k_eff = r.centers.rows();
        prop_assert!(k_eff <= k.min(data.rows()));
        prop_assert_eq!(r.assignments.len(), data.rows());
        let mut inertia = 0.0;
        for (i, &a) in r.assignments.iter().enumerate() {
            prop_assert!(a < k_eff);
            let d = Matrix::sq_dist(data.row(i), r.centers.row(a));
            // Assigned center is the nearest one.
            for c in 0..k_eff {
                prop_assert!(d <= Matrix::sq_dist(data.row(i), r.centers.row(c)) + 1e-9);
            }
            inertia += d;
        }
        prop_assert!((inertia - r.inertia).abs() < 1e-6 * (1.0 + inertia));
    }

    // ---------------- machine model ----------------

    /// Access cursors always stay inside their region and are line-aligned
    /// wherever the pattern promises line granularity.
    #[test]
    fn cursor_stays_in_region(
        base in 0u64..1_000_000,
        bytes in 64u64..1_000_000,
        pattern_sel in 0usize..5,
        seed in any::<u64>(),
    ) {
        let base = base & !63;
        let region = Region::new(base, bytes);
        let pattern = match pattern_sel {
            0 => AccessPattern::Sequential,
            1 => AccessPattern::Strided { stride_bytes: 192 },
            2 => AccessPattern::Random,
            3 => AccessPattern::Zipf,
            _ => AccessPattern::RandomWindow { window_bytes: bytes / 2 + 64 },
        };
        let mut cur = AccessCursor::new(region, pattern, seed);
        for _ in 0..256 {
            let a = cur.next_addr();
            prop_assert!(a >= base, "addr {a} below base {base}");
            prop_assert!(a < base + bytes.max(64) + 64, "addr {a} beyond region end");
        }
    }

    /// A cache never reports a hit for a line it has not seen since the
    /// last flush, and hit/miss accounting is consistent with probe.
    #[test]
    fn cache_probe_consistency(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::new(8 * 1024, 4));
        for &a in &addrs {
            let probed = cache.probe(a);
            let hit = cache.access(a);
            prop_assert_eq!(probed, hit, "probe must predict access outcome");
            prop_assert!(cache.probe(a), "line must be resident after access");
        }
    }

    // ---------------- descriptive stats ----------------

    /// mean and stddev basic sanity over arbitrary data.
    #[test]
    fn descriptive_sanity(xs in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let m = mean(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(stddev(&xs) >= 0.0);
        prop_assert!(stddev(&xs) <= (hi - lo) + 1e-9);
    }
}

// ---------------- engine properties (heavier, fewer cases) ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The instrumented quicksort sorts arbitrary data and emits a
    /// partition trace whose first pass covers the whole array.
    #[test]
    fn quicksort_trace_sorts(mut data in proptest::collection::vec(any::<u32>(), 0..4000)) {
        use simprof::engine::ops::quicksort_trace;
        let region = Region::new(0x1000, (data.len() as u64 * 4).max(64));
        let mut expect = data.clone();
        expect.sort_unstable();
        let items = quicksort_trace(&mut data, 4, region, vec![], 1);
        prop_assert_eq!(data, expect);
        for item in &items {
            prop_assert!(item.instrs >= 1);
            prop_assert!(item.region.base >= region.base);
        }
    }

    /// kway_merge merges arbitrary sorted runs correctly.
    #[test]
    fn kway_merge_merges(runs in proptest::collection::vec(
        proptest::collection::vec(any::<u32>(), 0..300), 0..6)) {
        use simprof::engine::ops::kway_merge;
        let runs: Vec<Vec<u32>> = runs
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r
            })
            .collect();
        let total: usize = runs.iter().map(Vec::len).sum();
        let region = Region::new(0, (total as u64 * 4).max(64));
        let (out, _items) = kway_merge(&runs, 4, region, vec![], 2);
        prop_assert_eq!(out.len(), total);
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let mut expect: Vec<u32> = runs.into_iter().flatten().collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    /// hash_combine aggregates exactly like a reference fold, and its output
    /// is key-sorted.
    #[test]
    fn hash_combine_matches_reference(pairs in proptest::collection::vec(
        (0u32..50, 1i64..10), 0..500)) {
        use simprof::engine::ops::hash_combine;
        use simprof::sim::{Machine, MachineConfig};
        use std::collections::BTreeMap;
        let mut machine = Machine::new(MachineConfig::scaled(1));
        let (combined, items) = hash_combine(
            pairs.clone(),
            |a, b| *a += b,
            32,
            64,
            vec![],
            AccessPattern::Zipf,
            &mut machine,
            3,
        );
        let mut expect: BTreeMap<u32, i64> = BTreeMap::new();
        for (k, v) in pairs {
            *expect.entry(k).or_insert(0) += v;
        }
        let expect: Vec<(u32, i64)> = expect.into_iter().collect();
        prop_assert_eq!(combined, expect);
        // Live regions grow monotonically.
        prop_assert!(items.windows(2).all(|w| w[0].region.bytes <= w[1].region.bytes));
    }
}
