//! Determinism under fault injection: the whole point of a *seeded*
//! `FaultPlan` is that a faulty run is exactly reproducible, and that a
//! plan with all rates at zero is indistinguishable from no plan at all.

use proptest::prelude::*;

use simprof::engine::{FaultLog, FaultPlan, MethodRegistry, SchedConfig, Scheduler};
use simprof::profiler::{ProfileTrace, SamplingManager};
use simprof::sim::Machine;
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

/// One profiled WordCount/Hadoop run at test scale under `plan`
/// (`None` = the plain fault-free path, no fault plumbing at all).
fn run(cfg: &WorkloadConfig, plan: Option<FaultPlan>) -> (ProfileTrace, FaultLog) {
    let mut machine = Machine::new(cfg.machine);
    let mut registry = MethodRegistry::new();
    let job = Benchmark::WordCount.build(Framework::Hadoop, cfg, &mut machine, &mut registry);
    let mut manager = SamplingManager::new(cfg.profiler);
    let mut sched = cfg.sched;
    if let Some(plan) = plan {
        manager = manager.with_faults(plan);
        sched.faults = plan;
    }
    let log = Scheduler::new(SchedConfig { ..sched }).run(&mut machine, &job, &mut manager);
    (manager.finish(), log)
}

#[test]
fn zero_rate_plan_is_byte_identical_to_fault_free_run() {
    let cfg = WorkloadConfig::tiny(7);
    let (plain_trace, plain_log) = run(&cfg, None);
    let (zero_trace, zero_log) = run(&cfg, Some(FaultPlan::uniform(0, 99)));
    assert_eq!(zero_trace, plain_trace, "zero-rate plan must not perturb the run");
    assert_eq!(zero_log, plain_log);
    assert!(zero_log.events.is_empty(), "zero rates inject nothing");
    assert_eq!(zero_trace.truncated_units(), 0);
    assert_eq!(zero_trace.dropped_snapshots(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed + same plan ⇒ bit-identical trace *and* fault log, at any
    /// fault rate.
    #[test]
    fn same_seed_and_plan_reproduce_exactly(
        ppm in 0u32..300_000,
        plan_seed in any::<u64>(),
        cfg_seed in 1u64..50,
    ) {
        let cfg = WorkloadConfig::tiny(cfg_seed);
        let plan = FaultPlan::uniform(ppm, plan_seed);
        let (trace_a, log_a) = run(&cfg, Some(plan));
        let (trace_b, log_b) = run(&cfg, Some(plan));
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(log_a, log_b);
    }
}
