//! The streaming equivalence contract, pinned end to end: a trace analyzed
//! **in memory**, via the **legacy JSON bundle**, or **streamed from a
//! chunked file** must produce bit-identical analyses — and the streaming
//! two-pass feature fit must reproduce the dense batch construction
//! exactly.
//!
//! These are the acceptance tests for the streaming trace architecture; if
//! the chunked codec, the sink path, or the two-pass pipeline ever drift
//! from the in-memory path, this file fails before any CLI or benchmark
//! notices.

use proptest::prelude::*;

use simprof::core::{vectorize, FeatureSpace, SimProf, SimProfConfig};
use simprof::engine::MethodId;
use simprof::profiler::{ProfileTrace, SamplingUnit};
use simprof::sim::Counters;
use simprof::trace::{TraceMeta, TraceReader, TraceWriter};
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};
use simprof_cli::bundle::{TraceBundle, FORMAT_VERSION};
use simprof_cli::input::TraceInput;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique temp path per call so parallel tests and proptest cases never
/// collide on the same file.
fn temp_trace_path(tag: &str) -> String {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("simprof_stream_eq_{tag}_{n}.sptrc"));
    path.to_str().expect("utf-8 temp path").to_owned()
}

fn write_chunked(trace: &ProfileTrace, path: &str, chunk_units: usize) {
    let meta = TraceMeta {
        label: "stream_eq".into(),
        seed: 0,
        scale: "test".into(),
        unit_instrs: trace.unit_instrs,
        snapshot_instrs: trace.snapshot_instrs,
        core: trace.core,
    };
    let mut w = TraceWriter::create(path, &meta).unwrap().with_chunk_units(chunk_units);
    for u in &trace.units {
        w.push(u);
    }
    w.finish(&Default::default()).unwrap();
}

/// The acceptance regression: one real (tiny-scale) workload, analyzed via
/// all three input paths, must agree bit for bit — including the
/// downstream point selection.
#[test]
fn analysis_is_bit_identical_across_memory_bundle_and_chunked_file() {
    let cfg = WorkloadConfig::tiny(7);
    let out = Benchmark::WordCount.run_full(Framework::Spark, &cfg);
    let sp = SimProf::default();

    // Path 1: the in-memory trace, no disk round-trip.
    let in_memory = sp.analyze(&out.trace).unwrap();

    // Path 2: the legacy monolithic JSON bundle.
    let bundle_path = temp_trace_path("bundle");
    let bundle_path = bundle_path.trim_end_matches(".sptrc").to_owned() + ".json";
    TraceBundle {
        version: FORMAT_VERSION,
        label: "wc_sp".into(),
        seed: 7,
        scale: "tiny".into(),
        trace: out.trace.clone(),
        registry: out.registry.clone(),
    }
    .save(&bundle_path)
    .unwrap();
    let via_bundle = TraceInput::open(&bundle_path).unwrap().analyze(&sp).unwrap();

    // Path 3: the chunked streaming file, small chunks to force many
    // chunk-boundary crossings per pass.
    let chunked_path = temp_trace_path("accept");
    write_chunked(&out.trace, &chunked_path, 8);
    let via_chunked = TraceInput::open(&chunked_path).unwrap().analyze(&sp).unwrap();

    for other in [&via_bundle, &via_chunked] {
        assert_eq!(in_memory.cpis, other.cpis);
        assert_eq!(in_memory.model.assignments, other.model.assignments);
        assert_eq!(in_memory.model.space, other.model.space);
        assert_eq!(in_memory.stats, other.stats);
        assert_eq!(in_memory.weights, other.weights);
        // Downstream selection consumes only the above, so it must agree
        // too — same points, same order.
        let a = in_memory.select_points(10, 99);
        let b = other.select_points(10, 99);
        assert_eq!(a.points, b.points);
    }

    let _ = std::fs::remove_file(&bundle_path);
    let _ = std::fs::remove_file(&chunked_path);
}

/// Strategy: a synthetic trace with latent behaviours (same shape as
/// `pipeline_properties.rs`) plus streaming-relevant variety: slices,
/// truncated units, dropped snapshots.
fn trace_strategy() -> impl Strategy<Value = ProfileTrace> {
    (3usize..40, 1usize..6, proptest::collection::vec((200u64..4000, 0u64..400), 6), any::<u64>())
        .prop_map(|(n, behaviours, levels, seed)| {
            let units = (0..n as u64)
                .map(|i| {
                    let b = (i as usize * 7 + seed as usize) % behaviours;
                    let (base, jitter) = levels[b];
                    let wobble = (i.wrapping_mul(seed | 1) >> 5) % (jitter + 1);
                    let histogram = vec![
                        (MethodId(0), 10),
                        (MethodId(b as u32 + 1), 9),
                        (MethodId(b as u32 + 7), 4 + (i % 3) as u32),
                    ];
                    SamplingUnit {
                        id: i,
                        histogram,
                        snapshots: 10,
                        counters: Counters {
                            instructions: 1000,
                            cycles: base + wobble,
                            ..Default::default()
                        },
                        slices: if i % 3 == 0 {
                            vec![(500, base / 2), (500, base / 2)]
                        } else {
                            Vec::new()
                        },
                        truncated: i % 5 == 4,
                        dropped_snapshots: (i % 4) as u32,
                    }
                })
                .collect();
            ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the trace, analyzing the chunked file's stream equals
    /// analyzing the in-memory trace bit for bit.
    #[test]
    fn streamed_analysis_equals_in_memory(
        trace in trace_strategy(),
        seed in any::<u64>(),
        chunk in 1usize..9,
    ) {
        let sp = SimProf::new(SimProfConfig { seed, ..Default::default() });
        let in_memory = sp.analyze(&trace).expect("valid trace");

        let path = temp_trace_path("prop");
        write_chunked(&trace, &path, chunk);
        let mut reader = TraceReader::open(&path).unwrap();
        let streamed = sp.analyze_stream(&mut reader).expect("valid stream");
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(&in_memory.cpis, &streamed.cpis);
        prop_assert_eq!(&in_memory.model.assignments, &streamed.model.assignments);
        prop_assert_eq!(&in_memory.model.space, &streamed.model.space);
        prop_assert_eq!(&in_memory.stats, &streamed.stats);
        prop_assert_eq!(&in_memory.weights, &streamed.weights);
    }

    /// The two-pass fit's reduced matrix equals the dense batch
    /// construction exactly: vectorize the whole trace, keep the fitted
    /// columns, and every entry matches what the sparse projection wrote.
    #[test]
    fn streaming_fit_matches_dense_batch_construction(trace in trace_strategy(), k in 1usize..8) {
        let (space, projected) = FeatureSpace::fit(&trace, k);
        let dense = vectorize(&trace);
        prop_assert_eq!(projected.rows(), trace.units.len());
        prop_assert_eq!(projected.cols(), space.columns.len());
        for i in 0..projected.rows() {
            let dense_row = dense.row(i);
            let sparse_row = projected.row(i);
            for (j, &col) in space.columns.iter().enumerate() {
                // Exact equality: both sides compute count / snapshots with
                // the same operations in the same order.
                prop_assert_eq!(sparse_row[j], dense_row[col]);
            }
        }
    }
}
