//! Property-based tests over the *whole pipeline* on randomly generated
//! synthetic traces: whatever the trace looks like, the pipeline's
//! statistical invariants must hold.

use proptest::prelude::*;

use simprof::core::{classify_units, SimProf, SimProfConfig, SimulationManifest};
use simprof::engine::MethodId;
use simprof::profiler::{ProfileTrace, SamplingUnit};
use simprof::sim::Counters;

/// Strategy: a synthetic trace with 3–80 units, 1–6 latent behaviours, each
/// behaviour with its own method set and CPI level, plus per-unit noise.
fn trace_strategy() -> impl Strategy<Value = ProfileTrace> {
    (3usize..80, 1usize..6, proptest::collection::vec((200u64..4000, 0u64..400), 6), any::<u64>())
        .prop_map(|(n, behaviours, levels, seed)| {
            let units = (0..n as u64)
                .map(|i| {
                    let b = (i as usize * 7 + seed as usize) % behaviours;
                    let (base, jitter) = levels[b];
                    let wobble = (i.wrapping_mul(seed | 1) >> 5) % (jitter + 1);
                    // Behaviour b runs methods {0 (framework), b+1, b+7}.
                    let histogram = vec![
                        (MethodId(0), 10),
                        (MethodId(b as u32 + 1), 9),
                        (MethodId(b as u32 + 7), 4 + (i % 3) as u32),
                    ];
                    SamplingUnit {
                        id: i,
                        histogram,
                        snapshots: 10,
                        counters: Counters {
                            instructions: 1000,
                            cycles: base + wobble,
                            ..Default::default()
                        },
                        slices: Vec::new(),
                        truncated: false,
                        dropped_snapshots: 0,
                    }
                })
                .collect();
            ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Phase formation always yields a valid model and classification of
    /// the training trace is consistent with the training assignment.
    #[test]
    fn pipeline_invariants(trace in trace_strategy(), seed in any::<u64>()) {
        let analysis =
            SimProf::new(SimProfConfig { seed, ..Default::default() }).analyze(&trace).expect("valid trace");
        let k = analysis.k();
        prop_assert!(k >= 1);
        prop_assert!(k <= 20);
        prop_assert_eq!(analysis.model.assignments.len(), trace.units.len());
        prop_assert!(analysis.model.assignments.iter().all(|&a| a < k));
        prop_assert!((analysis.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Note: weighted CoV ≤ population CoV is the paper's *empirical*
        // Fig. 6 property, not a mathematical invariant (a small-mean,
        // large-σ phase can invert it on adversarial traces) — it is
        // asserted on the calibrated workloads in `paper_shape.rs`, not
        // here. What is invariant: max ≥ weighted.
        prop_assert!(analysis.cov.max + 1e-9 >= analysis.cov.weighted);

        let reclassified = classify_units(&analysis.model, &trace);
        prop_assert_eq!(&reclassified, &analysis.model.assignments);
    }

    /// Selection + estimation: points are valid units, the estimate is
    /// finite and inside its own CI, and full enumeration is exact.
    #[test]
    fn selection_invariants(trace in trace_strategy(), seed in any::<u64>(), n in 1usize..40) {
        let analysis =
            SimProf::new(SimProfConfig { seed, ..Default::default() }).analyze(&trace).expect("valid trace");
        let n = n.min(trace.units.len());
        let pts = analysis.select_points(n, seed ^ 0x5EED);
        // The ≥1-point-per-phase floor can push the total above n when n < k.
        prop_assert!(pts.len() >= n, "{} < {}", pts.len(), n);
        prop_assert!(pts.len() <= n.max(analysis.k()), "{} vs {}", pts.len(), n);
        let mut sorted = pts.points.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), pts.points.len(), "points are distinct");
        prop_assert!(pts.points.iter().all(|&p| (p as usize) < trace.units.len()));

        let est = analysis.estimate(&pts, 3.0);
        prop_assert!(est.mean_cpi.is_finite());
        prop_assert!(est.ci.0 <= est.mean_cpi && est.mean_cpi <= est.ci.1);

        let all = analysis.select_points(trace.units.len(), 1);
        let exact = analysis.estimate(&all, 3.0);
        prop_assert!((exact.mean_cpi - analysis.oracle_cpi()).abs() < 1e-9);
        prop_assert!(exact.se < 1e-9);
    }

    /// The exported manifest aggregates back to the stratified estimate and
    /// covers exactly the selected points.
    #[test]
    fn manifest_invariants(trace in trace_strategy(), seed in any::<u64>()) {
        let analysis =
            SimProf::new(SimProfConfig { seed, ..Default::default() }).analyze(&trace).expect("valid trace");
        let n = 6.min(trace.units.len());
        let pts = analysis.select_points(n, seed);
        let manifest = SimulationManifest::build(&analysis, &trace, &pts).expect("selection fits");
        prop_assert_eq!(manifest.points.len(), pts.len());
        let results: std::collections::HashMap<u64, f64> =
            manifest.points.iter().map(|p| (p.unit, p.profiled_cpi)).collect();
        let agg = manifest.aggregate(&results).unwrap();
        let reference = analysis.estimate(&pts, 3.0).mean_cpi;
        prop_assert!((agg - reference).abs() < 1e-9, "{} vs {}", agg, reference);
    }

    /// Required sample size is monotone in the error target and achievable.
    #[test]
    fn required_size_invariants(trace in trace_strategy(), seed in any::<u64>()) {
        let analysis =
            SimProf::new(SimProfConfig { seed, ..Default::default() }).analyze(&trace).expect("valid trace");
        let n10 = analysis.required_size(3.0, 0.10);
        let n05 = analysis.required_size(3.0, 0.05);
        let n02 = analysis.required_size(3.0, 0.02);
        prop_assert!(n10 <= n05);
        prop_assert!(n05 <= n02);
        prop_assert!(n02 <= trace.units.len());
    }
}
