//! Paper-scale shape tests: the qualitative claims of the paper's
//! evaluation, checked at the figure-generation scale.
//!
//! These run the full 12-workload matrix and are `#[ignore]`d by default so
//! `cargo test --workspace` stays fast in debug builds. Run them with:
//!
//! ```text
//! cargo test --release --test paper_shape -- --ignored
//! ```

#![allow(clippy::needless_range_loop)]

use simprof::core::{SimProf, SimProfConfig};
use simprof::workloads::{Benchmark, Framework, WorkloadConfig, WorkloadId};

fn paper_runs() -> Vec<(String, simprof::core::Analysis)> {
    let cfg = WorkloadConfig::paper(42);
    let simprof = SimProf::new(SimProfConfig { seed: 42, ..Default::default() });
    WorkloadId::all()
        .into_iter()
        .map(|id| {
            let out = id.run_full(&cfg);
            (id.label(), simprof.analyze(&out.trace).expect("valid trace"))
        })
        .collect()
}

/// Fig. 6's shape: weighted CoV below population CoV for every workload.
#[test]
#[ignore = "paper-scale; run with --release -- --ignored"]
fn fig6_weighted_cov_below_population() {
    for (label, a) in paper_runs() {
        assert!(
            a.cov.weighted <= a.cov.population,
            "{label}: weighted {} vs population {}",
            a.cov.weighted,
            a.cov.population
        );
        assert!(a.cov.max >= a.cov.weighted - 1e-9, "{label}");
    }
}

/// Fig. 7's headline: SimProf's average error beats every baseline.
#[test]
#[ignore = "paper-scale; run with --release -- --ignored"]
fn fig7_simprof_error_smallest_on_average() {
    use simprof::core::{relative_error, second_points_by_cycles, srs_points};
    let cfg = WorkloadConfig::paper(42);
    let simprof = SimProf::new(SimProfConfig { seed: 42, ..Default::default() });
    let mut sums = [0.0f64; 3]; // second, srs, simprof
    let mut count = 0.0;
    for id in WorkloadId::all() {
        let out = id.run_full(&cfg);
        let a = simprof.analyze(&out.trace).expect("valid trace");
        let oracle = a.oracle_cpi();
        sums[0] +=
            relative_error(second_points_by_cycles(&out.trace, 6_000_000).predicted_cpi, oracle);
        let reps = 20u64;
        let mut srs = 0.0;
        let mut sp = 0.0;
        for rep in 0..reps {
            srs += relative_error(srs_points(&out.trace, 20, rep).predicted_cpi, oracle);
            let pts = a.select_points(20, rep);
            sp += relative_error(a.estimate(&pts, 3.0).mean_cpi, oracle);
        }
        sums[1] += srs / reps as f64;
        sums[2] += sp / reps as f64;
        count += 1.0;
    }
    let (second, srs, simprof_err) = (sums[0] / count, sums[1] / count, sums[2] / count);
    assert!(
        simprof_err < srs && simprof_err < second,
        "SimProf {simprof_err:.4} must beat SRS {srs:.4} and SECOND {second:.4}"
    );
    assert!(simprof_err < 0.06, "SimProf average error should be small: {simprof_err:.4}");
}

/// Fig. 9's shape: grep_sp forms a single phase; cc_sp forms the most;
/// Spark's phase-count range is at least as wide as Hadoop's.
#[test]
#[ignore = "paper-scale; run with --release -- --ignored"]
fn fig9_phase_count_shape() {
    let runs = paper_runs();
    let k_of = |l: &str| runs.iter().find(|(label, _)| label == l).unwrap().1.k();
    // grep_sp is the minimal-phase workload (paper: exactly 1).
    assert!(k_of("grep_sp") <= 2, "grep_sp: {}", k_of("grep_sp"));
    let min_sp = runs.iter().filter(|(l, _)| l.ends_with("_sp")).map(|(_, a)| a.k()).min().unwrap();
    assert_eq!(k_of("grep_sp"), min_sp, "grep_sp has the fewest Spark phases");
    // The graph workloads use the most operations (paper: cc_sp = 9, the
    // maximum). At scaled size the silhouette rule merges some GraphX
    // stages, so assert cc_sp is within one phase of the Spark maximum.
    let max_sp = runs.iter().filter(|(l, _)| l.ends_with("_sp")).map(|(_, a)| a.k()).max().unwrap();
    assert!(k_of("cc_sp") + 1 >= max_sp, "cc_sp {} vs max {}", k_of("cc_sp"), max_sp);
    // Spark's phase-count range is at least as wide as Hadoop's.
    let sp_range: Vec<usize> =
        runs.iter().filter(|(l, _)| l.ends_with("_sp")).map(|(_, a)| a.k()).collect();
    let hp_range: Vec<usize> =
        runs.iter().filter(|(l, _)| l.ends_with("_hp")).map(|(_, a)| a.k()).collect();
    let spread = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap();
    assert!(spread(&sp_range) >= spread(&hp_range), "{sp_range:?} vs {hp_range:?}");
}

/// Fig. 10's shape: grep_hp and sort_hp have no sort phase; the other four
/// Hadoop workloads do.
#[test]
#[ignore = "paper-scale; run with --release -- --ignored"]
fn fig10_sort_phases_match_paper() {
    use simprof::core::phase_type_distribution;
    use simprof::engine::OpClass;
    let cfg = WorkloadConfig::paper(42);
    let simprof = SimProf::new(SimProfConfig { seed: 42, ..Default::default() });
    for b in Benchmark::ALL {
        let out = b.run_full(Framework::Hadoop, &cfg);
        let a = simprof.analyze(&out.trace).expect("valid trace");
        let dist = phase_type_distribution(&a.model, &out.trace, &out.registry);
        let sort = dist.iter().find(|d| d.class == OpClass::Sort).map_or(0.0, |d| d.share);
        match b {
            Benchmark::Grep | Benchmark::Sort => {
                assert!(sort < 0.01, "{}_hp sort share {sort}", b.abbrev())
            }
            _ => assert!(sort > 0.05, "{}_hp sort share {sort}", b.abbrev()),
        }
    }
}

/// Fig. 14's shape: wc_sp's dominant fused phase holds ≥ 90 % of units and
/// is stable; the output phase is small with higher variation.
#[test]
#[ignore = "paper-scale; run with --release -- --ignored"]
fn fig14_wc_sp_fused_phase() {
    let cfg = WorkloadConfig::paper(42);
    let out = Benchmark::WordCount.run_full(Framework::Spark, &cfg);
    let a = SimProf::new(SimProfConfig { seed: 42, ..Default::default() })
        .analyze(&out.trace)
        .expect("valid trace");
    let mut weights = a.weights.clone();
    weights.sort_by(|x, y| y.partial_cmp(x).unwrap());
    assert!(weights[0] >= 0.90, "dominant fused phase: {weights:?}");
    let dominant =
        (0..a.k()).max_by(|&x, &y| a.weights[x].partial_cmp(&a.weights[y]).unwrap()).unwrap();
    assert!(a.stats[dominant].cov < 0.2, "fused phase is stable: {}", a.stats[dominant].cov);
}

/// Figs. 12–13's shape: input-sensitivity skips a meaningful share of the
/// simulation budget and leaves several phases insensitive.
#[test]
#[ignore = "paper-scale; run with --release -- --ignored"]
fn fig12_sensitivity_reduces_budget() {
    use simprof::core::input_sensitivity;
    use simprof::workloads::{GraphInput, Kronecker};
    // Same scale bump as the Fig. 12/13 harness: Algorithm 1 needs enough
    // classified units per phase per reference input.
    let mut cfg = WorkloadConfig::paper(42);
    cfg.graph_scale += 1;
    cfg.graph_degree += 2;
    let simprof = SimProf::new(SimProfConfig { seed: 42, ..Default::default() });

    let google =
        Kronecker::for_input(GraphInput::Google, cfg.graph_scale, cfg.graph_degree).generate(11);
    let train = Benchmark::ConnectedComponents.run_spark_on_graph(&cfg, &google);
    let a = simprof.analyze(&train.trace).expect("valid trace");

    let refs: Vec<_> = GraphInput::ALL
        .iter()
        .filter(|&&i| i != GraphInput::Google)
        .map(|&i| {
            let g =
                Kronecker::for_input(i, cfg.graph_scale, cfg.graph_degree).generate(12 + i as u64);
            Benchmark::ConnectedComponents.run_spark_on_graph(&cfg, &g).trace
        })
        .collect();
    let rr: Vec<&_> = refs.iter().collect();
    let report = input_sensitivity(&a.model, &train.trace, &rr, 0.10);
    assert!(report.sensitive_count() >= 1, "some phase must move across 7 diverse graphs");
    assert!(report.insensitive_count() >= 1, "some phase must be stable");
    let points = a.select_points(20, 5);
    let frac = report.sensitive_point_fraction(&points);
    assert!(frac < 1.0, "some budget must be skippable: {frac}");
}
