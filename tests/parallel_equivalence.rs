//! Parallel/sequential equivalence: the threaded substrate must produce
//! **bit-identical** results to 1-thread mode for every analysis entry point
//! (DESIGN.md §10's determinism contract), across random data and seeds.
//!
//! These tests mutate the process-wide worker-count override, so they all
//! live in this one integration-test binary (its own process) and serialize
//! on a lock.

use std::sync::Mutex;

use proptest::prelude::*;

use simprof::engine::FaultPlan;
use simprof::stats::{
    choose_k, kmeans_from_centers, kmeans_from_centers_reference, silhouette_score,
    silhouette_score_cached, DistCache, Matrix,
};
use simprof::workloads::{Benchmark, Framework, WorkloadConfig};

/// Serializes tests that flip the global worker-count override.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` twice — pinned to 1 worker and to `threads` workers — and
/// returns both results, restoring the default afterwards.
fn one_vs_many<R>(threads: usize, f: impl Fn() -> R) -> (R, R) {
    let _guard = THREADS_LOCK.lock().unwrap();
    rayon::set_threads(1);
    let one = f();
    rayon::set_threads(threads);
    let many = f();
    rayon::set_threads(0);
    (one, many)
}

/// Strategy: a feature matrix with latent block structure — `rows` points,
/// `cols` features, values loud on one band per latent behaviour.
fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (3usize..60, 1usize..8, 2usize..5, any::<u64>()).prop_map(|(rows, cols, bands, seed)| {
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|i| {
                (0..cols)
                    .map(|j| {
                        let loud = j % bands == i % bands;
                        let noise =
                            ((i * 31 + j * 7) as u64 ^ seed).wrapping_mul(0x9E37_79B9) % 1000;
                        if loud {
                            5.0 + noise as f64 * 1e-3
                        } else {
                            noise as f64 * 1e-3
                        }
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `choose_k` — the whole phase-formation sweep, including the distance
    /// cache, warm starts, and the parallel Lloyd iterations — is
    /// bit-identical between 1-thread and N-thread runs.
    #[test]
    fn choose_k_bit_identical_across_thread_counts(
        m in matrix_strategy(),
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let (one, many) = one_vs_many(threads, || choose_k(&m, 8, 0.9, 0.25, seed));
        prop_assert_eq!(one.k, many.k);
        prop_assert_eq!(&one.result.assignments, &many.result.assignments);
        prop_assert_eq!(&one.result.centers, &many.result.centers);
        prop_assert_eq!(one.result.inertia.to_bits(), many.result.inertia.to_bits());
        prop_assert_eq!(one.scores.len(), many.scores.len());
        for (&(ka, sa), &(kb, sb)) in one.scores.iter().zip(&many.scores) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(sa.to_bits(), sb.to_bits(), "score bits differ at k = {}", ka);
        }
    }

    /// Both silhouette paths (naive and distance-cached) are bit-identical
    /// across thread counts, and the cached path tracks the naive one to
    /// 1e-12.
    #[test]
    fn silhouette_bit_identical_across_thread_counts(
        m in matrix_strategy(),
        k in 2usize..5,
        threads in 2usize..6,
    ) {
        let assignments: Vec<usize> = (0..m.rows()).map(|i| i % k).collect();
        let (one, many) = one_vs_many(threads, || {
            let naive = silhouette_score(&m, &assignments);
            let cached = silhouette_score_cached(&DistCache::build(&m), &assignments);
            (naive, cached)
        });
        prop_assert_eq!(one.0.to_bits(), many.0.to_bits());
        prop_assert_eq!(one.1.to_bits(), many.1.to_bits());
        prop_assert!((one.0 - one.1).abs() <= 1e-12, "naive {} vs cached {}", one.0, one.1);
    }

    /// The Hamerly-accelerated Lloyd loop (the default behind `kmeans` and
    /// `choose_k`) produces **bit-identical** assignments, centers, inertia,
    /// and iteration counts to the unaccelerated reference scan from the
    /// same initial centers — the bounds only skip distance computations
    /// whose outcome is already certain.
    #[test]
    fn accelerated_kmeans_bit_identical_to_reference_lloyd(
        m in matrix_strategy(),
        k in 1usize..6,
        threads in 2usize..6,
    ) {
        let k = k.min(m.rows());
        let init: Vec<Vec<f64>> = (0..k).map(|i| m.row(i).to_vec()).collect();
        let (one, many) = one_vs_many(threads, || {
            let accel = kmeans_from_centers(&m, Matrix::from_rows(&init), 100);
            let reference = kmeans_from_centers_reference(&m, Matrix::from_rows(&init), 100);
            (accel, reference)
        });
        for (accel, reference) in [&one, &many] {
            prop_assert_eq!(&accel.assignments, &reference.assignments);
            prop_assert_eq!(&accel.centers, &reference.centers);
            prop_assert_eq!(accel.inertia.to_bits(), reference.inertia.to_bits());
            prop_assert_eq!(accel.iterations, reference.iterations);
        }
        prop_assert_eq!(one.0.inertia.to_bits(), many.0.inertia.to_bits());
        prop_assert_eq!(&one.0.assignments, &many.0.assignments);
    }
}

/// The scheduler's parallel per-slot machine simulation must leave **the
/// trace bytes** — the serialized [`simprof::profiler::ProfileTrace`], i.e.
/// every sampling unit's counters, stacks, and fault events — bit-identical
/// to a 1-thread run, here across full engine+profiler workload runs with GC
/// noise and a chaotic (non-speculative) fault plan.
#[test]
fn parallel_simulation_trace_bytes_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let run = || {
        let mut cfg = WorkloadConfig::tiny(7);
        cfg.sched.faults = FaultPlan { speculative: false, ..FaultPlan::uniform(90_000, 13) };
        let trace = Benchmark::WordCount.run(Framework::Spark, &cfg);
        serde_json::to_string(&trace).expect("trace serializes").into_bytes()
    };
    rayon::set_threads(1);
    let serial_bytes = run();
    for threads in [2, 8] {
        rayon::set_threads(threads);
        let parallel_bytes = run();
        assert_eq!(
            serial_bytes, parallel_bytes,
            "trace bytes diverged between 1 and {threads} threads"
        );
    }
    rayon::set_threads(0);
}
