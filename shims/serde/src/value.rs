//! The in-memory JSON value model shared by the `serde` and `serde_json`
//! stand-ins.

/// Object representation: insertion-ordered key/value pairs. Struct fields
/// keep declaration order; map serializers sort their keys.
pub type Map = Vec<(String, Value)>;

/// A JSON number, kept tagged so `u64`/`i64` round-trip bit-exactly (an
/// `f64`-only model would corrupt counters above 2^53).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always < 0; non-negative parses as `U64`).
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b,
            (Number::U64(a), Number::I64(b)) | (Number::I64(b), Number::U64(a)) => {
                i64::try_from(*a).is_ok_and(|a| a == *b)
            }
            (Number::F64(a), Number::U64(b)) | (Number::U64(b), Number::F64(a)) => *a == *b as f64,
            (Number::F64(a), Number::I64(b)) | (Number::I64(b), Number::F64(a)) => *a == *b as f64,
        }
    }
}

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered entries).
    Object(Map),
}

impl Value {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as object entries.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as array elements.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entry named `key`, when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::U64(n))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(Number::U64(n as u64))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(Number::U64(n as u64))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Value::Number(Number::U64(n as u64))
        } else {
            Value::Number(Number::I64(n))
        }
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::from(n as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::F64(f))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
