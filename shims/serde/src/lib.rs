//! Offline stand-in for `serde`.
//!
//! The workspace builds hermetically without crates.io, so this crate
//! provides the serialization surface SimProf actually uses: derivable
//! [`Serialize`] / [`Deserialize`] traits over an in-memory JSON
//! [`Value`] model. The visitor architecture of real serde is replaced by
//! direct `T -> Value -> T` conversion, which the sibling `serde_json`
//! stand-in renders to and parses from JSON text.
//!
//! Supported shapes (everything the workspace derives): named-field
//! structs, tuple/newtype structs, enums with unit/tuple/struct variants
//! (externally tagged, like real serde), plus the std impls below. The
//! `#[serde(default)]` field attribute is honoured on deserialization.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, HashMap};

/// Deserialization error: a human-readable path + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Self(m.to_string())
    }
}

/// A type renderable to the JSON value model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type reconstructible from the JSON value model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Converts any serializable value into a [`Value`] (mirrors
/// `serde_json::to_value`, re-exported there).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

// ---------------------------------------------------------------------------
// std impls: scalars
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::msg(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::msg(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// std impls: composites
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(DeError::msg(format!("expected tuple array, got {}", other.kind()))),
                };
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::msg(format!("expected {}-tuple, got {} elements", want, items.len())));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    /// Keys are emitted in sorted order so output is deterministic across
    /// processes (std's `HashMap` iteration order is seeded per process).
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive-macro support: helpers the generated code calls.
// ---------------------------------------------------------------------------

/// Looks up `key` in an object's entry list (derive-generated code helper).
pub fn value_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Internal machinery used by the generated derive code. Not a public API.
pub mod __private {
    pub use super::{value_get, DeError, Deserialize, Serialize, Value};
}
