//! Offline stand-in for the `rand` crate.
//!
//! The SimProf workspace is built in hermetic environments with no crates.io
//! access, so the subset of the `rand` API the workspace actually uses is
//! provided here: a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`SeedableRng`] constructors, and the [`RngExt`]
//! extension trait with `random` / `random_range` / `random_bool`.
//!
//! Statistical quality is more than sufficient for the workloads' synthetic
//! data generation and the stats crate's k-means++ seeding; no cryptographic
//! guarantees are made (none are needed).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 — the same
    /// construction the real `rand` crate documents for `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// Small, fast, and passes BigCrush; seeded from a `u64` via SplitMix64
    /// so nearby seeds give unrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Types samplable uniformly over their whole domain (the `random::<T>()`
/// family).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait (mirrors `rand::Rng`).
pub trait RngExt: RngCore {
    /// Draws a uniform value over `T`'s whole domain (`[0, 1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..16).map(|_| StdRng::seed_from_u64(10).random()).collect::<Vec<u64>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(0u64..=5);
            assert!(y <= 5);
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut r = StdRng::seed_from_u64(2);
        // Must not panic or loop.
        let _ = r.random_range(0u64..=u64::MAX);
    }
}
