//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property tests use: range / tuple /
//! collection strategies, `any::<T>()`, `prop_map`, the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), and the
//! `prop_assert*` macros. Generation is deterministic: each test case is
//! seeded from the fully-qualified test name and case index, so failures
//! reproduce exactly across runs (no persistence files needed).

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (only the case count is modelled).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic test RNG (SplitMix64 over a name+case seed).
pub mod test_runner {
    /// SplitMix64 generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG for one test case: FNV-1a over the test path,
        /// mixed with the case index.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            // Multiply-shift reduction; bias is negligible for test data.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub mod strategy {
    use super::TestRng;

    /// A value generator. `generate` must be deterministic in the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{Just, Strategy};

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(41) as i32 - 20;
        m * 10f64.powi(e)
    }
}

/// Strategy for the whole domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy over all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_excl: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max_excl: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// Everything a property-test file typically imports.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` works like upstream.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs. An optional
/// leading `#![proptest_config(expr)]` sets the case count for the block.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($p,)+) = (
                        $($crate::Strategy::generate(&($s), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($p in $s),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let u = Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&u));
            let i = Strategy::generate(&(-4i64..9), &mut rng);
            assert!((-4..9).contains(&i));
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |case| {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            Strategy::generate(&crate::collection::vec(0u32..100, 3..9), &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(1), gen(2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(xs in prop::collection::vec(any::<u32>(), 0..10), k in 1usize..4) {
            prop_assert!(xs.len() < 10);
            prop_assert!((1..4).contains(&k));
            prop_assert_eq!(xs.len(), xs.iter().filter(|_| true).count());
        }
    }
}
