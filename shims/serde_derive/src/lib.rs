//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes the SimProf workspace uses — no `syn`/`quote` available in the
//! hermetic build, so the item token stream is parsed directly:
//!
//! * named-field structs (externally a JSON object, fields in declaration
//!   order; `#[serde(default)]` honoured on deserialize),
//! * tuple structs (newtypes transparent, wider tuples as arrays),
//! * enums with unit / tuple / struct variants (externally tagged exactly
//!   like real serde: `"Variant"`, `{"Variant": value}`,
//!   `{"Variant": {..fields..}}`).
//!
//! Generic type parameters are not supported (the workspace derives none);
//! the macro fails with a clear compile error if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the value-model `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => item.serialize_impl().parse().expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives the value-model `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => item.deserialize_impl().parse().expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error parses")
}

/// One field with its `#[serde(default)]` flag.
struct Field {
    name: String,
    default: bool,
}

enum Body {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Enum: (variant name, data shape).
    Enum(Vec<(String, VariantData)>),
}

enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Item {
    name: String,
    body: Body,
}

impl Item {
    fn parse(input: TokenStream) -> Result<Self, String> {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0;
        skip_attrs_and_vis(&tokens, &mut i);
        let kw = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected struct/enum, got {other:?}")),
        };
        i += 1;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected item name, got {other:?}")),
        };
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!("serde shim derive: generic type `{name}` unsupported"));
        }
        let body = match kw.as_str() {
            "struct" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Struct(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Tuple(0),
                other => return Err(format!("unsupported struct body: {other:?}")),
            },
            "enum" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Enum(parse_variants(g.stream())?)
                }
                other => return Err(format!("expected enum body, got {other:?}")),
            },
            other => return Err(format!("cannot derive for `{other}` items")),
        };
        Ok(Self { name, body })
    }

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(fields) => {
                let mut s = String::from("let mut __m = ::std::vec::Vec::new();\n");
                for f in fields {
                    s.push_str(&format!(
                        "__m.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                        f.name, f.name
                    ));
                }
                s.push_str("::serde::Value::Object(__m)");
                s
            }
            Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Body::Tuple(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Body::Enum(variants) => {
                let mut arms = String::new();
                for (v, data) in variants {
                    match data {
                        VariantData::Unit => arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                        )),
                        VariantData::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), {inner})]),\n",
                                binds.join(", ")
                            ));
                        }
                        VariantData::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                        f.name, f.name
                                    )
                                })
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{v} {{ {} }} => ::serde::Value::Object(vec![({v:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                                binds.join(", "),
                                pushes.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        };
        format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
             }}\n"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(fields) => {
                let mut s = format!(
                    "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::msg(\
                       format!(\"{name}: expected object, got {{}}\", __v.kind())))?;\n\
                     Ok(Self {{\n"
                );
                for f in fields {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return Err(::serde::DeError::msg(\"{name}: missing field `{}`\"))",
                            f.name
                        )
                    };
                    s.push_str(&format!(
                        "{}: match ::serde::value_get(__obj, {:?}) {{\n\
                            Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                            None => {missing},\n\
                         }},\n",
                        f.name, f.name
                    ));
                }
                s.push_str("})");
                s
            }
            Body::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string(),
            Body::Tuple(n) => {
                let mut s = format!(
                    "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::msg(\
                       format!(\"{name}: expected array, got {{}}\", __v.kind())))?;\n\
                     if __arr.len() != {n} {{\n\
                       return Err(::serde::DeError::msg(format!(\"{name}: expected {n} elements, got {{}}\", __arr.len())));\n\
                     }}\n\
                     Ok(Self("
                );
                for i in 0..*n {
                    s.push_str(&format!("::serde::Deserialize::from_value(&__arr[{i}])?, "));
                }
                s.push_str("))");
                s
            }
            Body::Enum(variants) => {
                // Externally tagged: a bare string names a unit variant; an
                // object with one entry names a data variant.
                let mut unit_arms = String::new();
                let mut data_arms = String::new();
                for (v, data) in variants {
                    match data {
                        VariantData::Unit => {
                            unit_arms.push_str(&format!("{v:?} => return Ok({name}::{v}),\n"));
                        }
                        VariantData::Tuple(1) => data_arms.push_str(&format!(
                            "{v:?} => return Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        VariantData::Tuple(n) => {
                            let mut arm = format!(
                                "{v:?} => {{\n\
                                   let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::msg(\"{name}::{v}: expected array\"))?;\n\
                                   if __arr.len() != {n} {{ return Err(::serde::DeError::msg(\"{name}::{v}: wrong arity\")); }}\n\
                                   return Ok({name}::{v}("
                            );
                            for i in 0..*n {
                                arm.push_str(&format!(
                                    "::serde::Deserialize::from_value(&__arr[{i}])?, "
                                ));
                            }
                            arm.push_str("));\n}\n");
                            data_arms.push_str(&arm);
                        }
                        VariantData::Struct(fields) => {
                            let mut arm = format!(
                                "{v:?} => {{\n\
                                   let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::msg(\"{name}::{v}: expected object\"))?;\n\
                                   return Ok({name}::{v} {{\n"
                            );
                            for f in fields {
                                let missing = if f.default {
                                    "::std::default::Default::default()".to_string()
                                } else {
                                    format!(
                                        "return Err(::serde::DeError::msg(\"{name}::{v}: missing field `{}`\"))",
                                        f.name
                                    )
                                };
                                arm.push_str(&format!(
                                    "{}: match ::serde::value_get(__obj, {:?}) {{\n\
                                        Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                                        None => {missing},\n\
                                     }},\n",
                                    f.name, f.name
                                ));
                            }
                            arm.push_str("});\n}\n");
                            data_arms.push_str(&arm);
                        }
                    }
                }
                format!(
                    "if let Some(__s) = __v.as_str() {{\n\
                       match __s {{\n{unit_arms}\
                         __other => return Err(::serde::DeError::msg(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                       }}\n\
                     }}\n\
                     if let Some(__obj) = __v.as_object() {{\n\
                       if __obj.len() == 1 {{\n\
                         let (__tag, __inner) = &__obj[0];\n\
                         match __tag.as_str() {{\n{data_arms}\
                           __other => return Err(::serde::DeError::msg(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                       }}\n\
                     }}\n\
                     Err(::serde::DeError::msg(format!(\"{name}: expected variant, got {{}}\", __v.kind())))"
                )
            }
        };
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
             }}\n"
        )
    }
}

/// Skips outer attributes (`#[...]`) and a visibility modifier at `*i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Does an attribute group (`#[serde(...)]` contents) request `default`?
fn attr_is_serde_default(tokens: &[TokenTree], i: usize) -> bool {
    let Some(TokenTree::Group(attr)) = tokens.get(i + 1) else {
        return false;
    };
    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
    let is_serde = matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return false;
    }
    inner.iter().any(|t| match t {
        TokenTree::Group(g) => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    })
}

/// Parses `name: Type, ...` named fields, tracking `#[serde(default)]`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (collect the serde(default) flag).
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    default |= attr_is_serde_default(&tokens, i);
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!("expected field name, got {:?}", tokens.get(i)));
        };
        fields.push(Field { name: id.to_string(), default });
        i += 1;
        // Skip `:` and the type up to a top-level comma (angle-bracket aware:
        // commas inside `<...>` belong to the type).
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts top-level (angle-bracket aware) comma-separated fields of a tuple
/// struct / tuple variant.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Parses enum variants.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantData)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes before the variant.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!("expected variant name, got {:?}", tokens.get(i)));
        };
        let name = id.to_string();
        i += 1;
        let data = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantData::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantData::Tuple(count_top_level_fields(g.stream()))
            }
            _ => VariantData::Unit,
        };
        variants.push((name, data));
        // Skip an optional discriminant and the trailing comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(variants)
}
