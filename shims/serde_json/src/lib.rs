//! Offline stand-in for `serde_json`.
//!
//! Renders the shim-`serde` [`Value`] model to JSON text and parses it
//! back: [`to_string`], [`to_string_pretty`] (2-space indent, like real
//! serde_json), [`from_str`], and a [`json!`] macro covering the object /
//! array / literal forms the workspace uses.

pub use serde::{Map, Number, Value};

/// Serialization/deserialization error (message only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Rebuilds a deserializable type from a [`Value`].
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        // Non-finite floats have no JSON representation; real serde_json
        // emits `null` for them.
        Number::F64(f) if !f.is_finite() => out.push_str("null"),
        Number::F64(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            // `{}` on an integral f64 prints e.g. "2"; keep the float-ness
            // so the value re-parses as F64-compatible (as_f64 widens
            // integers anyway, so the `.0` suffix is cosmetic parity).
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from an inline JSON-ish literal. Supports the forms
/// the workspace uses: `{"key": expr, ...}`, `[expr, ...]`, `null`, and
/// bare serializable expressions. Unlike upstream, object/array values are
/// plain Rust expressions — nest containers by nesting explicit `json!`
/// calls (e.g. `json!({"xs": json!([1, 2])})`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let inner = json!([1.5, true, json!(null)]);
        let v = json!({"a": 1, "b": inner, "s": "hi\n"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn big_u64_roundtrips_exactly() {
        let n = u64::MAX - 3;
        let text = to_string(&n).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn negative_and_float_numbers() {
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
        let back: f64 = from_str("2.5e3").unwrap();
        assert_eq!(back, 2500.0);
    }
}
