//! Offline stand-in for `rayon` with *real* parallelism.
//!
//! The workspace builds hermetically without crates.io, so this crate keeps
//! the `into_par_iter()` / `par_iter()` entry points but executes them on a
//! chunked, order-preserving **persistent worker pool**: workers are spawned
//! once (lazily, on first parallel region) and parked on a condvar between
//! regions, so a parallel region costs a wakeup instead of a thread
//! spawn+join. Hot paths like the Lloyd loop run thousands of short regions
//! per second; scoped spawning made each one pay ~100 µs of thread churn.
//!
//! # Determinism contract
//!
//! Results are **bit-identical** for every worker count, including 1:
//!
//! * `map`/`collect` preserve input order: chunk boundaries depend only on
//!   the chunk size, workers *steal* chunk indices from a shared counter,
//!   and every chunk's output lands in the slot of its input index — so
//!   which worker executes a chunk can never change the output vector.
//! * `sum` is *always* computed as fixed-size chunk partials folded in chunk
//!   order ([`SUM_CHUNK`] items per partial, independent of the worker
//!   count), because floating-point addition is not associative. The
//!   single-threaded fallback uses the exact same chunking, so a 1-thread
//!   run and an N-thread run associate additions identically.
//!
//! # Worker-count resolution
//!
//! 1. A programmatic override installed with [`set_threads`] (the CLI's
//!    `--threads` flag lands here);
//! 2. the `SIMPROF_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested parallel regions run sequentially on the worker that encounters
//! them (a thread-local depth guard), so a parallel outer loop over
//! workloads does not multiply threads with the parallel k-means inside it.
//! The submitting thread participates in its own region (it steals chunks
//! like any worker), so `--threads N` means N executing threads, not N+1.

use std::cell::{Cell, UnsafeCell};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Items per summation chunk. Fixed (never derived from the worker count) so
/// that `sum` associates floating-point additions identically at every
/// thread count.
pub const SUM_CHUNK: usize = 256;

/// Below this many items a parallel call runs sequentially: spawning scoped
/// worker threads costs more than the work can recoup.
const PAR_THRESHOLD: usize = 4;

/// Programmatic worker-count override; `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Worker count resolved from the environment, computed once.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Set while the current thread is executing inside a parallel region;
    /// nested regions then run sequentially instead of spawning again.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Installs a workspace-wide worker-count override (the CLI `--threads`
/// flag). Passing `0` clears the override, restoring the
/// `SIMPROF_THREADS`-then-`available_parallelism` resolution.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count parallel regions will currently use (≥ 1).
pub fn current_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("SIMPROF_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// A write-once output slot shared across workers. Safety: each slot index
/// is handed to exactly one worker (distinct chunk indices from the shared
/// counter), and the submitter only reads after the pool barrier.
struct Slot<V>(UnsafeCell<V>);

unsafe impl<V: Send> Sync for Slot<V> {}

impl<V> Slot<V> {
    fn new(v: V) -> Self {
        Slot(UnsafeCell::new(v))
    }
    fn into_inner(self) -> V {
        self.0.into_inner()
    }
}

/// The type-erased job currently published to the pool: a pointer to a
/// `&(dyn Fn() + Sync)` living on the submitting thread's stack. Workers
/// may only dereference it between claiming a slot and decrementing
/// `active`; the submitter blocks until `active == 0` with the job closed,
/// so the borrow can never outlive the stack frame.
#[derive(Clone, Copy)]
struct RawJob {
    data: *const (),
    vtable: *const (),
}

unsafe impl Send for RawJob {}

impl RawJob {
    fn erase(f: &(dyn Fn() + Sync)) -> Self {
        // Decompose the wide reference; reassembled in `call`.
        let parts: (*const (), *const ()) = unsafe { std::mem::transmute(f) };
        RawJob { data: parts.0, vtable: parts.1 }
    }

    unsafe fn call(self) {
        let f: &(dyn Fn() + Sync) = unsafe { std::mem::transmute((self.data, self.vtable)) };
        f();
    }
}

/// Pool bookkeeping behind one mutex. `epoch` increments per published job;
/// workers claim one of `open_slots` participation slots, run the job, and
/// decrement `active`. `closed` stops late wakers from claiming a job whose
/// chunks are already drained (or whose submitter is tearing it down).
struct PoolState {
    epoch: u64,
    job: Option<RawJob>,
    /// The submitter's observability context, propagated so worker spans,
    /// metrics, and allocation charges attribute to the submitting job
    /// (concurrent jobs never share a region: `submit` serializes them).
    ctx: Option<simprof_obs::ObsContext>,
    open_slots: usize,
    active: usize,
    closed: bool,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Serializes whole jobs: one parallel region owns the pool at a time
    /// (concurrent top-level submitters queue here; nested regions never
    /// reach the pool thanks to the `IN_PARALLEL` guard).
    submit: Mutex<()>,
}

/// Hard cap on persistent workers, a guard against pathological
/// `set_threads` values; the pool grows lazily up to this.
const MAX_POOL_WORKERS: usize = 256;

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            epoch: 0,
            job: None,
            ctx: None,
            open_slots: 0,
            active: 0,
            closed: true,
            spawned: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        submit: Mutex::new(()),
    })
}

fn worker_main() {
    // Persistent workers live inside parallel regions by definition, so any
    // nested region they encounter runs sequentially.
    IN_PARALLEL.with(|flag| flag.set(true));
    let pool = pool();
    let mut last_epoch = 0u64;
    let mut st = pool.state.lock().expect("pool lock");
    loop {
        while st.epoch == last_epoch {
            st = pool.work_cv.wait(st).expect("pool lock");
        }
        last_epoch = st.epoch;
        if st.closed || st.open_slots == 0 {
            continue;
        }
        let Some(job) = st.job else { continue };
        let ctx = st.ctx.clone();
        st.open_slots -= 1;
        st.active += 1;
        drop(st);
        {
            // Record under the submitting job's context (if it has one) so
            // concurrent jobs don't bleed worker activity into each other.
            let _installed = ctx.as_ref().map(simprof_obs::ObsContext::install);
            // Attribute this worker's wall-clock to its own span (and
            // thread id) so timelines show pool activity; one relaxed load
            // when no obs session is active.
            let _span = simprof_obs::span!("parallel.worker");
            // The chunk loop inside catches panics itself; `call` never
            // unwinds.
            unsafe { job.call() };
        }
        st = pool.state.lock().expect("pool lock");
        st.active -= 1;
        if st.active == 0 && st.closed {
            pool.done_cv.notify_all();
        }
    }
}

/// Runs `work` on up to `extra` pool workers plus the calling thread, all
/// stealing from the same chunk counter, and returns once every
/// participant is done. `work` must be panic-free (callers wrap the chunk
/// bodies in `catch_unwind`).
fn pool_run(extra: usize, work: &(dyn Fn() + Sync)) {
    let pool = pool();
    let _submit = pool.submit.lock().expect("pool submit lock");
    let extra = extra.min(MAX_POOL_WORKERS);
    {
        let mut st = pool.state.lock().expect("pool lock");
        while st.spawned < extra {
            std::thread::Builder::new()
                .name("simprof-par".into())
                .spawn(worker_main)
                .expect("spawn pool worker");
            st.spawned += 1;
        }
        st.epoch += 1;
        st.job = Some(RawJob::erase(work));
        st.ctx = simprof_obs::ObsContext::current();
        st.open_slots = extra;
        st.active = 0;
        st.closed = false;
    }
    pool.work_cv.notify_all();

    // Participate: the submitter steals chunks like any worker. Mark the
    // thread in-parallel so a nested region inside `work` runs sequentially
    // instead of re-entering the (non-reentrant) submit lock.
    IN_PARALLEL.with(|flag| flag.set(true));
    work();
    IN_PARALLEL.with(|flag| flag.set(false));

    // Close the job (late wakers may no longer claim it) and wait out the
    // workers that did claim it — after this, no reference to `work`'s
    // stack frame survives.
    let mut st = pool.state.lock().expect("pool lock");
    st.closed = true;
    st.job = None;
    st.ctx = None;
    while st.active > 0 {
        st = pool.done_cv.wait(st).expect("pool lock");
    }
}

/// Runs `f` over `items` chunk by chunk on the persistent worker pool,
/// returning per-chunk outputs in chunk order. `chunk_size` controls only
/// scheduling granularity for `collect`; summation callers pass
/// [`SUM_CHUNK`] so the partials are thread-count independent.
///
/// Chunk boundaries depend only on `chunk_size`; participants (the pool
/// workers plus the submitting thread) steal chunk indices from a shared
/// counter and write each chunk's output into the slot of its input index,
/// so the reassembled result is order-preserving by construction no matter
/// which thread ran what.
fn run_chunks<I, T, F>(items: Vec<I>, chunk_size: usize, f: &F) -> Vec<Vec<T>>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let chunk_size = chunk_size.max(1);
    let workers = current_threads();
    let sequential = workers <= 1 || n < PAR_THRESHOLD || IN_PARALLEL.with(Cell::get);

    // Split into owned chunks; chunk boundaries depend only on `chunk_size`.
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n.div_ceil(chunk_size));
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk_size).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }

    if sequential {
        return chunks.into_iter().map(|c| c.into_iter().map(f).collect()).collect();
    }

    let n_chunks = chunks.len();
    let input: Vec<Slot<Option<Vec<I>>>> = chunks.into_iter().map(|c| Slot::new(Some(c))).collect();
    let out: Vec<Slot<Option<Vec<T>>>> = (0..n_chunks).map(|_| Slot::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);

    // Each participant (pool worker or submitter) runs this same loop.
    let work = || loop {
        let ci = next.fetch_add(1, Ordering::Relaxed);
        if ci >= n_chunks {
            break;
        }
        // Safety: `ci` values are unique across participants, so each input
        // slot is taken and each output slot written by exactly one thread.
        let chunk = unsafe { (*input[ci].0.get()).take().expect("chunk taken once") };
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            chunk.into_iter().map(f).collect::<Vec<T>>()
        })) {
            Ok(r) => unsafe { *out[ci].0.get() = Some(r) },
            Err(_) => panicked.store(true, Ordering::SeqCst),
        }
    };
    pool_run(workers - 1, &work);

    if panicked.load(Ordering::SeqCst) {
        panic!("parallel worker panicked");
    }
    out.into_iter().map(|c| c.into_inner().expect("every chunk produced")).collect()
}

/// An order-preserving parallel iterator over owned items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel; order is preserved.
    pub fn map<T, F>(self, f: F) -> ParMap<I, F>
    where
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Sums the items directly (equivalent to `.map(|x| x).sum()`).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I> + std::iter::Sum<S> + Send,
    {
        self.map(|x| x).sum()
    }

    /// Collects the items into `C` (identity map).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I>,
    {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator: the terminal `collect`/`sum` runs the pool.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Runs the map on the pool and collects outputs in input order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(I) -> T + Sync,
        C: FromIterator<T>,
    {
        let n = self.items.len();
        // Scheduling-only granularity: ~4 chunks per worker amortizes spawn
        // cost while keeping round-robin assignment balanced.
        let chunk = n.div_ceil(current_threads().max(1) * 4).max(1);
        run_chunks(self.items, chunk, &self.f).into_iter().flatten().collect()
    }

    /// Runs the map on the pool and sums outputs via fixed-size chunk
    /// partials folded in chunk order (see the crate-level determinism
    /// contract).
    pub fn sum<T, S>(self) -> S
    where
        T: Send,
        F: Fn(I) -> T + Sync,
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let partials: Vec<S> = run_chunks(self.items, SUM_CHUNK, &self.f)
            .into_iter()
            .map(|c| c.into_iter().sum::<S>())
            .collect();
        partials.into_iter().sum()
    }
}

/// The rayon prelude: import to get `into_par_iter()`/`par_iter()`.
pub mod prelude {
    pub use super::{ParIter, ParMap};

    /// Parallel stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;

        /// Converts into an order-preserving parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;

        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter { items: self.into_iter().collect() }
        }
    }

    /// Parallel stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The element type (a reference).
        type Item: Send + 'a;

        /// Returns a borrowing parallel iterator.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread override.
    static THREADS_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = THREADS_LOCK.lock().unwrap();
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn par_pipelines_match_sequential() {
        let doubled: Vec<usize> = (0..10).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let v = vec![1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().sum();
        assert_eq!(s, 6.0);
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let expect: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(i)).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<u64> = with_threads(threads, || {
                (0..10_000u64).into_par_iter().map(|i| i.wrapping_mul(i)).collect()
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn sum_is_bit_identical_across_thread_counts() {
        // Values chosen so the sum is sensitive to association order.
        let f = |i: u64| ((i as f64) * 1e-3).sin() * 1e8 + 1e-7 * (i as f64);
        let one: f64 = with_threads(1, || (0..50_000u64).into_par_iter().map(f).sum());
        for threads in [2, 3, 5, 16] {
            let many: f64 = with_threads(threads, || (0..50_000u64).into_par_iter().map(f).sum());
            assert_eq!(one.to_bits(), many.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn nested_regions_do_not_explode() {
        let got: Vec<usize> = with_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| (0..32usize).into_par_iter().map(move |j| i + j).sum())
                .collect()
        });
        let expect: Vec<usize> = (0..64).map(|i| (0..32).map(|j| i + j).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(got.is_empty());
        let s: f64 = Vec::<f64>::new().into_par_iter().sum();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let caught = with_threads(4, || {
            std::panic::catch_unwind(|| {
                let _: Vec<usize> = (0..100usize)
                    .into_par_iter()
                    .map(|i| if i == 57 { panic!("boom") } else { i })
                    .collect();
            })
        });
        assert!(caught.is_err(), "panic in a chunk must surface");
        // The pool must still be usable after a panicked job.
        let ok: Vec<usize> = with_threads(4, || (0..100usize).into_par_iter().map(|i| i).collect());
        assert_eq!(ok.len(), 100);
    }

    #[test]
    fn pool_survives_many_small_regions() {
        // Thousands of short regions exercise park/wake reuse; any missed
        // wakeup or slot-accounting bug deadlocks or corrupts output here.
        with_threads(4, || {
            for round in 0..2_000usize {
                let got: usize = (0..32usize).into_par_iter().map(|i| i + round).sum();
                assert_eq!(got, (0..32).map(|i| i + round).sum::<usize>());
            }
        });
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        with_threads(3, || {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|t| {
                        s.spawn(move || {
                            let got: Vec<usize> =
                                (0..500usize).into_par_iter().map(move |i| i * t).collect();
                            assert_eq!(got, (0..500).map(|i| i * t).collect::<Vec<_>>());
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("submitter thread");
                }
            });
        });
    }

    #[test]
    fn override_beats_environment() {
        let _guard = THREADS_LOCK.lock().unwrap();
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }
}
