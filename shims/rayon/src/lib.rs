//! Offline stand-in for `rayon` with *real* parallelism.
//!
//! The workspace builds hermetically without crates.io, so this crate keeps
//! the `into_par_iter()` / `par_iter()` entry points but executes them on a
//! chunked, order-preserving pool of scoped threads (`std::thread::scope`)
//! instead of mapping them onto sequential iterators.
//!
//! # Determinism contract
//!
//! Results are **bit-identical** for every worker count, including 1:
//!
//! * `map`/`collect` preserve input order, so any chunking produces the same
//!   output vector.
//! * `sum` is *always* computed as fixed-size chunk partials folded in chunk
//!   order ([`SUM_CHUNK`] items per partial, independent of the worker
//!   count), because floating-point addition is not associative. The
//!   single-threaded fallback uses the exact same chunking, so a 1-thread
//!   run and an N-thread run associate additions identically.
//!
//! # Worker-count resolution
//!
//! 1. A programmatic override installed with [`set_threads`] (the CLI's
//!    `--threads` flag lands here);
//! 2. the `SIMPROF_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested parallel regions run sequentially on the worker that encounters
//! them (a thread-local depth guard), so a parallel outer loop over
//! workloads does not multiply threads with the parallel k-means inside it.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Items per summation chunk. Fixed (never derived from the worker count) so
/// that `sum` associates floating-point additions identically at every
/// thread count.
pub const SUM_CHUNK: usize = 256;

/// Below this many items a parallel call runs sequentially: spawning scoped
/// worker threads costs more than the work can recoup.
const PAR_THRESHOLD: usize = 4;

/// Programmatic worker-count override; `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Worker count resolved from the environment, computed once.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Set while the current thread is executing inside a parallel region;
    /// nested regions then run sequentially instead of spawning again.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Installs a workspace-wide worker-count override (the CLI `--threads`
/// flag). Passing `0` clears the override, restoring the
/// `SIMPROF_THREADS`-then-`available_parallelism` resolution.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count parallel regions will currently use (≥ 1).
pub fn current_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("SIMPROF_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Runs `f` over `items` chunk by chunk on scoped worker threads, returning
/// per-chunk outputs in chunk order. `chunk_size` controls only scheduling
/// granularity for `collect`; summation callers pass [`SUM_CHUNK`] so the
/// partials are thread-count independent.
///
/// Chunks are assigned to workers round-robin (chunk `c` → worker
/// `c % workers`), each worker maps its chunks sequentially, and the main
/// thread reassembles outputs by chunk index — order preserving by
/// construction.
fn run_chunks<I, T, F>(items: Vec<I>, chunk_size: usize, f: &F) -> Vec<Vec<T>>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let chunk_size = chunk_size.max(1);
    let workers = current_threads();
    let sequential = workers <= 1 || n < PAR_THRESHOLD || IN_PARALLEL.with(Cell::get);

    // Split into owned chunks; chunk boundaries depend only on `chunk_size`.
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n.div_ceil(chunk_size));
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk_size).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }

    if sequential {
        return chunks.into_iter().map(|c| c.into_iter().map(f).collect()).collect();
    }

    let n_chunks = chunks.len();
    let mut per_worker: Vec<Vec<(usize, Vec<I>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (ci, c) in chunks.into_iter().enumerate() {
        per_worker[ci % workers].push((ci, c));
    }

    let mut out: Vec<Option<Vec<T>>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .filter(|mine| !mine.is_empty())
            .map(|mine| {
                s.spawn(move || {
                    IN_PARALLEL.with(|flag| flag.set(true));
                    // Attribute this worker's wall-clock to its own span
                    // (and thread id) so timelines show pool activity; one
                    // relaxed load when no obs session is active.
                    let _span = simprof_obs::span!("parallel.worker");
                    mine.into_iter()
                        .map(|(ci, c)| (ci, c.into_iter().map(f).collect::<Vec<T>>()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (ci, r) in h.join().expect("parallel worker panicked") {
                out[ci] = Some(r);
            }
        }
    });
    out.into_iter().map(|c| c.expect("every chunk produced")).collect()
}

/// An order-preserving parallel iterator over owned items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel; order is preserved.
    pub fn map<T, F>(self, f: F) -> ParMap<I, F>
    where
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Sums the items directly (equivalent to `.map(|x| x).sum()`).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I> + std::iter::Sum<S> + Send,
    {
        self.map(|x| x).sum()
    }

    /// Collects the items into `C` (identity map).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I>,
    {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator: the terminal `collect`/`sum` runs the pool.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Runs the map on the pool and collects outputs in input order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(I) -> T + Sync,
        C: FromIterator<T>,
    {
        let n = self.items.len();
        // Scheduling-only granularity: ~4 chunks per worker amortizes spawn
        // cost while keeping round-robin assignment balanced.
        let chunk = n.div_ceil(current_threads().max(1) * 4).max(1);
        run_chunks(self.items, chunk, &self.f).into_iter().flatten().collect()
    }

    /// Runs the map on the pool and sums outputs via fixed-size chunk
    /// partials folded in chunk order (see the crate-level determinism
    /// contract).
    pub fn sum<T, S>(self) -> S
    where
        T: Send,
        F: Fn(I) -> T + Sync,
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let partials: Vec<S> = run_chunks(self.items, SUM_CHUNK, &self.f)
            .into_iter()
            .map(|c| c.into_iter().sum::<S>())
            .collect();
        partials.into_iter().sum()
    }
}

/// The rayon prelude: import to get `into_par_iter()`/`par_iter()`.
pub mod prelude {
    pub use super::{ParIter, ParMap};

    /// Parallel stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;

        /// Converts into an order-preserving parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;

        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter { items: self.into_iter().collect() }
        }
    }

    /// Parallel stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The element type (a reference).
        type Item: Send + 'a;

        /// Returns a borrowing parallel iterator.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread override.
    static THREADS_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = THREADS_LOCK.lock().unwrap();
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn par_pipelines_match_sequential() {
        let doubled: Vec<usize> = (0..10).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let v = vec![1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().sum();
        assert_eq!(s, 6.0);
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let expect: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(i)).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<u64> = with_threads(threads, || {
                (0..10_000u64).into_par_iter().map(|i| i.wrapping_mul(i)).collect()
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn sum_is_bit_identical_across_thread_counts() {
        // Values chosen so the sum is sensitive to association order.
        let f = |i: u64| ((i as f64) * 1e-3).sin() * 1e8 + 1e-7 * (i as f64);
        let one: f64 = with_threads(1, || (0..50_000u64).into_par_iter().map(f).sum());
        for threads in [2, 3, 5, 16] {
            let many: f64 = with_threads(threads, || (0..50_000u64).into_par_iter().map(f).sum());
            assert_eq!(one.to_bits(), many.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn nested_regions_do_not_explode() {
        let got: Vec<usize> = with_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| (0..32usize).into_par_iter().map(move |j| i + j).sum())
                .collect()
        });
        let expect: Vec<usize> = (0..64).map(|i| (0..32).map(|j| i + j).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(got.is_empty());
        let s: f64 = Vec::<f64>::new().into_par_iter().sum();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn override_beats_environment() {
        let _guard = THREADS_LOCK.lock().unwrap();
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }
}
