//! Offline stand-in for `rayon`.
//!
//! The workspace builds hermetically without crates.io, so this crate maps
//! the `into_par_iter()` / `par_iter()` entry points onto plain sequential
//! iterators. Results are identical (the workspace only uses order-preserving
//! `map`/`collect`/`sum` pipelines); only wall-clock parallelism is lost,
//! which keeps hermetic builds deterministic and dependency-free.

/// The rayon prelude: import to get `into_par_iter()`/`par_iter()`.
pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type returned.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;

        /// Returns the underlying sequential iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The (sequential) iterator type returned.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (a reference).
        type Item: 'a;

        /// Returns a borrowing sequential iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = core::slice::Iter<'a, T>;
        type Item = &'a T;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = core::slice::Iter<'a, T>;
        type Item = &'a T;

        fn par_iter(&'a self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_pipelines_match_sequential() {
        let doubled: Vec<usize> = (0..10).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let v = vec![1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().sum();
        assert_eq!(s, 6.0);
    }
}
