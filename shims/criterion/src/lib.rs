//! Offline stand-in for `criterion`.
//!
//! Implements the small surface the workspace's benches use — `Criterion`,
//! `Bencher::iter`, benchmark groups, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — over a plain wall-clock
//! loop. No statistics, plots, or baselines: each benchmark runs a bounded
//! number of timed iterations and reports the mean time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: collects configuration and runs registered benches.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        let start = Instant::now();
        f(&mut b);
        report(id, b.total_time, b.total_iters, start.elapsed());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// Per-benchmark iteration driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    total_time: Duration,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine` over a bounded number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.samples {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.total_time += start.elapsed();
        self.total_iters += iters;
    }
}

impl Bencher {
    fn new(samples: usize, budget: Duration) -> Self {
        Self { samples, budget, total_time: Duration::ZERO, total_iters: 0 }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.parent.sample_size, self.parent.measurement_time);
        let start = Instant::now();
        f(&mut b);
        report(&full, b.total_time, b.total_iters, start.elapsed());
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id.0, |b| f(b, input))
    }

    /// Finishes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier (rendered into the group name).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id showing just the parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{p}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn report(id: &str, timed: Duration, iters: u64, wall: Duration) {
    if iters == 0 {
        println!("{id:<48} (no iterations)");
        return;
    }
    let per_iter = timed.as_nanos() / iters as u128;
    println!("{id:<48} {per_iter:>12} ns/iter ({iters} iters, {:.2}s wall)", wall.as_secs_f64());
}

/// Declares a benchmark group function. Supports both the positional form
/// `criterion_group!(name, target, ...)` and the configured form
/// `criterion_group!(name = n; config = expr; targets = a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($t:path),+ $(,)?) => {
        /// Runs this benchmark group.
        pub fn $name() {
            let mut c = $cfg;
            $( $t(&mut c); )+
        }
    };
    ($name:ident, $($t:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($t),+
        );
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            $( $g(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_smoke(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + 2));
        let mut g = c.benchmark_group("smoke/group");
        g.bench_function("plain", |b| b.iter(|| black_box(1u64)));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &k| {
            b.iter(|| black_box(k * k))
        });
        g.finish();
    }

    criterion_group!(
        name = smoke;
        config = Criterion::default().sample_size(3).measurement_time(std::time::Duration::from_millis(50));
        targets = bench_smoke
    );

    #[test]
    fn group_runs() {
        smoke();
    }
}
