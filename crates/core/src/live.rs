//! Live (online) phase formation with adaptive early-stopping (DESIGN.md
//! §16, ROADMAP item 1 — the Pac-Sim direction).
//!
//! The offline pipeline is strictly two-pass: profile everything, then
//! analyze. [`LiveAnalyzer`] is a [`UnitSink`] that rides the profiler's
//! streaming emission path and does the paper's §III machinery *while the
//! engine runs*:
//!
//! 1. **Warmup** — the first `warmup_units` closed units are buffered while
//!    incremental per-method feature moments ([`FeatureStats`]) accumulate.
//! 2. **Seeding** — at the warmup boundary the feature space is frozen from
//!    the moments seen so far, k is chosen by the exact silhouette sweep
//!    over the warmup window, and phase centers are fitted with the
//!    existing mini-batch k-means ([`kmeans_minibatch`]).
//! 3. **Tracking** — each subsequent unit is classified against the
//!    evolving centers and pulls its center toward itself with the
//!    mini-batch `1/count` learning rate.
//! 4. **Re-formation** — a drift statistic (normalized center movement
//!    since the last formation plus the assignment-churn rate of a recent
//!    window) exceeding `drift_threshold` triggers a fresh
//!    `choose_k` + mini-batch fit over the recent window, after which every
//!    buffered unit is reclassified so the live CI stays coherent.
//! 5. **Stopping** — the Eq. 2–4 stratified CI is tracked from per-phase
//!    streaming moments; once the live half-width meets the target the
//!    analyzer raises [`UnitSink::stop_requested`] and the sampling manager
//!    stops collecting (the engine itself runs to completion).
//!
//! **Equivalence contract** (the discipline PRs 4 and 7 established): the
//! live machinery drives only the *stop decision* and the emitted events.
//! The analyzer buffers every accepted unit, and [`LiveAnalyzer::finalize`]
//! routes the buffer through the canonical [`SimProf::analyze`] streaming
//! path — so with stopping disabled the final output is bit-identical to an
//! offline `analyze_stream` over the same trace, at any thread count, by
//! construction.
//!
//! **Stopping-rule soundness**: the live interval treats the remaining run
//! as an infinite population (no fpc) — the job could keep producing units
//! — so the live half-width is an upper bound on the finite-population
//! half-width the offline estimator would state for the same sample. The
//! rule only fires once every non-empty live phase holds ≥ 2 units, since
//! a one-unit phase has no variance estimate to trust.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use simprof_profiler::{ProfileTrace, ProfilerConfig, SamplingUnit, UnitSink};
use simprof_stats::{choose_k, kmeans_minibatch, split_seed, KMeans, Matrix};

use crate::features::{FeatureSpace, FeatureStats};
use crate::pipeline::{Analysis, SimProf, SimProfConfig, TraceError};

/// Parameters of live mode ([`SimProfConfig::live`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveConfig {
    /// Units buffered before the first phase formation (the window W).
    pub warmup_units: usize,
    /// Re-form phases when the drift statistic (normalized center movement
    /// + assignment-churn rate) exceeds this. Both addends live in `[0, ~1]`.
    pub drift_threshold: f64,
    /// Absolute CI half-width target: profiling stops once the live
    /// half-width `z · SE` is at or below it. `0.0` disables the rule.
    pub target_half_width: f64,
    /// Relative target: stop once the half-width is at or below this
    /// fraction of the running mean CPI. `0.0` disables the rule.
    pub target_rel_err: f64,
    /// z-score of the live confidence interval.
    pub z: f64,
}

impl Default for LiveConfig {
    /// 64-unit warmup, re-formation past drift 0.5, stopping disabled,
    /// z = 3 (the paper's 99.7 % interval).
    fn default() -> Self {
        Self {
            warmup_units: 64,
            drift_threshold: 0.5,
            target_half_width: 0.0,
            target_rel_err: 0.0,
            z: 3.0,
        }
    }
}

impl LiveConfig {
    /// Whether either stopping rule is armed.
    pub fn stopping_enabled(&self) -> bool {
        self.target_half_width > 0.0 || self.target_rel_err > 0.0
    }
}

/// What the live analyzer observed, reported alongside the final
/// [`Analysis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveReport {
    /// Units profiled (equals the full budget unless stopping fired).
    pub units_profiled: usize,
    /// Whether the early-stopping rule fired.
    pub stopped_early: bool,
    /// Id of the unit at which the stop was requested.
    pub stop_unit: Option<u64>,
    /// Number of phases the live model tracked at the end.
    pub live_k: usize,
    /// Running mean CPI of the live model.
    pub live_mean: f64,
    /// Last live CI half-width (`None` until every phase holds ≥ 2 units).
    pub live_half_width: Option<f64>,
    /// Phase re-formations triggered by drift.
    pub reformations: u64,
    /// Last value of the drift statistic.
    pub drift: f64,
}

/// A [`UnitSink`] that forms phases and tracks the stratified CI live,
/// requesting an early stop once the target half-width is met. See the
/// module docs for the architecture and the equivalence contract.
#[derive(Debug)]
pub struct LiveAnalyzer {
    config: SimProfConfig,
    live: LiveConfig,
    profiler: ProfilerConfig,

    // The full buffer: finalize() replays it through the canonical offline
    // pipeline, which is what makes the equivalence contract hold by
    // construction.
    units: Vec<SamplingUnit>,
    cpis: Vec<f64>,
    feature_stats: FeatureStats,

    // The live model. The feature space freezes at the warmup boundary so
    // center coordinates stay comparable across the whole run.
    space: Option<FeatureSpace>,
    centers: Matrix,
    centers_at_reform: Matrix,
    assignments: Vec<usize>,

    // Per-phase streaming moments (n, Σx, Σx²) driving both the `1/count`
    // center learning rate and the live Eq. 2–4 interval.
    ph_n: Vec<u64>,
    ph_sum: Vec<f64>,
    ph_sumsq: Vec<f64>,

    churn: VecDeque<bool>,
    units_since_reform: usize,
    reformations: u64,
    last_drift: f64,
    last_half_width: Option<f64>,

    scratch: Vec<f64>,
    stop: bool,
    stop_unit: Option<u64>,
}

impl LiveAnalyzer {
    /// Creates a live analyzer. `config.live` supplies the live parameters
    /// (defaults when `None`); `profiler` describes the unit geometry of the
    /// trace being profiled, needed to finalize the buffered units.
    pub fn new(config: SimProfConfig, profiler: ProfilerConfig) -> Self {
        let live = config.live.unwrap_or_default();
        Self {
            config,
            live,
            profiler,
            units: Vec::new(),
            cpis: Vec::new(),
            feature_stats: FeatureStats::new(),
            space: None,
            centers: Matrix::zeros(0, 0),
            centers_at_reform: Matrix::zeros(0, 0),
            assignments: Vec::new(),
            ph_n: Vec::new(),
            ph_sum: Vec::new(),
            ph_sumsq: Vec::new(),
            churn: VecDeque::new(),
            units_since_reform: 0,
            reformations: 0,
            last_drift: 0.0,
            last_half_width: None,
            scratch: Vec::new(),
            stop: false,
            stop_unit: None,
        }
    }

    /// Units accepted so far.
    pub fn units_seen(&self) -> usize {
        self.units.len()
    }

    /// Number of live phases (0 before the warmup boundary).
    pub fn live_k(&self) -> usize {
        self.centers.rows()
    }

    /// The live per-unit phase assignments (empty before warmup completes).
    pub fn live_assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// The current live CI half-width (`z · SE` over the per-phase
    /// streaming moments), or `None` while any non-empty phase holds fewer
    /// than 2 units. No finite-population correction is applied: the run
    /// could keep producing units, so the live population is treated as
    /// unbounded — which makes this an upper bound on the offline Eq. 4
    /// half-width for the same sample.
    pub fn live_half_width(&self) -> Option<f64> {
        let n: u64 = self.ph_n.iter().sum();
        if n == 0 {
            return None;
        }
        let mut se2 = 0.0;
        for h in 0..self.ph_n.len() {
            let nh = self.ph_n[h];
            if nh == 0 {
                continue;
            }
            if nh < 2 {
                return None;
            }
            let nh_f = nh as f64;
            let mean = self.ph_sum[h] / nh_f;
            let var = ((self.ph_sumsq[h] - nh_f * mean * mean) / (nh_f - 1.0)).max(0.0);
            let w = nh_f / n as f64;
            se2 += w * w * var / nh_f;
        }
        Some(self.live.z * se2.sqrt())
    }

    /// Running mean CPI of the live model (weighted by live phase counts,
    /// which equals the plain mean over assigned units).
    pub fn live_mean(&self) -> f64 {
        let n: u64 = self.ph_n.iter().sum();
        if n == 0 {
            return 0.0;
        }
        self.ph_sum.iter().sum::<f64>() / n as f64
    }

    /// The live observation report (valid at any point during the run).
    pub fn report(&self) -> LiveReport {
        LiveReport {
            units_profiled: self.units.len(),
            stopped_early: self.stop,
            stop_unit: self.stop_unit,
            live_k: self.live_k(),
            live_mean: self.live_mean(),
            live_half_width: self.last_half_width,
            reformations: self.reformations,
            drift: self.last_drift,
        }
    }

    /// Finalizes: replays the buffered units through the canonical offline
    /// pipeline ([`SimProf::analyze`], i.e. the same two-pass
    /// `analyze_stream` route every other entry point uses) and returns the
    /// analysis with the live report. With stopping disabled the result is
    /// bit-identical to analyzing the full trace offline.
    pub fn finalize(&mut self) -> Result<(Analysis, LiveReport), TraceError> {
        let report = self.report();
        let trace = ProfileTrace {
            unit_instrs: self.profiler.unit_instrs,
            snapshot_instrs: self.profiler.snapshot_instrs,
            core: self.profiler.core,
            units: std::mem::take(&mut self.units),
        };
        let analysis = SimProf::new(self.config).analyze(&trace)?;
        Ok((analysis, report))
    }

    /// Warmup boundary: freeze the feature space from the moments seen so
    /// far, choose k on the warmup window with the exact silhouette sweep,
    /// fit centers with mini-batch k-means.
    fn form_initial(&mut self) {
        let space = self.feature_stats.clone().into_space(self.config.top_k);
        self.space = Some(space);
        let centers = self.fit_window(self.units.len(), self.config.seed);
        self.install_centers(centers);
    }

    /// `choose_k` + mini-batch fit over the last `window` buffered units,
    /// projected into the frozen live space.
    fn fit_window(&mut self, window: usize, seed: u64) -> Matrix {
        let space = self.space.as_ref().expect("live space fitted");
        let start = self.units.len().saturating_sub(window.max(3));
        let recent = &self.units[start..];
        let mut projected = Matrix::zeros(recent.len(), space.dim());
        for (i, u) in recent.iter().enumerate() {
            space.project_unit_into(u, projected.row_mut(i));
        }
        let selection = choose_k(
            &projected,
            self.config.k_max,
            self.config.silhouette_threshold,
            self.config.min_structure,
            seed,
        );
        let batch = self.config.minibatch.map(|m| m.batch_size).unwrap_or(256).max(8);
        kmeans_minibatch(&projected, KMeans::new(selection.k, seed), batch).centers
    }

    /// Installs a fresh center set: every buffered unit is reclassified by
    /// nearest center and the per-phase moments are rebuilt, so the live CI
    /// after a re-formation describes exactly the current stratification.
    fn install_centers(&mut self, centers: Matrix) {
        let k = centers.rows();
        self.assignments.clear();
        self.ph_n = vec![0; k];
        self.ph_sum = vec![0.0; k];
        self.ph_sumsq = vec![0.0; k];
        let space = self.space.as_ref().expect("live space fitted");
        self.scratch.resize(space.dim(), 0.0);
        for (i, u) in self.units.iter().enumerate() {
            space.project_unit_into(u, &mut self.scratch);
            let a = Matrix::nearest_row(&centers, &self.scratch).unwrap_or(0);
            self.assignments.push(a);
            let c = self.cpis[i];
            self.ph_n[a] += 1;
            self.ph_sum[a] += c;
            self.ph_sumsq[a] += c * c;
        }
        self.centers_at_reform = centers.clone();
        self.centers = centers;
        self.churn.clear();
        self.units_since_reform = 0;
    }

    /// Tracks one post-warmup unit: classify, update moments, pull the
    /// winning center with the `1/count` mini-batch learning rate, record
    /// churn against the reform-time centers.
    fn track(&mut self, cpi: f64) {
        // `scratch` already holds the unit's projection (set by `accept`).
        let a = Matrix::nearest_row(&self.centers, &self.scratch).unwrap_or(0);
        self.assignments.push(a);
        self.ph_n[a] += 1;
        self.ph_sum[a] += cpi;
        self.ph_sumsq[a] += cpi * cpi;

        // Churn: would the centers frozen at the last formation have
        // classified this unit differently?
        let a0 = Matrix::nearest_row(&self.centers_at_reform, &self.scratch).unwrap_or(0);
        self.churn.push_back(a != a0);
        let window = self.live.warmup_units.max(8);
        while self.churn.len() > window {
            self.churn.pop_front();
        }

        // Incremental center update, the mini-batch `1/count` rate: the
        // center converges to the running mean of its members.
        let eta = 1.0 / self.ph_n[a] as f64;
        let row = self.centers.row_mut(a);
        for (c, &x) in row.iter_mut().zip(self.scratch.iter()) {
            *c += eta * (x - *c);
        }
        self.units_since_reform += 1;
    }

    /// The drift statistic: normalized center movement since the last
    /// formation plus the assignment-churn rate of the recent window.
    fn drift(&self) -> f64 {
        let k = self.centers.rows();
        if k == 0 {
            return 0.0;
        }
        let churned = self.churn.iter().filter(|&&b| b).count();
        let churn_rate =
            if self.churn.is_empty() { 0.0 } else { churned as f64 / self.churn.len() as f64 };
        let mut movement = 0.0;
        let mut scale = 0.0;
        for h in 0..k {
            let now = self.centers.row(h);
            let then = self.centers_at_reform.row(h);
            movement += Matrix::sq_dist(now, then).sqrt();
            scale += then.iter().map(|v| v * v).sum::<f64>().sqrt();
        }
        let movement_norm = if scale > 0.0 { movement / scale } else { movement };
        churn_rate + movement_norm
    }

    /// Re-forms phases when drift exceeds the threshold (at most once per
    /// warmup-window of units, so formation cost stays amortized).
    fn maybe_reform(&mut self) {
        self.last_drift = self.drift();
        if self.units_since_reform < self.live.warmup_units.max(8)
            || self.last_drift <= self.live.drift_threshold
        {
            return;
        }
        let old_k = self.centers.rows();
        let drift = self.last_drift;
        let seed = split_seed(self.config.seed, 0x11FE + self.reformations);
        let centers = self.fit_window(self.live.warmup_units.max(8), seed);
        self.install_centers(centers);
        self.reformations += 1;
        simprof_obs::phase_reformed(
            self.units.len() as u64,
            old_k as u64,
            self.centers.rows() as u64,
            drift,
        );
    }

    /// Arms the stop latch once the live half-width meets either target.
    fn update_stop(&mut self) {
        self.last_half_width = self.live_half_width();
        if self.stop || !self.live.stopping_enabled() {
            return;
        }
        let Some(hw) = self.last_half_width else { return };
        let mean = self.live_mean();
        let abs_met = self.live.target_half_width > 0.0 && hw <= self.live.target_half_width;
        let rel_met = self.live.target_rel_err > 0.0 && hw <= self.live.target_rel_err * mean;
        if abs_met || rel_met {
            self.stop = true;
            self.stop_unit = self.units.last().map(|u| u.id);
            let target =
                if abs_met { self.live.target_half_width } else { self.live.target_rel_err * mean };
            simprof_obs::early_stop(self.units.len() as u64, hw, target);
        }
    }
}

impl UnitSink for LiveAnalyzer {
    fn accept(&mut self, unit: &SamplingUnit) {
        self.units.push(unit.clone());
        let cpi = if unit.counters.instructions == 0 { 0.0 } else { unit.cpi() };
        self.cpis.push(cpi);
        self.feature_stats.push(unit);
        match &self.space {
            None => {
                if self.units.len() >= self.live.warmup_units.max(4) {
                    self.form_initial();
                    self.update_stop();
                }
            }
            Some(space) => {
                self.scratch.resize(space.dim(), 0.0);
                space.project_unit_into(unit, &mut self.scratch);
                self.track(cpi);
                self.maybe_reform();
                self.update_stop();
            }
        }
    }

    fn finish(&mut self) {
        simprof_obs::gauge_set("live.k", self.live_k() as f64);
        simprof_obs::counter_add("live.units", self.units.len() as u64);
        simprof_obs::counter_add("live.reformations", self.reformations);
        if self.stop {
            simprof_obs::counter_add("live.early_stops", 1);
        }
    }

    fn stop_requested(&self) -> bool {
        self.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::MethodId;
    use simprof_sim::Counters;

    fn unit(id: u64, method: u32, cycles: u64) -> SamplingUnit {
        SamplingUnit {
            id,
            histogram: vec![(MethodId(0), 10), (MethodId(method), 9)],
            snapshots: 10,
            counters: Counters { instructions: 1000, cycles, ..Default::default() },
            slices: Vec::new(),
            truncated: false,
            dropped_snapshots: 0,
        }
    }

    /// Two behaviours with small CPI jitter: method 1 around CPI 1.0,
    /// method 2 around CPI 3.1.
    fn two_phase_units(n: usize) -> Vec<SamplingUnit> {
        (0..n)
            .map(|i| {
                let jitter = (i % 5) as u64 * 7;
                if i % 2 == 0 {
                    unit(i as u64, 1, 1000 + jitter)
                } else {
                    unit(i as u64, 2, 3100 + jitter)
                }
            })
            .collect()
    }

    fn config(live: LiveConfig) -> SimProfConfig {
        SimProfConfig { seed: 42, live: Some(live), ..Default::default() }
    }

    fn feed(analyzer: &mut LiveAnalyzer, units: &[SamplingUnit]) {
        for u in units {
            if analyzer.stop_requested() {
                break;
            }
            analyzer.accept(u);
        }
    }

    #[test]
    fn live_without_stopping_is_bit_identical_to_offline() {
        let units = two_phase_units(200);
        let trace =
            ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units: units.clone() };
        let cfg = config(LiveConfig::default());
        let offline = SimProf::new(cfg).analyze(&trace).unwrap();

        let mut live = LiveAnalyzer::new(cfg, ProfilerConfig::with_unit(1000));
        feed(&mut live, &units);
        assert!(!live.stop_requested(), "stopping is disabled");
        let (analysis, report) = live.finalize().unwrap();
        assert_eq!(report.units_profiled, 200);
        assert!(!report.stopped_early);
        assert_eq!(analysis.cpis, offline.cpis);
        assert_eq!(analysis.model.assignments, offline.model.assignments);
        assert_eq!(analysis.model.centers, offline.model.centers);
        assert_eq!(analysis.stats, offline.stats);
    }

    #[test]
    fn warmup_forms_phases_and_classifies_the_tail() {
        let units = two_phase_units(120);
        let live_cfg = LiveConfig { warmup_units: 40, ..Default::default() };
        let mut live = LiveAnalyzer::new(config(live_cfg), ProfilerConfig::with_unit(1000));
        feed(&mut live, &units);
        assert_eq!(live.live_k(), 2, "two clear behaviours");
        assert_eq!(live.live_assignments().len(), 120);
        // Even units (method 1) all share one live phase.
        let a0 = live.live_assignments()[0];
        assert!(live.live_assignments().iter().step_by(2).all(|&a| a == a0));
        assert_ne!(live.live_assignments()[1], a0);
    }

    #[test]
    fn early_stop_fires_on_a_low_variance_workload_and_is_sound() {
        let units = two_phase_units(400);
        let live_cfg =
            LiveConfig { warmup_units: 32, target_rel_err: 0.05, z: 3.0, ..Default::default() };
        let mut live = LiveAnalyzer::new(config(live_cfg), ProfilerConfig::with_unit(1000));
        feed(&mut live, &units);
        assert!(live.stop_requested(), "low-variance workload must stop early");
        let report = live.report();
        assert!(report.stopped_early);
        assert!(report.units_profiled < 400, "stopped at {}", report.units_profiled);

        // Soundness: recompute the stated half-width from scratch (two-pass,
        // same no-fpc formula) over exactly the units seen at stop, and
        // check it really meets the stated target.
        let n = report.units_profiled;
        let asg = live.live_assignments().to_vec();
        let k = live.live_k();
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); k];
        for i in 0..n {
            let cpi = units[i].counters.cycles as f64 / units[i].counters.instructions as f64;
            buckets[asg[i]].push(cpi);
        }
        let mut se2 = 0.0;
        for b in &buckets {
            if b.is_empty() {
                continue;
            }
            assert!(b.len() >= 2, "stop must not fire with a 1-unit phase");
            let m = simprof_stats::mean(b);
            let var = b.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (b.len() - 1) as f64;
            let w = b.len() as f64 / n as f64;
            se2 += w * w * var / b.len() as f64;
        }
        let oracle_hw = 3.0 * se2.sqrt();
        let stated = report.live_half_width.expect("half-width computed at stop");
        assert!(
            (stated - oracle_hw).abs() <= 1e-9 * oracle_hw.max(1e-12),
            "streaming hw {stated} must match two-pass {oracle_hw}"
        );
        let mean_cpi = simprof_stats::mean(&buckets.concat());
        assert!(
            oracle_hw <= 0.05 * mean_cpi + 1e-12,
            "stop fired before the target was met: {oracle_hw} vs {}",
            0.05 * mean_cpi
        );
    }

    #[test]
    fn drift_triggers_reformation() {
        // Phase behaviour changes completely after unit 100: method 3 at a
        // new CPI plateau the warmup never saw.
        let mut units = two_phase_units(100);
        for i in 100..260u64 {
            units.push(unit(i, 3, 7000 + (i % 4) * 11));
        }
        let live_cfg = LiveConfig { warmup_units: 32, drift_threshold: 0.2, ..Default::default() };
        let mut live = LiveAnalyzer::new(config(live_cfg), ProfilerConfig::with_unit(1000));
        feed(&mut live, &units);
        assert!(live.report().reformations > 0, "regime change must trigger re-formation");
        // The final output is still the canonical offline analysis.
        let trace =
            ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units: units.clone() };
        let offline = SimProf::new(config(live_cfg)).analyze(&trace).unwrap();
        let (analysis, _) = live.finalize().unwrap();
        assert_eq!(analysis.model.assignments, offline.model.assignments);
        assert_eq!(analysis.cpis, offline.cpis);
    }

    #[test]
    fn degenerate_single_behaviour_stays_single_phase() {
        let units: Vec<SamplingUnit> = (0..80).map(|i| unit(i as u64, 1, 1000)).collect();
        let live_cfg = LiveConfig { warmup_units: 16, ..Default::default() };
        let mut live = LiveAnalyzer::new(config(live_cfg), ProfilerConfig::with_unit(1000));
        feed(&mut live, &units);
        assert_eq!(live.live_k(), 1);
        assert_eq!(live.report().reformations, 0, "nothing drifts");
    }

    #[test]
    fn live_config_serde_roundtrip_through_simprof_config() {
        let cfg = config(LiveConfig { warmup_units: 10, ..Default::default() });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimProfConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // And a config without the field still parses (serde default).
        let old: SimProfConfig =
            serde_json::from_str(&serde_json::to_string(&SimProfConfig::default()).unwrap())
                .unwrap();
        assert_eq!(old.live, None);
    }
}
