//! Phase formation (§III-B) and homogeneity analysis (§III-B-1, Fig. 6).
//!
//! Sampling units with similar call stacks are clustered into phases:
//! k-means over the selected feature space, with the number of phases chosen
//! by the silhouette rule (smallest k within 90 % of the best score,
//! k ≤ 20). The resulting [`PhaseModel`] carries the centers — which are
//! also what the input-sensitivity test classifies reference inputs against
//! — and per-phase CPI statistics.
//!
//! Phase formation is the pipeline's hot path. The `choose_k` sweep inside
//! [`form_phases`] builds one pairwise-distance cache shared by every
//! candidate scoring and warm-starts each k from the previous solution (see
//! `simprof_stats::distcache`), and both the sweep and
//! [`classify_units`] run on the workspace's deterministic parallel
//! substrate — output is bit-identical at every thread count (DESIGN.md
//! §10).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use simprof_profiler::ProfileTrace;
use simprof_stats::{
    choose_k, cov_triple, kmeans_minibatch, systematic_indices, CovTriple, KMeans, Matrix, Summary,
};

use crate::features::FeatureSpace;
use crate::pipeline::{MinibatchPhases, SimProfConfig};

/// A fitted phase model: the training input's phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseModel {
    /// The feature space phases were formed in.
    pub space: FeatureSpace,
    /// Cluster centers (`k × space.dim()`), saved for unit classification.
    pub centers: Matrix,
    /// Phase assignment of each training sampling unit.
    pub assignments: Vec<usize>,
    /// `(k, silhouette)` scores of the k-selection sweep.
    pub k_scores: Vec<(usize, f64)>,
}

impl PhaseModel {
    /// Number of phases.
    pub fn k(&self) -> usize {
        self.centers.rows()
    }

    /// Units per phase.
    pub fn phase_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// The `top_n` most *characteristic* feature columns of a phase center,
    /// as `(method_id, weight)` — the paper's way of tracing which methods
    /// characterize a phase (§III-D-2).
    ///
    /// Methods whose weight is nearly identical across every center
    /// (executor/task framework methods present in all stacks) carry no
    /// phase information, so ranking is by the method's weight in this
    /// center *in excess of its mean weight across centers*; the reported
    /// weight is still the raw center weight.
    pub fn top_methods(&self, phase: usize, top_n: usize) -> Vec<(usize, f64)> {
        let k = self.k().max(1) as f64;
        let center = self.centers.row(phase);
        let mut cols: Vec<(usize, f64, f64)> = self
            .space
            .columns
            .iter()
            .enumerate()
            .map(|(j, &method)| {
                let mean_across: f64 =
                    (0..self.k()).map(|h| self.centers.get(h, j)).sum::<f64>() / k;
                (method, center[j], center[j] - mean_across)
            })
            .collect();
        cols.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        cols.truncate(top_n);
        cols.into_iter().map(|(m, w, _)| (m, w)).collect()
    }
}

/// Forms phases on a training trace.
///
/// Steps: vectorize → top-K regression feature selection → k-means sweep with
/// silhouette selection. Returns a model even for degenerate traces (a trace
/// with < 3 units gets a single phase).
pub fn form_phases(trace: &ProfileTrace, config: &SimProfConfig) -> PhaseModel {
    let _span = simprof_obs::span!("core.form_phases");
    let (space, projected) = {
        let _span = simprof_obs::span!("core.feature_fit");
        FeatureSpace::fit(trace, config.top_k)
    };
    form_phases_in_space(space, &projected, config)
}

/// Forms phases on an already-fitted feature space and its projected unit
/// matrix — the k-means sweep half of [`form_phases`].
///
/// The streaming pipeline calls this after its two passes produce `space`
/// and `projected` without a dense matrix; [`form_phases`] calls it after a
/// batch fit. Opens no spans of its own (callers own the `core.form_phases`
/// / `core.feature_fit` structure; `choose_k` reports its own).
pub fn form_phases_in_space(
    space: FeatureSpace,
    projected: &Matrix,
    config: &SimProfConfig,
) -> PhaseModel {
    if let Some(mb) = config.minibatch {
        if projected.rows() > mb.sweep_units.max(2) {
            return form_phases_minibatch(space, projected, config, mb);
        }
    }
    let selection = choose_k(
        projected,
        config.k_max,
        config.silhouette_threshold,
        config.min_structure,
        config.seed,
    );
    PhaseModel {
        space,
        centers: selection.result.centers,
        assignments: selection.result.assignments,
        k_scores: selection.scores,
    }
}

/// The opt-in large-trace path ([`SimProfConfig::minibatch`]): the exact
/// silhouette sweep — including its `n²` distance cache — runs on a
/// deterministic systematic subsample of `sweep_units` units to choose k,
/// then mini-batch k-means fits centers over the *full* projected matrix and
/// hard-assigns every unit. Deterministic and thread-count-independent like
/// the exact path, but memory stays `O(sweep_units² + n·dim)`.
fn form_phases_minibatch(
    space: FeatureSpace,
    projected: &Matrix,
    config: &SimProfConfig,
    mb: MinibatchPhases,
) -> PhaseModel {
    let _span = simprof_obs::span!("core.minibatch_phases");
    let n = projected.rows();
    let idx = systematic_indices(n, mb.sweep_units.max(3), config.seed as usize);
    let sample_rows: Vec<Vec<f64>> = idx.iter().map(|&i| projected.row(i).to_vec()).collect();
    let sample = Matrix::from_rows(&sample_rows);
    drop(sample_rows);
    let selection = choose_k(
        &sample,
        config.k_max,
        config.silhouette_threshold,
        config.min_structure,
        config.seed,
    );
    let result = kmeans_minibatch(projected, KMeans::new(selection.k, config.seed), mb.batch_size);
    simprof_obs::counter_add("core.minibatch_units", n as u64);
    PhaseModel {
        space,
        centers: result.centers,
        assignments: result.assignments,
        k_scores: selection.scores,
    }
}

/// Classifies a (reference) trace's units into the model's phases by nearest
/// center (§III-D-1). Ties break toward the lower phase id. Parallel over
/// units; the per-unit decisions are independent, so output order and
/// content match the sequential scan.
pub fn classify_units(model: &PhaseModel, trace: &ProfileTrace) -> Vec<usize> {
    let projected = model.space.project(trace);
    (0..projected.rows())
        .into_par_iter()
        .map(|i| Matrix::nearest_row(&model.centers, projected.row(i)).unwrap_or(0))
        .collect()
}

/// Per-phase CPI summaries (`n`, mean, stddev, CoV) for `k` phases.
pub fn phase_stats(cpis: &[f64], assignments: &[usize], k: usize) -> Vec<Summary> {
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); k];
    for (&c, &a) in cpis.iter().zip(assignments) {
        buckets[a].push(c);
    }
    buckets.iter().map(|b| Summary::of(b)).collect()
}

/// Phase weights `N_h / N`.
pub fn phase_weights(assignments: &[usize], k: usize) -> Vec<f64> {
    let mut counts = vec![0usize; k];
    for &a in assignments {
        counts[a] += 1;
    }
    let n = assignments.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / n).collect()
}

/// The Fig. 6 triple: population / weighted / max CoV of CPI under the given
/// phase assignment.
pub fn homogeneity(cpis: &[f64], assignments: &[usize]) -> CovTriple {
    cov_triple(cpis, assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;

    /// Builds a synthetic two-phase trace: phase A units run method 1 with
    /// low CPI, phase B units run method 2 with high CPI. Method 0 is a
    /// framework method in every stack.
    fn two_phase_trace(n_a: usize, n_b: usize) -> ProfileTrace {
        let mut units = Vec::new();
        for i in 0..(n_a + n_b) {
            let is_a = i < n_a;
            let jitter = (i % 5) as u64 * 7;
            let (hist, cycles) = if is_a {
                (vec![(MethodId(0), 10), (MethodId(1), 9)], 900 + jitter)
            } else {
                (vec![(MethodId(0), 10), (MethodId(2), 9)], 3100 + jitter)
            };
            units.push(SamplingUnit {
                id: i as u64,
                histogram: hist,
                snapshots: 10,
                counters: Counters { instructions: 1000, cycles, ..Default::default() },
                slices: Vec::new(),
                truncated: false,
                dropped_snapshots: 0,
            });
        }
        ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
    }

    fn config() -> SimProfConfig {
        SimProfConfig { seed: 42, ..Default::default() }
    }

    #[test]
    fn forms_two_phases() {
        let t = two_phase_trace(20, 15);
        let m = form_phases(&t, &config());
        assert_eq!(m.k(), 2, "scores: {:?}", m.k_scores);
        let sizes = m.phase_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 35);
        assert!(sizes.contains(&20) && sizes.contains(&15));
        // All phase-A units share one assignment.
        assert!(m.assignments[..20].iter().all(|&a| a == m.assignments[0]));
    }

    #[test]
    fn single_behaviour_single_phase() {
        let t = two_phase_trace(25, 0);
        let m = form_phases(&t, &config());
        assert_eq!(m.k(), 1);
    }

    #[test]
    fn classify_is_consistent_with_training() {
        let t = two_phase_trace(12, 12);
        let m = form_phases(&t, &config());
        let reclassified = classify_units(&m, &t);
        assert_eq!(reclassified, m.assignments);
    }

    #[test]
    fn classify_handles_novel_methods() {
        let t = two_phase_trace(12, 12);
        let m = form_phases(&t, &config());
        // A reference trace with an extra, unknown method id 7.
        let mut r = two_phase_trace(4, 4);
        for u in &mut r.units {
            u.histogram.push((MethodId(7), 10));
        }
        let assigned = classify_units(&m, &r);
        assert_eq!(assigned.len(), 8);
        // Known-method structure still dominates: A-units and B-units split.
        assert_eq!(assigned[..4], assigned[..4].to_vec());
        assert_ne!(assigned[0], assigned[4]);
    }

    #[test]
    fn phase_stats_and_weights() {
        let cpis = [1.0, 1.2, 3.0, 3.4, 3.2];
        let asg = [0, 0, 1, 1, 1];
        let stats = phase_stats(&cpis, &asg, 2);
        assert_eq!(stats[0].n, 2);
        assert_eq!(stats[1].n, 3);
        assert!((stats[0].mean - 1.1).abs() < 1e-12);
        let w = phase_weights(&asg, 2);
        assert!((w[0] - 0.4).abs() < 1e-12);
        assert!((w[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn homogeneity_improves_with_correct_split() {
        let t = two_phase_trace(20, 20);
        let m = form_phases(&t, &config());
        let h = homogeneity(&t.cpis(), &m.assignments);
        assert!(h.weighted < h.population, "weighted {} < population {}", h.weighted, h.population);
    }

    #[test]
    fn top_methods_name_phase_signature() {
        let t = two_phase_trace(15, 15);
        let m = form_phases(&t, &config());
        // Find the phase holding unit 0 (method 1 phase).
        let phase_a = m.assignments[0];
        let top = m.top_methods(phase_a, 1);
        assert_eq!(top[0].0, 1, "phase A is characterized by method 1: {top:?}");
        let phase_b = m.assignments[t.units.len() - 1];
        let top_b = m.top_methods(phase_b, 1);
        assert_eq!(top_b[0].0, 2);
    }

    #[test]
    fn minibatch_mode_recovers_phases_on_large_traces() {
        use crate::pipeline::MinibatchPhases;
        // 1200 units, two clear behaviours — large enough to trip the
        // opt-in threshold, small enough for a unit test.
        let t = two_phase_trace(700, 500);
        let cfg = SimProfConfig {
            minibatch: Some(MinibatchPhases { sweep_units: 200, batch_size: 64 }),
            ..config()
        };
        let m = form_phases(&t, &cfg);
        assert_eq!(m.k(), 2, "scores: {:?}", m.k_scores);
        let sizes = m.phase_sizes();
        assert!(sizes.contains(&700) && sizes.contains(&500), "sizes: {sizes:?}");
        // Deterministic: same config, same model.
        let m2 = form_phases(&t, &cfg);
        assert_eq!(m.assignments, m2.assignments);
        assert_eq!(m.centers, m2.centers);
        // Below the threshold the exact sweep still runs (identical to the
        // no-minibatch config).
        let small = two_phase_trace(20, 15);
        let exact = form_phases(&small, &config());
        let gated = form_phases(&small, &cfg);
        assert_eq!(exact.assignments, gated.assignments);
        assert_eq!(exact.centers, gated.centers);
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let t = ProfileTrace { unit_instrs: 1, snapshot_instrs: 1, core: 0, units: vec![] };
        let m = form_phases(&t, &config());
        assert!(m.assignments.is_empty());
        assert!(classify_units(&m, &t).is_empty());
    }
}
