//! The paper's comparison sampling approaches (§IV-B): SECOND, SRS, CODE —
//! plus SimProf itself behind the same interface for the Fig. 7 sweep.

use serde::{Deserialize, Serialize};

use simprof_profiler::ProfileTrace;
use simprof_stats::{mean, seeded, srs_indices};

use crate::phases::{phase_weights, PhaseModel};
use crate::sampling::{central_units, estimate_stratified, select_points};

/// Identifies a sampling approach in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Single contiguous N-second interval.
    Second,
    /// Simple random sampling.
    Srs,
    /// SimPoint-like: one most-central point per code phase.
    Code,
    /// SMARTS-style systematic sampling over units.
    Systematic,
    /// SimProf: stratified random sampling with optimal allocation.
    SimProf,
}

impl SamplerKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            SamplerKind::Second => "SECOND",
            SamplerKind::Srs => "SRS",
            SamplerKind::Code => "CODE",
            SamplerKind::Systematic => "SYSTEMATIC",
            SamplerKind::SimProf => "SimProf",
        }
    }
}

/// A selected sample and the CPI it predicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sampler {
    /// Which approach produced it.
    pub kind: SamplerKind,
    /// Selected unit ids.
    pub points: Vec<u64>,
    /// The approach's CPI prediction from those points.
    pub predicted_cpi: f64,
}

/// SECOND: the contiguous run of units from the start of the job whose
/// cumulative cycles first reach `cycle_budget` (the paper's "10 seconds",
/// expressed in simulated cycles). Always includes at least one unit.
///
/// The predicted CPI is the plain mean over the window — the window is the
/// sample.
pub fn second_points_by_cycles(trace: &ProfileTrace, cycle_budget: u64) -> Sampler {
    let mut points = Vec::new();
    let mut cycles = 0u64;
    for u in &trace.units {
        points.push(u.id);
        cycles += u.counters.cycles;
        if cycles >= cycle_budget {
            break;
        }
    }
    let cpis: Vec<f64> = points.iter().map(|&i| trace.units[i as usize].cpi()).collect();
    Sampler { kind: SamplerKind::Second, points, predicted_cpi: mean(&cpis) }
}

/// SRS: `n` units uniformly at random; prediction is the sample mean.
pub fn srs_points(trace: &ProfileTrace, n: usize, seed: u64) -> Sampler {
    let ids = srs_indices(trace.units.len(), n, &mut seeded(seed));
    let cpis: Vec<f64> = ids.iter().map(|&i| trace.units[i].cpi()).collect();
    Sampler {
        kind: SamplerKind::Srs,
        points: ids.into_iter().map(|i| i as u64).collect(),
        predicted_cpi: mean(&cpis),
    }
}

/// CODE: the SimPoint-like baseline — one simulation point per phase, the
/// unit closest to the phase center; prediction is the phase-weighted mean
/// of those points' CPIs. Uses only the code signature (no variance-aware
/// allocation), which is exactly what the paper contrasts SimProf against.
pub fn code_points(model: &PhaseModel, trace: &ProfileTrace) -> Sampler {
    let features = model.space.project(trace);
    let centers = central_units(&features, &model.centers, &model.assignments);
    let weights = phase_weights(&model.assignments, model.k());
    let mut predicted = 0.0;
    let mut points = Vec::new();
    for (h, pick) in centers.iter().enumerate() {
        if let Some(id) = pick {
            points.push(*id);
            predicted += weights[h] * trace.units[*id as usize].cpi();
        }
    }
    points.sort_unstable();
    Sampler { kind: SamplerKind::Code, points, predicted_cpi: predicted }
}

/// SMARTS-style systematic sampling over whole units: every `n`-th of the
/// trace's units, starting at `offset`; prediction is the sample mean.
/// This is the Wunderlich et al. baseline the paper's related work
/// discusses — cheap to profile (no call stacks needed) but blind to code
/// structure.
pub fn systematic_points(trace: &ProfileTrace, n: usize, offset: usize) -> Sampler {
    let ids = simprof_stats::systematic_indices(trace.units.len(), n, offset);
    let cpis: Vec<f64> = ids.iter().map(|&i| trace.units[i].cpi()).collect();
    Sampler {
        kind: SamplerKind::Systematic,
        points: ids.into_iter().map(|i| i as u64).collect(),
        predicted_cpi: mean(&cpis),
    }
}

/// SimProf: stratified random sampling with optimal allocation over the
/// model's phases; prediction is the stratified estimator.
pub fn simprof_points(model: &PhaseModel, trace: &ProfileTrace, n: usize, seed: u64) -> Sampler {
    let cpis = trace.cpis();
    let pts = select_points(&cpis, &model.assignments, model.k(), n, &mut seeded(seed));
    let est = estimate_stratified(&cpis, &model.assignments, &pts, 3.0);
    Sampler { kind: SamplerKind::SimProf, points: pts.points, predicted_cpi: est.mean_cpi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::form_phases;
    use crate::pipeline::SimProfConfig;
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;

    /// Two-stage trace: first 30 units cheap map units (method 1), last 30
    /// expensive reduce units (method 2).
    fn staged_trace() -> ProfileTrace {
        let units = (0..60u64)
            .map(|i| {
                let first = i < 30;
                let jitter = (i % 7) * 13;
                let (m, cycles) = if first { (1, 800 + jitter) } else { (2, 2900 + jitter) };
                SamplingUnit {
                    id: i,
                    histogram: vec![(MethodId(0), 10), (MethodId(m), 9)],
                    snapshots: 10,
                    counters: Counters { instructions: 1000, cycles, ..Default::default() },
                    slices: Vec::new(),
                    truncated: false,
                    dropped_snapshots: 0,
                }
            })
            .collect();
        ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
    }

    #[test]
    fn second_takes_contiguous_prefix() {
        let t = staged_trace();
        // Budget of ~5 cheap units.
        let s = second_points_by_cycles(&t, 4000);
        assert!(s.points.len() >= 5);
        let expect: Vec<u64> = (0..s.points.len() as u64).collect();
        assert_eq!(s.points, expect, "contiguous from start");
        // It never saw the expensive second stage → biased low.
        assert!(s.predicted_cpi < 1.0, "{}", s.predicted_cpi);
    }

    #[test]
    fn second_biased_against_late_stages() {
        let t = staged_trace();
        let s = second_points_by_cycles(&t, 30_000);
        let oracle = t.oracle_cpi();
        assert!(
            (s.predicted_cpi - oracle).abs() / oracle > 0.2,
            "window missing the reduce stage must be off: {} vs {}",
            s.predicted_cpi,
            oracle
        );
    }

    #[test]
    fn second_budget_larger_than_job_takes_everything() {
        let t = staged_trace();
        let s = second_points_by_cycles(&t, u64::MAX);
        assert_eq!(s.points.len(), 60);
        assert!((s.predicted_cpi - t.oracle_cpi()).abs() < 1e-12);
    }

    #[test]
    fn srs_is_seeded_and_unbiased_on_average() {
        let t = staged_trace();
        let a = srs_points(&t, 10, 7);
        let b = srs_points(&t, 10, 7);
        assert_eq!(a.points, b.points);
        let oracle = t.oracle_cpi();
        let avg: f64 = (0..300).map(|s| srs_points(&t, 10, s).predicted_cpi).sum::<f64>() / 300.0;
        assert!((avg - oracle).abs() / oracle < 0.05, "{avg} vs {oracle}");
    }

    #[test]
    fn code_one_point_per_phase() {
        let t = staged_trace();
        let model = form_phases(&t, &SimProfConfig { seed: 5, ..Default::default() });
        assert_eq!(model.k(), 2);
        let c = code_points(&model, &t);
        assert_eq!(c.points.len(), 2);
        let oracle = t.oracle_cpi();
        assert!(
            (c.predicted_cpi - oracle).abs() / oracle < 0.15,
            "phase-weighted centers land near oracle: {} vs {}",
            c.predicted_cpi,
            oracle
        );
    }

    #[test]
    fn simprof_beats_second_on_staged_trace() {
        let t = staged_trace();
        let model = form_phases(&t, &SimProfConfig { seed: 5, ..Default::default() });
        let oracle = t.oracle_cpi();
        let sp = simprof_points(&model, &t, 12, 11);
        let sp_err = (sp.predicted_cpi - oracle).abs() / oracle;
        let sec = second_points_by_cycles(&t, 30_000);
        let sec_err = (sec.predicted_cpi - oracle).abs() / oracle;
        assert!(sp_err < sec_err, "simprof {sp_err} < second {sec_err}");
        assert_eq!(sp.points.len(), 12);
    }

    #[test]
    fn labels() {
        assert_eq!(SamplerKind::Second.label(), "SECOND");
        assert_eq!(SamplerKind::Systematic.label(), "SYSTEMATIC");
        assert_eq!(SamplerKind::SimProf.label(), "SimProf");
    }

    #[test]
    fn systematic_spans_the_job() {
        let t = staged_trace();
        let s = systematic_points(&t, 10, 0);
        assert_eq!(s.points.len(), 10);
        // Covers both stages (unlike SECOND).
        assert!(s.points.iter().any(|&p| p < 30));
        assert!(s.points.iter().any(|&p| p >= 30));
        let oracle = t.oracle_cpi();
        assert!(
            (s.predicted_cpi - oracle).abs() / oracle < 0.1,
            "periodic coverage tracks the stage mix: {} vs {}",
            s.predicted_cpi,
            oracle
        );
    }
}
