//! Evaluation helpers: sampling-error metrics (Fig. 7) and phase-type
//! labelling (Figs. 9–10).

use serde::{Deserialize, Serialize};

use simprof_engine::{MethodRegistry, OpClass};
use simprof_profiler::ProfileTrace;

use crate::phases::PhaseModel;

/// Relative error of a predicted CPI against the oracle (|pred − oracle| /
/// oracle).
///
/// A zero oracle makes the ratio undefined: a nonzero prediction against it
/// returns `f64::INFINITY` so the wrong prediction is loud in any Fig. 7
/// aggregate (an earlier version returned `0.0` here, silently scoring it as
/// perfect). Only an exactly-right prediction of a zero oracle returns `0.0`.
pub fn relative_error(predicted: f64, oracle: f64) -> f64 {
    if oracle == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - oracle).abs() / oracle
    }
}

/// One row of the Fig. 10 phase-type breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTypeShare {
    /// The operation class.
    pub class: OpClass,
    /// Fraction of sampling units whose phase is dominated by this class.
    pub share: f64,
}

/// Labels each phase with its dominant operation class.
///
/// A phase's label is the class with the largest total snapshot weight in the
/// phase's unit histograms, ignoring framework methods — the paper's "the
/// type of the phase depends on the dominant operation" (§IV-D). Returns one
/// class per phase; phases containing only framework methods are labelled
/// [`OpClass::Framework`].
pub fn phase_types(
    model: &PhaseModel,
    trace: &ProfileTrace,
    registry: &MethodRegistry,
) -> Vec<OpClass> {
    let k = model.k();
    // weight[phase][class]
    let mut weight = vec![[0u64; OpClass::ALL.len()]; k];
    for (unit, &phase) in trace.units.iter().zip(&model.assignments) {
        for &(m, count) in &unit.histogram {
            let class = registry.class(m);
            let ci = OpClass::ALL.iter().position(|&c| c == class).expect("class in ALL");
            weight[phase][ci] += count as u64;
        }
    }
    weight
        .iter()
        .map(|w| {
            let best_non_framework = OpClass::ALL
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c != OpClass::Framework)
                .max_by_key(|&(i, _)| w[i]);
            match best_non_framework {
                Some((i, &c)) if w[i] > 0 => c,
                _ => OpClass::Framework,
            }
        })
        .collect()
}

/// The Fig. 10 distribution: per class, the fraction of sampling units that
/// belong to phases of that class.
pub fn phase_type_distribution(
    model: &PhaseModel,
    trace: &ProfileTrace,
    registry: &MethodRegistry,
) -> Vec<PhaseTypeShare> {
    let types = phase_types(model, trace, registry);
    let total = model.assignments.len().max(1) as f64;
    let mut unit_count = [0usize; OpClass::ALL.len()];
    for &phase in &model.assignments {
        let ci = OpClass::ALL.iter().position(|&c| c == types[phase]).expect("class in ALL");
        unit_count[ci] += 1;
    }
    OpClass::ALL
        .iter()
        .enumerate()
        .map(|(i, &class)| PhaseTypeShare { class, share: unit_count[i] as f64 / total })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::form_phases;
    use crate::pipeline::SimProfConfig;
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(1.1, 1.0), 0.10000000000000009);
        assert_eq!(relative_error(0.9, 1.0), 0.09999999999999998);
    }

    #[test]
    fn relative_error_zero_oracle_is_loud() {
        // A nonzero prediction against a zero oracle must not score as
        // perfect: it used to return 0.0 and vanish inside error averages.
        assert_eq!(relative_error(5.0, 0.0), f64::INFINITY);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(5.0, 0.0) + 0.03 > 1e9, "sentinel dominates aggregates");
    }

    fn typed_trace(registry: &mut MethodRegistry) -> ProfileTrace {
        let fw = registry.intern("Executor.run", OpClass::Framework);
        let map = registry.intern("Mapper.map", OpClass::Map);
        let sort = registry.intern("Quick.sort", OpClass::Sort);
        let mk = |id: u64, m: MethodId, cycles: u64| SamplingUnit {
            id,
            histogram: vec![(fw, 10), (m, 9)],
            snapshots: 10,
            counters: Counters { instructions: 1000, cycles, ..Default::default() },
            slices: Vec::new(),
            truncated: false,
            dropped_snapshots: 0,
        };
        let mut units: Vec<SamplingUnit> =
            (0..24).map(|i| mk(i, map, 900 + (i % 3) * 10)).collect();
        units.extend((24..32).map(|i| mk(i, sort, 3000 + (i % 3) * 10)));
        ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
    }

    #[test]
    fn phases_labelled_by_dominant_class() {
        let mut reg = MethodRegistry::new();
        let t = typed_trace(&mut reg);
        let model = form_phases(&t, &SimProfConfig { seed: 3, ..Default::default() });
        assert_eq!(model.k(), 2);
        let types = phase_types(&model, &t, &reg);
        let map_phase = model.assignments[0];
        let sort_phase = model.assignments[31];
        assert_eq!(types[map_phase], OpClass::Map);
        assert_eq!(types[sort_phase], OpClass::Sort);
    }

    #[test]
    fn distribution_weights_by_units() {
        let mut reg = MethodRegistry::new();
        let t = typed_trace(&mut reg);
        let model = form_phases(&t, &SimProfConfig { seed: 3, ..Default::default() });
        let dist = phase_type_distribution(&model, &t, &reg);
        let total: f64 = dist.iter().map(|d| d.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let map_share = dist.iter().find(|d| d.class == OpClass::Map).unwrap().share;
        let sort_share = dist.iter().find(|d| d.class == OpClass::Sort).unwrap().share;
        assert!((map_share - 0.75).abs() < 1e-12, "{map_share}");
        assert!((sort_share - 0.25).abs() < 1e-12, "{sort_share}");
    }
}
