//! End-to-end convenience API: [`SimProf`] bundles the whole §III pipeline.

use serde::{Deserialize, Serialize};

use simprof_profiler::{MemStream, ProfileTrace, UnitStream};
use simprof_stats::{seeded, CovTriple, Matrix, Summary};

use crate::features::FeatureStats;
use crate::live::LiveConfig;
use crate::phases::{form_phases_in_space, homogeneity, phase_stats, phase_weights, PhaseModel};
use crate::sampling::{
    estimate_stratified, required_sample_size, select_points, Estimate, SimulationPoints,
};

/// Pipeline parameters, defaulting to the paper's published settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimProfConfig {
    /// Number of regression-selected features (the paper uses K = 100).
    pub top_k: usize,
    /// Maximum number of phases swept (the paper caps at 20).
    pub k_max: usize,
    /// Silhouette threshold: smallest k within this fraction of the best
    /// score wins (the paper uses 90 %).
    pub silhouette_threshold: f64,
    /// Minimum best silhouette for any multi-phase structure to be accepted;
    /// below it the trace forms a single phase.
    pub min_structure: f64,
    /// Seed for clustering and sampling randomness.
    pub seed: u64,
    /// Opt-in scalable phase formation for very large traces (`None`, the
    /// default, keeps the exact sweep at every size). The exact silhouette
    /// sweep holds an `n²` pairwise-distance cache, which stops being an
    /// option around 10⁵ units; this mode bounds it by choosing k on a
    /// deterministic subsample and fitting the full-trace model with
    /// mini-batch k-means.
    #[serde(default)]
    pub minibatch: Option<MinibatchPhases>,
    /// Opt-in live-mode parameters (warmup window, drift threshold,
    /// early-stopping targets). `None` keeps every entry point strictly
    /// offline; only [`crate::live::LiveAnalyzer`] reads this.
    #[serde(default)]
    pub live: Option<LiveConfig>,
}

/// Parameters of the opt-in mini-batch phase-formation mode
/// ([`SimProfConfig::minibatch`]). Only applies to traces with more than
/// `sweep_units` sampling units; smaller traces keep the exact sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinibatchPhases {
    /// Unit-count budget of the k-selection sweep: k is chosen by the exact
    /// silhouette rule on a systematic subsample of this many units, so the
    /// distance cache stays at `sweep_units²` instead of `n²`.
    pub sweep_units: usize,
    /// Mini-batch size of the full-trace k-means fit.
    pub batch_size: usize,
}

impl Default for MinibatchPhases {
    /// 2 000 sweep units (a 32 MB distance cache) and 4 096-unit batches.
    fn default() -> Self {
        Self { sweep_units: 2_000, batch_size: 4_096 }
    }
}

impl Default for SimProfConfig {
    fn default() -> Self {
        Self {
            top_k: 100,
            k_max: 20,
            silhouette_threshold: 0.9,
            min_structure: 0.25,
            seed: 0,
            minibatch: None,
            live: None,
        }
    }
}

/// Why a [`ProfileTrace`] cannot be analyzed.
///
/// Degenerate traces used to slip through and poison the analysis with
/// NaN/∞ CPIs; validation now rejects them up front with a typed error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceError {
    /// The trace holds no sampling units (nothing ran on the profiled core,
    /// or every unit was a discarded partial tail).
    EmptyTrace,
    /// A sampling unit retired zero instructions, so its CPI is undefined.
    ZeroInstructionUnit {
        /// The offending unit's id.
        unit: u64,
    },
    /// The trace's declared unit size is zero, which breaks every
    /// instruction-budget computation downstream.
    ZeroUnitSize,
    /// The unit stream failed mid-analysis (I/O error, corrupt chunk, …).
    Stream {
        /// The underlying stream error.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyTrace => write!(f, "profile trace contains no sampling units"),
            Self::ZeroInstructionUnit { unit } => {
                write!(f, "sampling unit {unit} retired zero instructions (CPI undefined)")
            }
            Self::ZeroUnitSize => write!(f, "trace declares a zero sampling-unit size"),
            Self::Stream { message } => write!(f, "trace stream failed: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Validates that `trace` is analyzable: non-empty, positive unit size, and
/// every unit retired at least one instruction.
pub fn validate_trace(trace: &ProfileTrace) -> Result<(), TraceError> {
    if trace.unit_instrs == 0 {
        return Err(TraceError::ZeroUnitSize);
    }
    if trace.units.is_empty() {
        return Err(TraceError::EmptyTrace);
    }
    if let Some(u) = trace.units.iter().find(|u| u.counters.instructions == 0) {
        return Err(TraceError::ZeroInstructionUnit { unit: u.id });
    }
    Ok(())
}

/// The SimProf pipeline.
#[derive(Debug, Clone, Default)]
pub struct SimProf {
    config: SimProfConfig,
}

impl SimProf {
    /// Creates the pipeline with the given configuration.
    pub fn new(config: SimProfConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimProfConfig {
        &self.config
    }

    /// Runs phase formation + homogeneity analysis on a trace and returns a
    /// self-contained [`Analysis`], or a [`TraceError`] if the trace is
    /// degenerate (empty, zero unit size, or a zero-instruction unit).
    ///
    /// Routes through the same two-pass streaming pipeline as
    /// [`analyze_stream`] (over a [`MemStream`]), so a trace analyzed in
    /// memory and the same trace streamed from disk produce bit-identical
    /// results.
    pub fn analyze(&self, trace: &ProfileTrace) -> Result<Analysis, TraceError> {
        self.analyze_stream(&mut MemStream::new(trace))
    }

    /// Runs the full analysis over a rewindable unit stream without ever
    /// materializing the trace: pass 1 accumulates per-method sufficient
    /// statistics for feature selection (plus per-unit CPIs), pass 2 builds
    /// only the reduced `units × K` matrix the k-means sweep needs.
    pub fn analyze_stream(&self, stream: &mut dyn UnitStream) -> Result<Analysis, TraceError> {
        let _span = simprof_obs::span!("core.analyze");
        if stream.unit_instrs() == 0 {
            return Err(TraceError::ZeroUnitSize);
        }
        let _form_span = simprof_obs::span!("core.form_phases");
        let (space, projected, cpis) = {
            let _span = simprof_obs::span!("core.feature_fit");

            // Pass 1: sufficient statistics (Σx, Σx², Σxy per method) and
            // CPIs; the dense units × universe matrix is never built.
            stream.rewind().map_err(|message| TraceError::Stream { message })?;
            let mut stats = FeatureStats::new();
            let mut cpis = Vec::new();
            loop {
                let unit = match stream.next_unit() {
                    Ok(Some(u)) => u,
                    Ok(None) => break,
                    Err(message) => return Err(TraceError::Stream { message }),
                };
                if unit.counters.instructions == 0 {
                    return Err(TraceError::ZeroInstructionUnit { unit: unit.id });
                }
                stats.push(unit);
                cpis.push(unit.cpi());
            }
            if cpis.is_empty() {
                return Err(TraceError::EmptyTrace);
            }
            let space = stats.into_space(self.config.top_k);

            // Pass 2: project each unit straight into the reduced matrix.
            stream.rewind().map_err(|message| TraceError::Stream { message })?;
            let mut projected = Matrix::zeros(cpis.len(), space.dim());
            let mut i = 0;
            loop {
                let unit = match stream.next_unit() {
                    Ok(Some(u)) => u,
                    Ok(None) => break,
                    Err(message) => return Err(TraceError::Stream { message }),
                };
                if i >= cpis.len() {
                    return Err(TraceError::Stream {
                        message: format!(
                            "stream yielded more units on pass 2 than pass 1 ({})",
                            cpis.len()
                        ),
                    });
                }
                space.project_unit_into(unit, projected.row_mut(i));
                i += 1;
            }
            if i != cpis.len() {
                return Err(TraceError::Stream {
                    message: format!(
                        "stream yielded {i} units on pass 2, {} on pass 1",
                        cpis.len()
                    ),
                });
            }
            (space, projected, cpis)
        };
        let model = form_phases_in_space(space, &projected, &self.config);
        drop(_form_span);
        let k = model.k();
        let stats = phase_stats(&cpis, &model.assignments, k);
        let weights = phase_weights(&model.assignments, k);
        let cov = homogeneity(&cpis, &model.assignments);
        simprof_obs::gauge_set("core.phases", k as f64);
        simprof_obs::counter_add("core.units_analyzed", cpis.len() as u64);
        Ok(Analysis { config: self.config, model, cpis, stats, weights, cov })
    }
}

/// The result of phase formation on one trace, with everything needed to
/// sample, estimate, and report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Analysis {
    /// The configuration the analysis ran with.
    pub config: SimProfConfig,
    /// The fitted phase model (feature space + centers + assignments).
    pub model: PhaseModel,
    /// Per-unit CPIs of the analyzed trace.
    pub cpis: Vec<f64>,
    /// Per-phase CPI summaries.
    pub stats: Vec<Summary>,
    /// Per-phase weights `N_h / N`.
    pub weights: Vec<f64>,
    /// Fig. 6 homogeneity triple (population / weighted / max CoV).
    pub cov: CovTriple,
}

/// One row of the Eq. 1 allocation table: how a phase's population size and
/// CPI spread translated into simulation-point budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationRow {
    /// Phase (stratum) id `h`.
    pub phase: usize,
    /// Population size `N_h` (sampling units in the phase).
    pub units: usize,
    /// Phase weight `N_h / N`.
    pub weight: f64,
    /// Population CPI standard deviation `σ_h`.
    pub stddev: f64,
    /// Allocated sample size `n_h` (Eq. 1, after floors and caps).
    pub allocated: usize,
}

impl Analysis {
    /// Number of phases.
    pub fn k(&self) -> usize {
        self.model.k()
    }

    /// The Eq. 1 allocation table for a selected point set: one
    /// [`AllocationRow`] per phase, pairing `N_h`/`σ_h` with the `n_h` the
    /// allocator granted. Used verbatim as the `allocation` section of a run
    /// report.
    pub fn allocation_table(&self, points: &SimulationPoints) -> Vec<AllocationRow> {
        (0..self.k())
            .map(|h| AllocationRow {
                phase: h,
                units: self.stats[h].n,
                weight: self.weights[h],
                stddev: self.stats[h].stddev,
                allocated: points.allocation.get(h).copied().unwrap_or(0),
            })
            .collect()
    }

    /// Oracle CPI (mean over all sampling units).
    pub fn oracle_cpi(&self) -> f64 {
        simprof_stats::mean(&self.cpis)
    }

    /// Selects `n` simulation points by stratified random sampling with
    /// optimal allocation (§III-C).
    pub fn select_points(&self, n: usize, seed: u64) -> SimulationPoints {
        select_points(&self.cpis, &self.model.assignments, self.k(), n, &mut seeded(seed))
    }

    /// Stratified CPI estimate from a set of points, with its Eq. 4
    /// confidence interval at z-score `z`.
    pub fn estimate(&self, points: &SimulationPoints, z: f64) -> Estimate {
        estimate_stratified(&self.cpis, &self.model.assignments, points, z)
    }

    /// Required sample size for a relative error of `rel_err` at z-score `z`
    /// (the Fig. 8 solver; the paper uses z = 3 for the 99.7 % interval).
    pub fn required_size(&self, z: f64, rel_err: f64) -> usize {
        required_sample_size(&self.cpis, &self.model.assignments, self.k(), z, rel_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;

    fn trace() -> ProfileTrace {
        let units = (0..50u64)
            .map(|i| {
                let early = i < 30;
                let jitter = (i % 6) * 25;
                let (m, cycles) = if early { (1, 1000 + jitter) } else { (2, 2600 + 10 * jitter) };
                SamplingUnit {
                    id: i,
                    histogram: vec![(MethodId(0), 10), (MethodId(m), 9)],
                    snapshots: 10,
                    counters: Counters { instructions: 1000, cycles, ..Default::default() },
                    slices: Vec::new(),
                    truncated: false,
                    dropped_snapshots: 0,
                }
            })
            .collect();
        ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
    }

    #[test]
    fn analyze_end_to_end() {
        let t = trace();
        let analysis =
            SimProf::new(SimProfConfig { seed: 4, ..Default::default() }).analyze(&t).unwrap();
        assert_eq!(analysis.k(), 2);
        assert_eq!(analysis.weights.iter().sum::<f64>(), 1.0);
        assert!(analysis.cov.weighted < analysis.cov.population);

        let points = analysis.select_points(15, 7);
        assert_eq!(points.len(), 15);
        let est = analysis.estimate(&points, 3.0);
        let oracle = analysis.oracle_cpi();
        assert!((est.mean_cpi - oracle).abs() / oracle < 0.25);

        let n5 = analysis.required_size(3.0, 0.05);
        let n2 = analysis.required_size(3.0, 0.02);
        assert!(n2 >= n5);
        assert!(n5 >= analysis.k());
    }

    #[test]
    fn analysis_serde_roundtrip() {
        let t = trace();
        let analysis =
            SimProf::new(SimProfConfig { seed: 4, ..Default::default() }).analyze(&t).unwrap();
        let json = serde_json::to_string(&analysis).unwrap();
        let back: Analysis = serde_json::from_str(&json).unwrap();
        assert_eq!(back.k(), analysis.k());
        assert_eq!(back.cpis, analysis.cpis);
    }

    #[test]
    fn degenerate_traces_are_rejected_typed() {
        let sp = SimProf::default();
        let empty =
            ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units: vec![] };
        assert!(matches!(sp.analyze(&empty), Err(TraceError::EmptyTrace)));
        let mut zero_unit = trace();
        zero_unit.unit_instrs = 0;
        assert!(matches!(sp.analyze(&zero_unit), Err(TraceError::ZeroUnitSize)));
        let mut dead = trace();
        dead.units[3].counters.instructions = 0;
        assert!(matches!(sp.analyze(&dead), Err(TraceError::ZeroInstructionUnit { unit: 3 })));
        // Errors render human-readable messages and serde-roundtrip.
        let e = TraceError::ZeroInstructionUnit { unit: 3 };
        assert!(e.to_string().contains("unit 3"));
        let back: TraceError = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = SimProfConfig::default();
        assert_eq!(c.top_k, 100);
        assert_eq!(c.k_max, 20);
        assert_eq!(c.silhouette_threshold, 0.9);
    }
}
