//! The input-sensitivity test (§III-D, Algorithm 1).
//!
//! One input is the *training* input; its phase model (centers + per-phase
//! CPI statistics) is fixed. Each *reference* input's sampling units are
//! classified into the training phases by nearest center; a phase passes the
//! sensitivity test for a reference input when its CPI mean or stddev moves
//! by more than 10 % (Eq. 6). A phase is *input sensitive* if any reference
//! input makes it pass; otherwise it is input insensitive and its simulation
//! points can be skipped when exploring new inputs.

use serde::{Deserialize, Serialize};

use simprof_profiler::ProfileTrace;
use simprof_stats::Summary;

use crate::phases::{classify_units, PhaseModel};
use crate::sampling::SimulationPoints;

/// Per-phase CPI summaries with 10 % two-sided trimming.
///
/// Substitution note (see DESIGN.md): the paper computes Eq. 6 from the raw
/// per-phase mean and standard deviation. At the scaled unit counts of this
/// reproduction a phase often has only a few dozen units, where one or two
/// boundary-mixed units dominate the sample standard deviation and make the
/// σ clause fire on classification noise rather than input behaviour.
/// Trimming the top and bottom deciles before computing the summary keeps
/// Eq. 6's comparison meaningful at small n while preserving its semantics
/// at paper-scale n.
/// Buckets, sorts, and trims *indices* into `cpis` rather than cloning the
/// values into per-phase vectors. [`Summary::of_indices`] mirrors
/// [`Summary::of`]'s arithmetic term for term and `sort_by` is stable, so
/// the result is bit-identical to the value-bucket formulation while the
/// evaluation path borrows the CPI slice instead of duplicating it.
pub fn trimmed_phase_stats(cpis: &[f64], assignments: &[usize], k: usize) -> Vec<Summary> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate().take(cpis.len()) {
        buckets[a].push(i);
    }
    buckets
        .iter_mut()
        .map(|b| {
            b.sort_by(|&x, &y| cpis[x].partial_cmp(&cpis[y]).unwrap_or(std::cmp::Ordering::Equal));
            let trim = if b.len() >= 5 { (b.len() / 10).max(1) } else { 0 };
            Summary::of_indices(cpis, &b[trim..b.len() - trim])
        })
        .collect()
}

/// Eq. 6: does the phase's CPI distribution move between the training and a
/// reference input?
///
/// The mean clause is the paper's exactly: `|μ_t − μ_r| / μ_t > threshold`.
/// The dispersion clause normalizes by the training *mean* rather than the
/// training σ — `|σ_t − σ_r| / μ_t > threshold` — a documented deviation
/// (DESIGN.md): for the near-homogeneous phases this reproduction produces
/// (CoV ≈ 0.02), a σ-over-σ ratio amplifies sub-1 %-of-CPI dispersion
/// wiggles into >100 % "changes", while normalizing by μ keeps the clause
/// measuring what matters for simulation accuracy: how much of the phase's
/// CPI the spread change represents.
///
/// A phase unobserved in the reference input (`ref_stats.n == 0`) cannot
/// pass — there is no evidence of change. A zero training mean with a
/// nonzero reference mean counts as a change.
pub fn phase_sensitive(train: &Summary, reference: &Summary, threshold: f64) -> bool {
    if reference.n == 0 {
        return false;
    }
    if train.mean == 0.0 {
        return reference.mean != 0.0 || reference.stddev != 0.0;
    }
    let mean_shift = ((train.mean - reference.mean) / train.mean).abs();
    let spread_shift = ((train.stddev - reference.stddev) / train.mean).abs();
    mean_shift > threshold || spread_shift > threshold
}

/// The outcome of Algorithm 1 over a set of reference inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Per phase: is it input sensitive (some reference input moved it)?
    pub sensitive: Vec<bool>,
    /// Per reference input, per phase: did that input pass the test?
    pub per_reference: Vec<Vec<bool>>,
    /// Training per-phase CPI statistics the tests compared against.
    pub train_stats: Vec<Summary>,
}

impl SensitivityReport {
    /// Number of input-sensitive phases.
    pub fn sensitive_count(&self) -> usize {
        self.sensitive.iter().filter(|&&s| s).count()
    }

    /// Number of input-insensitive phases.
    pub fn insensitive_count(&self) -> usize {
        self.sensitive.len() - self.sensitive_count()
    }

    /// The characteristic methods of the input-sensitive phases, as
    /// `(phase, method_id, center weight)` triples — the paper's §III-D-2:
    /// "we can easily trace the methods that show input-sensitive …
    /// behavior using the information of the method encoded in the phase
    /// centers".
    pub fn sensitive_methods(
        &self,
        model: &crate::phases::PhaseModel,
        per_phase: usize,
    ) -> Vec<(usize, usize, f64)> {
        self.sensitive
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .flat_map(|(h, _)| {
                model.top_methods(h, per_phase).into_iter().map(move |(m, w)| (h, m, w))
            })
            .collect()
    }

    /// Fraction of simulation points that land in input-sensitive phases —
    /// the sample size needed for reference inputs (Fig. 12). The complement
    /// is the paper's "sample size reduction".
    pub fn sensitive_point_fraction(&self, points: &SimulationPoints) -> f64 {
        let total: usize = points.allocation.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let kept: usize = points
            .allocation
            .iter()
            .zip(&self.sensitive)
            .filter(|&(_, &s)| s)
            .map(|(&n, _)| n)
            .sum();
        kept as f64 / total as f64
    }
}

/// Algorithm 1: classifies every reference input's units into the training
/// phases and runs the phase-sensitivity test per phase.
///
/// # Examples
///
/// ```
/// use simprof_core::{form_phases, input_sensitivity, SimProfConfig};
/// # use simprof_engine::MethodId;
/// # use simprof_profiler::{ProfileTrace, SamplingUnit};
/// # use simprof_sim::Counters;
/// # fn trace(scale: f64) -> ProfileTrace {
/// #     let units = (0..24u64).map(|i| {
/// #         let first = i < 12;
/// #         let jitter = (i % 4) * 30;
/// #         let (m, cycles) = if first { (1, 1000 + jitter) }
/// #                           else { (2, ((3000 + jitter) as f64 * scale) as u64) };
/// #         SamplingUnit { id: i, histogram: vec![(MethodId(0), 10), (MethodId(m), 9)],
/// #             snapshots: 10, counters: Counters { instructions: 1000, cycles,
/// #             ..Default::default() }, slices: Vec::new(), truncated: false, dropped_snapshots: 0 }
/// #     }).collect();
/// #     ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
/// # }
/// let train = trace(1.0);
/// let model = form_phases(&train, &SimProfConfig { seed: 3, ..Default::default() });
/// // A reference input that slows the second phase by 50 %.
/// let reference = trace(1.5);
/// let report = input_sensitivity(&model, &train, &[&reference], 0.10);
/// assert_eq!(report.sensitive_count(), 1);
/// ```
pub fn input_sensitivity(
    model: &PhaseModel,
    train: &ProfileTrace,
    references: &[&ProfileTrace],
    threshold: f64,
) -> SensitivityReport {
    let k = model.k();
    let train_stats = trimmed_phase_stats(&train.cpis(), &model.assignments, k);
    let mut sensitive = vec![false; k];
    let mut per_reference = Vec::with_capacity(references.len());
    for r in references {
        let assignments = classify_units(model, r);
        let ref_stats = trimmed_phase_stats(&r.cpis(), &assignments, k);
        let passes: Vec<bool> =
            (0..k).map(|h| phase_sensitive(&train_stats[h], &ref_stats[h], threshold)).collect();
        for (h, &p) in passes.iter().enumerate() {
            sensitive[h] |= p;
        }
        per_reference.push(passes);
    }
    SensitivityReport { sensitive, per_reference, train_stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::form_phases;
    use crate::pipeline::SimProfConfig;
    use crate::sampling::select_points;
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;
    use simprof_stats::seeded;

    fn s(n: usize, mean: f64, stddev: f64) -> Summary {
        Summary { n, mean, stddev, cov: if mean == 0.0 { 0.0 } else { stddev / mean } }
    }

    #[test]
    fn trimmed_stats_match_value_bucket_formulation() {
        // The index-based implementation must be bit-identical to bucketing
        // the values themselves, sorting, trimming, and summarizing.
        let cpis: Vec<f64> = (0..37).map(|i| 1.0 + ((i * 17 + 5) % 13) as f64 * 0.31).collect();
        let assignments: Vec<usize> = (0..37).map(|i| (i * 7 + 2) % 3).collect();
        let k = 3;
        let got = trimmed_phase_stats(&cpis, &assignments, k);
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); k];
        for (&c, &a) in cpis.iter().zip(&assignments) {
            buckets[a].push(c);
        }
        let expected: Vec<Summary> = buckets
            .iter_mut()
            .map(|b| {
                b.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
                let trim = if b.len() >= 5 { (b.len() / 10).max(1) } else { 0 };
                Summary::of(&b[trim..b.len() - trim])
            })
            .collect();
        assert_eq!(got, expected);
        // Tiny phases (n < 5) are untrimmed; empty phases summarize to n=0.
        let small = trimmed_phase_stats(&[2.0, 4.0], &[0, 0], 2);
        assert_eq!(small[0], Summary::of(&[2.0, 4.0]));
        assert_eq!(small[1].n, 0);
    }

    #[test]
    fn eq6_mean_shift() {
        assert!(phase_sensitive(&s(10, 1.0, 0.1), &s(10, 1.2, 0.1), 0.10));
        assert!(!phase_sensitive(&s(10, 1.0, 0.1), &s(10, 1.05, 0.1), 0.10));
    }

    #[test]
    fn eq6_stddev_shift_normalized_by_mean() {
        // Spread change of 0.15 on a mean of 1.0 → 15% of CPI → sensitive.
        assert!(phase_sensitive(&s(10, 1.0, 0.1), &s(10, 1.0, 0.25), 0.10));
        // Spread change of 0.05 on a mean of 1.0 → 5% → not sensitive, even
        // though σ itself grew 50%.
        assert!(!phase_sensitive(&s(10, 1.0, 0.1), &s(10, 1.0, 0.15), 0.10));
    }

    #[test]
    fn eq6_unobserved_phase_never_passes() {
        assert!(!phase_sensitive(&s(10, 1.0, 0.1), &s(0, 0.0, 0.0), 0.10));
    }

    #[test]
    fn eq6_zero_train_guard() {
        assert!(phase_sensitive(&s(10, 0.0, 0.0), &s(10, 1.0, 0.0), 0.10));
        assert!(phase_sensitive(&s(10, 0.0, 0.0), &s(10, 0.0, 0.5), 0.10));
        assert!(!phase_sensitive(&s(10, 0.0, 0.0), &s(10, 0.0, 0.0), 0.10));
    }

    /// A two-phase trace where `shift` scales the second phase's CPI.
    fn trace_with_shift(shift: f64, jitter_scale: f64) -> ProfileTrace {
        let units = (0..40u64)
            .map(|i| {
                let first = i < 20;
                let jitter = ((i % 5) as f64) * 40.0 * jitter_scale;
                let (m, cycles) = if first {
                    (1, (1000.0 + jitter) as u64)
                } else {
                    (2, (3000.0 * shift + jitter) as u64)
                };
                SamplingUnit {
                    id: i,
                    histogram: vec![(MethodId(0), 10), (MethodId(m), 9)],
                    snapshots: 10,
                    counters: Counters { instructions: 1000, cycles, ..Default::default() },
                    slices: Vec::new(),
                    truncated: false,
                    dropped_snapshots: 0,
                }
            })
            .collect();
        ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
    }

    #[test]
    fn algorithm1_flags_shifted_phase_only() {
        let train = trace_with_shift(1.0, 1.0);
        let model = form_phases(&train, &SimProfConfig { seed: 9, ..Default::default() });
        assert_eq!(model.k(), 2);
        // Reference input: phase holding method 2 becomes 40% slower.
        let reference = trace_with_shift(1.4, 1.0);
        let report = input_sensitivity(&model, &train, &[&reference], 0.10);
        assert_eq!(report.sensitive_count(), 1, "{:?}", report.sensitive);
        // The sensitive one is the phase whose units are the later ones.
        let phase2 = model.assignments[39];
        assert!(report.sensitive[phase2]);
    }

    #[test]
    fn algorithm1_insensitive_when_inputs_match() {
        let train = trace_with_shift(1.0, 1.0);
        let model = form_phases(&train, &SimProfConfig { seed: 9, ..Default::default() });
        let reference = trace_with_shift(1.0, 1.0);
        let report = input_sensitivity(&model, &train, &[&reference], 0.10);
        assert_eq!(report.sensitive_count(), 0);
        assert_eq!(report.insensitive_count(), model.k());
    }

    #[test]
    fn algorithm1_any_reference_suffices() {
        let train = trace_with_shift(1.0, 1.0);
        let model = form_phases(&train, &SimProfConfig { seed: 9, ..Default::default() });
        let same = trace_with_shift(1.0, 1.0);
        let moved = trace_with_shift(1.5, 1.0);
        let report = input_sensitivity(&model, &train, &[&same, &moved], 0.10);
        assert_eq!(report.sensitive_count(), 1);
        assert_eq!(report.per_reference.len(), 2);
        assert!(report.per_reference[0].iter().all(|&p| !p));
        assert!(report.per_reference[1].iter().any(|&p| p));
    }

    #[test]
    fn stddev_only_shift_detected() {
        // Same means, reference jitter 3x — Eq. 6's second clause.
        let train = trace_with_shift(1.0, 1.0);
        let model = form_phases(&train, &SimProfConfig { seed: 9, ..Default::default() });
        let noisy = trace_with_shift(1.0, 3.0);
        let report = input_sensitivity(&model, &train, &[&noisy], 0.10);
        assert!(report.sensitive_count() >= 1);
    }

    #[test]
    fn sensitive_methods_name_the_moving_phase() {
        let train = trace_with_shift(1.0, 1.0);
        let model = form_phases(&train, &SimProfConfig { seed: 9, ..Default::default() });
        let moved = trace_with_shift(1.4, 1.0);
        let report = input_sensitivity(&model, &train, &[&moved], 0.10);
        let methods = report.sensitive_methods(&model, 1);
        assert_eq!(methods.len(), 1, "{methods:?}");
        let phase2 = model.assignments[39];
        assert_eq!(methods[0].0, phase2);
        // The moved phase is characterized by method 2.
        assert_eq!(methods[0].1, 2);
    }

    #[test]
    fn point_fraction_reflects_allocation() {
        let train = trace_with_shift(1.0, 1.0);
        let model = form_phases(&train, &SimProfConfig { seed: 9, ..Default::default() });
        let cpis = train.cpis();
        let pts = select_points(&cpis, &model.assignments, model.k(), 10, &mut seeded(1));
        let moved = trace_with_shift(1.4, 1.0);
        let report = input_sensitivity(&model, &train, &[&moved], 0.10);
        let frac = report.sensitive_point_fraction(&pts);
        assert!(frac > 0.0 && frac < 1.0, "{frac}");
        let phase2 = model.assignments[39];
        let expect = pts.allocation[phase2] as f64 / 10.0;
        assert!((frac - expect).abs() < 1e-12);
    }
}
