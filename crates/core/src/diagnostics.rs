//! Estimator diagnostics: is the Eq. 2–4 machinery actually trustworthy?
//!
//! Two monitors, both replaying the sampling stage against the full-trace
//! oracle (which SimProf uniquely has — the native profiler measured every
//! unit's CPI, so the "truth" the estimator targets is known exactly):
//!
//! * [`convergence_curve`] — per phase, the CI half-width as a function of
//!   the simulated-points budget. A healthy estimator's half-width shrinks
//!   roughly as `1/√n`; a phase whose curve plateaus high is the one to
//!   spend budget on.
//! * [`coverage`] — the paper's own validity check, automated: replay K
//!   seeded point selections and count how often the stated confidence
//!   interval actually contains the oracle value. A 95% interval that
//!   covers in fewer than ~90% of replications ([`FLAG_BELOW`]) means the
//!   error bars are lying, and the report flags the offending phases.
//!
//! Per-phase intervals use the same sd-floor guard as
//! [`crate::sampling::estimate_stratified`] (population σ_h when a small
//! sample's spread collapses) plus the finite-population correction, so
//! what is being validated is exactly what the estimator ships.

use serde::{Deserialize, Serialize};

use simprof_stats::{mean, split_seed, stddev};

use crate::pipeline::Analysis;

/// Default coverage threshold below which a phase is flagged: a nominal
/// 95% interval that covers less often than this is untrustworthy.
pub const FLAG_BELOW: f64 = 0.90;

/// Per-phase sample interval with the estimator's own `s_h` policy.
/// Returns `None` when the phase drew no points.
fn phase_interval(phase_cpis: &[f64], sample: &[f64], z: f64) -> Option<(f64, f64)> {
    if sample.is_empty() {
        return None;
    }
    let n_h = sample.len() as f64;
    let pop_n = phase_cpis.len() as f64;
    let m = mean(sample);
    let sample_sd = stddev(sample);
    let pop_sd = stddev(phase_cpis);
    // Same guard as estimate_stratified: trust the sample spread only when
    // it has ≥ 2 points and has not collapsed below a tenth of the known
    // population spread.
    let s_h = if sample.len() >= 2 && sample_sd >= 0.1 * pop_sd { sample_sd } else { pop_sd };
    // Standard without-replacement finite-population correction
    // (N − n)/(N − 1): sampling half the phase (or all of it) carries less
    // error than an infinite-population draw. A one-unit phase can only be
    // enumerated, so its interval degenerates to the point.
    let fpc = if pop_n > 1.0 { ((pop_n - n_h) / (pop_n - 1.0)).max(0.0) } else { 0.0 };
    let se = (s_h * s_h / n_h * fpc).sqrt();
    Some((m, z * se))
}

/// Groups the oracle CPIs by phase assignment.
///
/// Assignments at or beyond `k` are skipped and counted (through the
/// `core.oob_assignments` counter) instead of panicking: once live
/// re-formation can shrink `k` mid-run, a stale assignment beyond the
/// current phase count is a routine state, not a corner case.
fn phase_populations(cpis: &[f64], assignments: &[usize], k: usize) -> Vec<Vec<f64>> {
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut oob = 0u64;
    for (&c, &a) in cpis.iter().zip(assignments) {
        match buckets.get_mut(a) {
            Some(b) => b.push(c),
            None => oob += 1,
        }
    }
    if oob > 0 {
        simprof_obs::counter_add("core.oob_assignments", oob);
    }
    buckets
}

/// One phase's contribution to a [`ConvergencePoint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseWidth {
    /// Phase id.
    pub phase: usize,
    /// Points allocated to the phase at this budget.
    pub allocated: usize,
    /// `z · se_h` of the phase's sample mean (0 when nothing was drawn —
    /// the overall estimator then leans entirely on the population σ_h).
    pub half_width: f64,
}

/// The estimator's error bars at one simulated-points budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Total simulated-points budget.
    pub budget: usize,
    /// Overall stratified standard error (Eq. 4).
    pub se: f64,
    /// Overall CI half-width (`z · se`).
    pub half_width: f64,
    /// Per-phase half-widths.
    pub per_phase: Vec<PhaseWidth>,
}

/// Sweeps the simulated-points budget and records how the overall and
/// per-phase CI half-widths shrink. Each budget draws an independent
/// seeded selection (`split_seed(seed, budget)`), so adjacent points are
/// uncorrelated probes of the same estimator, not a single growing sample.
pub fn convergence_curve(
    analysis: &Analysis,
    budgets: &[usize],
    z: f64,
    seed: u64,
) -> Vec<ConvergencePoint> {
    let k = analysis.k();
    let pops = phase_populations(&analysis.cpis, &analysis.model.assignments, k);
    budgets
        .iter()
        .map(|&budget| {
            let points = analysis.select_points(budget, split_seed(seed, budget as u64));
            let est = analysis.estimate(&points, z);
            let per_phase = (0..k)
                .map(|h| {
                    let sample: Vec<f64> =
                        points.per_phase[h].iter().map(|&id| analysis.cpis[id as usize]).collect();
                    let half_width = phase_interval(&pops[h], &sample, z).map_or(0.0, |(_, hw)| hw);
                    PhaseWidth { phase: h, allocated: sample.len(), half_width }
                })
                .collect();
            ConvergencePoint { budget, se: est.se, half_width: z * est.se, per_phase }
        })
        .collect()
}

/// A sensible default budget sweep for [`convergence_curve`]: powers of
/// two from `max(k, 2)` up to the trace size, always including `n`.
pub fn default_budgets(k: usize, n: usize, units: usize) -> Vec<usize> {
    let cap = units.max(1);
    let mut budgets = Vec::new();
    let mut b = k.max(2).min(cap);
    while b < cap && budgets.len() < 16 {
        budgets.push(b);
        b *= 2;
    }
    budgets.push(cap.min(b));
    budgets.push(n.clamp(1, cap));
    budgets.sort_unstable();
    budgets.dedup();
    budgets
}

/// Empirical coverage of one phase's confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCoverage {
    /// Phase id.
    pub phase: usize,
    /// Units in the phase (population size).
    pub units: usize,
    /// Population weight `W_h`.
    pub weight: f64,
    /// The oracle phase mean the interval must cover.
    pub true_mean: f64,
    /// Replications in which the phase drew ≥ 1 point.
    pub reps: usize,
    /// Replications whose interval contained `true_mean`.
    pub covered: usize,
    /// `covered / reps` (1.0 when the phase never drew a point — there
    /// was no interval to be wrong).
    pub coverage: f64,
    /// Mean CI half-width across counted replications.
    pub mean_half_width: f64,
    /// Whether `coverage` fell below the flag threshold.
    pub flagged: bool,
}

/// Result of a [`coverage`] experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Seeded replications performed.
    pub reps: usize,
    /// Simulated-points budget per replication.
    pub n: usize,
    /// z-score of the intervals under test.
    pub z: f64,
    /// The full-trace oracle CPI.
    pub oracle_cpi: f64,
    /// Fraction of replications whose overall Eq. 2–3 interval covered
    /// the oracle CPI.
    pub overall_coverage: f64,
    /// Mean overall CI half-width across replications.
    pub mean_half_width: f64,
    /// Per-phase coverage, by phase id.
    pub per_phase: Vec<PhaseCoverage>,
    /// The flag threshold used.
    pub flag_below: f64,
}

impl CoverageReport {
    /// Ids of the phases whose coverage fell below the threshold.
    pub fn flagged_phases(&self) -> Vec<usize> {
        self.per_phase.iter().filter(|p| p.flagged).map(|p| p.phase).collect()
    }
}

/// Replays `reps` seeded point selections of `n` points each and measures
/// how often the stated intervals cover the full-trace oracle — overall
/// (Eq. 2–3 around the stratified mean) and per phase (sample mean ± z·se
/// with the estimator's own sd-floor guard and the finite-population
/// correction). Phases covering less than `flag_below` are flagged.
pub fn coverage(
    analysis: &Analysis,
    n: usize,
    z: f64,
    reps: usize,
    seed: u64,
    flag_below: f64,
) -> CoverageReport {
    let k = analysis.k();
    let total_units = analysis.cpis.len();
    let pops = phase_populations(&analysis.cpis, &analysis.model.assignments, k);
    let true_means: Vec<f64> = pops.iter().map(|p| mean(p)).collect();
    let oracle = analysis.oracle_cpi();

    let mut overall_covered = 0usize;
    let mut width_sum = 0.0f64;
    let mut phase_reps = vec![0usize; k];
    let mut phase_covered = vec![0usize; k];
    let mut phase_width_sum = vec![0.0f64; k];

    for rep in 0..reps {
        let points = analysis.select_points(n, split_seed(seed, rep as u64));
        let est = analysis.estimate(&points, z);
        if est.ci.0 <= oracle && oracle <= est.ci.1 {
            overall_covered += 1;
        }
        width_sum += z * est.se;
        for h in 0..k {
            let sample: Vec<f64> =
                points.per_phase[h].iter().map(|&id| analysis.cpis[id as usize]).collect();
            if let Some((m, hw)) = phase_interval(&pops[h], &sample, z) {
                phase_reps[h] += 1;
                phase_width_sum[h] += hw;
                if (m - true_means[h]).abs() <= hw {
                    phase_covered[h] += 1;
                }
            }
        }
    }

    let per_phase = (0..k)
        .map(|h| {
            let r = phase_reps[h];
            let coverage = if r == 0 { 1.0 } else { phase_covered[h] as f64 / r as f64 };
            PhaseCoverage {
                phase: h,
                units: pops[h].len(),
                weight: pops[h].len() as f64 / total_units.max(1) as f64,
                true_mean: true_means[h],
                reps: r,
                covered: phase_covered[h],
                coverage,
                mean_half_width: if r == 0 { 0.0 } else { phase_width_sum[h] / r as f64 },
                flagged: r > 0 && coverage < flag_below,
            }
        })
        .collect();

    CoverageReport {
        reps,
        n,
        z,
        oracle_cpi: oracle,
        overall_coverage: if reps == 0 { 1.0 } else { overall_covered as f64 / reps as f64 },
        mean_half_width: if reps == 0 { 0.0 } else { width_sum / reps as f64 },
        per_phase,
        flag_below,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{SimProf, SimProfConfig};
    use simprof_profiler::ProfileTrace;
    use simprof_sim::Counters;

    /// A synthetic trace with two clearly separated behaviours.
    fn two_phase_trace(units: usize) -> ProfileTrace {
        use simprof_engine::MethodId;
        use simprof_profiler::SamplingUnit;
        let mut out = Vec::with_capacity(units);
        for i in 0..units {
            let phase = i % 2;
            let (method, cycles) = if phase == 0 { (0u32, 120u64) } else { (1u32, 300) };
            out.push(SamplingUnit {
                id: i as u64,
                histogram: vec![(MethodId(method), 8)],
                snapshots: 8,
                counters: Counters {
                    instructions: 100,
                    cycles: cycles + (i as u64 % 3),
                    ..Default::default()
                },
                slices: Vec::new(),
                truncated: false,
                dropped_snapshots: 0,
            });
        }
        ProfileTrace { unit_instrs: 100, snapshot_instrs: 12, core: 0, units: out }
    }

    fn analysis() -> Analysis {
        let trace = two_phase_trace(120);
        SimProf::new(SimProfConfig { seed: 7, ..Default::default() })
            .analyze(&trace)
            .expect("analyzable trace")
    }

    #[test]
    fn convergence_half_width_shrinks_with_budget() {
        let a = analysis();
        let budgets = default_budgets(a.k(), 16, a.cpis.len());
        assert!(budgets.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        let curve = convergence_curve(&a, &budgets, 1.96, 11);
        assert_eq!(curve.len(), budgets.len());
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(
            last.half_width <= first.half_width,
            "error bars must not grow with budget: {} -> {}",
            first.half_width,
            last.half_width
        );
        // At the full-trace budget the sample is the population: zero error.
        assert!(last.half_width < 1e-9);
        for p in &curve[0].per_phase {
            assert!(p.half_width >= 0.0);
        }
    }

    #[test]
    fn coverage_of_honest_intervals_is_high() {
        let a = analysis();
        let report = coverage(&a, 12, 1.96, 60, 5, FLAG_BELOW);
        assert_eq!(report.reps, 60);
        assert!(
            report.overall_coverage >= 0.9,
            "guarded 95% intervals should cover ≥ 90% empirically, got {}",
            report.overall_coverage
        );
        assert_eq!(report.per_phase.len(), a.k());
        for p in &report.per_phase {
            assert!(p.reps > 0, "every phase should draw points at n=12");
            assert_eq!(p.flagged, p.coverage < FLAG_BELOW);
        }
        assert_eq!(
            report.flagged_phases(),
            report.per_phase.iter().filter(|p| p.flagged).map(|p| p.phase).collect::<Vec<_>>()
        );
    }

    #[test]
    fn coverage_is_deterministic_per_seed() {
        let a = analysis();
        let r1 = coverage(&a, 10, 3.0, 20, 42, FLAG_BELOW);
        let r2 = coverage(&a, 10, 3.0, 20, 42, FLAG_BELOW);
        assert_eq!(r1, r2);
    }

    #[test]
    fn census_phase_interval_has_zero_width_and_covers() {
        // A sample that IS the population: the finite-population correction
        // zeroes the error and the interval degenerates to the true mean.
        let pop = [1.0, 2.0, 3.0, 10.0];
        let (m, hw) = phase_interval(&pop, &pop, 1.96).expect("non-empty sample");
        assert_eq!(m, mean(&pop));
        assert_eq!(hw, 0.0);
    }

    #[test]
    fn empty_phase_sample_yields_no_interval() {
        assert!(phase_interval(&[1.0, 2.0], &[], 1.96).is_none());
    }

    #[test]
    fn phase_interval_uses_standard_fpc() {
        // Hand-computed: N = 5, n = 2, spread wide enough to pass the
        // sd-floor guard, so hw = z · s/√n · √((N−n)/(N−1)).
        let pop = [1.0, 2.0, 3.0, 4.0, 10.0];
        let sample = [1.0, 4.0];
        let (m, hw) = phase_interval(&pop, &sample, 2.0).expect("non-empty sample");
        assert!((m - 2.5).abs() < 1e-12);
        let s = stddev(&sample);
        let expect = 2.0 * (s * s / 2.0 * (5.0 - 2.0) / 4.0).sqrt();
        assert!((hw - expect).abs() < 1e-12, "{hw} vs {expect}");
        // The simplified 1 − n/N form would have been narrower (optimistic).
        let optimistic = 2.0 * (s * s / 2.0 * (1.0 - 2.0 / 5.0)).sqrt();
        assert!(hw > optimistic, "{hw} must exceed {optimistic}");
    }

    #[test]
    fn single_unit_phase_interval_degenerates_to_the_point() {
        let (m, hw) = phase_interval(&[2.0], &[2.0], 3.0).expect("non-empty sample");
        assert_eq!(m, 2.0);
        assert_eq!(hw, 0.0);
    }

    #[test]
    fn out_of_range_assignments_are_skipped_not_panicking() {
        // An assignment beyond k (stale after live re-formation shrank the
        // model) must not panic phase grouping.
        let cpis = [1.0, 2.0, 3.0];
        let asg = [0usize, 1, 7];
        let pops = phase_populations(&cpis, &asg, 2);
        assert_eq!(pops, vec![vec![1.0], vec![2.0]]);
    }
}
