//! SimProf core — the paper's contribution (§III).
//!
//! Given a [`simprof_profiler::ProfileTrace`] (sampling units with call-stack
//! method histograms and hardware counters), this crate:
//!
//! 1. **Forms phases** ([`features`], [`phases`]): vectorizes units into
//!    method-frequency feature vectors, keeps the top-K methods most
//!    correlated with IPC (univariate regression test), clusters with
//!    k-means, and selects the number of phases with the silhouette 90 %
//!    rule.
//! 2. **Samples phases** ([`sampling`]): stratified random sampling with
//!    Neyman optimal allocation (Eq. 1) picks the final *simulation points*;
//!    the stratified standard error (Eq. 4) bounds the CPI sampling error
//!    and drives the required-sample-size solver (Fig. 8).
//! 3. **Tests input sensitivity** ([`sensitivity`]): classifies a reference
//!    input's units against the training input's phase centers and flags
//!    phases whose CPI mean or stddev moves by more than 10 % (Eq. 6,
//!    Algorithm 1), letting input-insensitive phases be skipped.
//!
//! [`baselines`] implements the paper's comparison points (SECOND, SRS,
//! CODE), [`eval`] the error metrics and phase-type labelling, [`hybrid`]
//! the paper's stated future work (systematic SMARTS-style sub-unit
//! sampling nested inside the stratified selection), and [`pipeline`] a
//! convenience façade ([`SimProf`]) tying it all together.

pub mod baselines;
pub mod diagnostics;
pub mod eval;
pub mod export;
pub mod features;
pub mod hybrid;
pub mod live;
pub mod phases;
pub mod pipeline;
pub mod sampling;
pub mod sensitivity;

pub use baselines::{
    code_points, second_points_by_cycles, simprof_points, srs_points, systematic_points, Sampler,
    SamplerKind,
};
pub use diagnostics::{
    convergence_curve, coverage, default_budgets, ConvergencePoint, CoverageReport, PhaseCoverage,
    PhaseWidth, FLAG_BELOW,
};
pub use eval::{phase_type_distribution, phase_types, relative_error, PhaseTypeShare};
pub use export::{ExportError, ManifestPoint, SimulationManifest};
pub use features::{vectorize, vectorize_with_dim, FeatureSpace, FeatureStats};
pub use hybrid::{estimate_hybrid, HybridEstimate};
pub use live::{LiveAnalyzer, LiveConfig, LiveReport};
pub use phases::{
    classify_units, form_phases, form_phases_in_space, homogeneity, phase_stats, phase_weights,
    PhaseModel,
};
pub use pipeline::{
    validate_trace, AllocationRow, Analysis, MinibatchPhases, SimProf, SimProfConfig, TraceError,
};
pub use sampling::{
    estimate_stratified, required_sample_size, select_points, Estimate, SimulationPoints,
};
pub use sensitivity::{input_sensitivity, phase_sensitive, trimmed_phase_stats, SensitivityReport};
