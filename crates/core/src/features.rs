//! Vectorization and feature selection (§III-B, Fig. 5).
//!
//! Each sampling unit becomes a feature vector whose dimensions are methods
//! and whose values are the fraction of the unit's call-stack snapshots that
//! contained the method (normalizing by snapshot count makes units with
//! different snapshot counts comparable). The dimensionality is the number
//! of unique methods in the whole job, so every vector has the same shape.
//!
//! Because "a feature vector can easily have thousands of dimensions", the
//! paper selects the top-K (= 100) methods most correlated with performance
//! (IPC) using the univariate linear-regression test, which also eliminates
//! the executor-startup methods present in every stack.

use serde::{Deserialize, Serialize};

use simprof_profiler::{ProfileTrace, SamplingUnit};
use simprof_stats::{f_score_from_moments, top_k_features, ColumnMoments, Matrix};

/// Vectorizes a trace into the full (unselected) feature matrix:
/// `units × method_universe`.
pub fn vectorize(trace: &ProfileTrace) -> Matrix {
    vectorize_with_dim(trace, trace.method_universe())
}

/// Vectorizes with an explicit dimensionality.
///
/// Used to classify a *reference* input's units in the *training* input's
/// feature space: methods unknown to the training run (ids ≥ `dim`) are
/// dropped, which mirrors the paper's unit classification — only methods the
/// phase centers know about can influence the distance.
pub fn vectorize_with_dim(trace: &ProfileTrace, dim: usize) -> Matrix {
    let mut m = Matrix::zeros(trace.units.len(), dim);
    for (i, unit) in trace.units.iter().enumerate() {
        if unit.snapshots == 0 {
            continue;
        }
        let inv = 1.0 / unit.snapshots as f64;
        let row = m.row_mut(i);
        for &(method, count) in &unit.histogram {
            if method.index() < dim {
                row[method.index()] = count as f64 * inv;
            }
        }
    }
    m
}

/// Streaming sufficient statistics for feature selection (pass 1 of the
/// two-pass sparse pipeline).
///
/// Folding a unit updates only the columns present in its histogram (plus
/// the global response moments), so memory is `O(method_universe)` — one
/// [`ColumnMoments`] per method — instead of the dense `units × universe`
/// matrix [`vectorize`] builds. Because the fold touches exactly the values
/// the dense matrix would hold (absent methods contribute an exact `0.0` to
/// every sum), a batch fit routed through this accumulator and a streaming
/// fit over the same units produce bit-identical scores.
#[derive(Debug, Clone, Default)]
pub struct FeatureStats {
    n: usize,
    sum_y: f64,
    sum_yy: f64,
    moments: Vec<ColumnMoments>,
}

impl FeatureStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sampling unit: response `y` is the unit's IPC, features are
    /// the unit's snapshot-normalized method frequencies.
    pub fn push(&mut self, unit: &SamplingUnit) {
        let y = unit.ipc();
        self.n += 1;
        self.sum_y += y;
        self.sum_yy += y * y;
        // The universe must cover every method seen, even in units whose
        // snapshot count is zero (their feature row is all zeros but they
        // still widen the dense matrix).
        if let Some(max) = unit.histogram.iter().map(|&(m, _)| m.index()).max() {
            if max >= self.moments.len() {
                self.moments.resize(max + 1, ColumnMoments::default());
            }
        }
        if unit.snapshots == 0 {
            return;
        }
        let inv = 1.0 / unit.snapshots as f64;
        for &(m, count) in &unit.histogram {
            self.moments[m.index()].push(count as f64 * inv, y);
        }
    }

    /// Units folded so far.
    pub fn units(&self) -> usize {
        self.n
    }

    /// Method-universe dimensionality observed so far.
    pub fn full_dim(&self) -> usize {
        self.moments.len()
    }

    /// F-score of every method column against IPC.
    pub fn scores(&self) -> Vec<f64> {
        self.moments
            .iter()
            .map(|m| f_score_from_moments(m, self.n, self.sum_y, self.sum_yy))
            .collect()
    }

    /// Selects the top-`k` columns, consuming the accumulator.
    pub fn into_space(self, k: usize) -> FeatureSpace {
        let columns = top_k_features(&self.scores(), k);
        FeatureSpace { full_dim: self.moments.len(), columns }
    }
}

/// A fitted feature space: which method columns survived selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpace {
    /// Dimensionality of the full vectors this space was fitted on.
    pub full_dim: usize,
    /// Kept column indices (method ids), in descending score order.
    pub columns: Vec<usize>,
}

impl FeatureSpace {
    /// Fits the space on a training trace: scores every method column
    /// against per-unit IPC and keeps the top `k`.
    ///
    /// Both this batch entry point and the streaming pipeline accumulate the
    /// same [`FeatureStats`] in the same unit order, so a trace analyzed in
    /// memory and the same trace streamed from disk select identical columns
    /// and produce a bit-identical projected matrix.
    pub fn fit(trace: &ProfileTrace, k: usize) -> (Self, Matrix) {
        let mut stats = FeatureStats::new();
        for unit in &trace.units {
            stats.push(unit);
        }
        let space = stats.into_space(k);
        let projected = space.project(trace);
        (space, projected)
    }

    /// Projects a trace into this space (handles traces whose method
    /// universe differs from the training run's) by building the reduced
    /// `units × dim()` matrix directly — the full-universe matrix is never
    /// materialized (pass 2 of the two-pass pipeline).
    pub fn project(&self, trace: &ProfileTrace) -> Matrix {
        let mut m = Matrix::zeros(trace.units.len(), self.columns.len());
        for (i, unit) in trace.units.iter().enumerate() {
            self.project_unit_into(unit, m.row_mut(i));
        }
        m
    }

    /// Writes one unit's reduced feature vector into `row` (length
    /// [`dim()`](Self::dim)). Methods outside the fitted universe are
    /// dropped, mirroring [`vectorize_with_dim`].
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn project_unit_into(&self, unit: &SamplingUnit, row: &mut [f64]) {
        assert_eq!(row.len(), self.columns.len(), "row length must match selected dim");
        row.fill(0.0);
        if unit.snapshots == 0 {
            return;
        }
        let inv = 1.0 / unit.snapshots as f64;
        for &(method, count) in &unit.histogram {
            if method.index() >= self.full_dim {
                continue;
            }
            // The selected column set is small (K ≤ 100), so a linear scan
            // beats building a universe-sized lookup per call.
            if let Some(j) = self.columns.iter().position(|&c| c == method.index()) {
                row[j] = count as f64 * inv;
            }
        }
    }

    /// Number of selected features.
    pub fn dim(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;

    fn unit(id: u64, hist: Vec<(u32, u32)>, snapshots: u32, cycles: u64) -> SamplingUnit {
        SamplingUnit {
            id,
            histogram: hist.into_iter().map(|(m, c)| (MethodId(m), c)).collect(),
            snapshots,
            counters: Counters { instructions: 1000, cycles, ..Default::default() },
            slices: Vec::new(),
            truncated: false,
            dropped_snapshots: 0,
        }
    }

    fn trace(units: Vec<SamplingUnit>) -> ProfileTrace {
        ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
    }

    #[test]
    fn vectorize_normalizes_by_snapshots() {
        let t = trace(vec![unit(0, vec![(0, 5), (2, 10)], 10, 1000)]);
        let m = vectorize(&t);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[0.5, 0.0, 1.0]);
    }

    #[test]
    fn vectorize_zero_snapshot_unit_is_zero_row() {
        let t = trace(vec![unit(0, vec![], 0, 1000), unit(1, vec![(1, 1)], 1, 1000)]);
        let m = vectorize(&t);
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn vectorize_with_dim_drops_unknown_methods() {
        let t = trace(vec![unit(0, vec![(0, 1), (5, 1)], 1, 1000)]);
        let m = vectorize_with_dim(&t, 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0), &[1.0, 0.0]);
    }

    #[test]
    fn fit_selects_performance_correlated_method() {
        // Method 0 present in all units (framework-like, constant).
        // Method 1 tracks fast units, method 2 tracks slow units.
        let units = (0..12)
            .map(|i| {
                let slow = i % 2 == 0;
                let cycles =
                    if slow { 3000 + (i as u64 % 3) * 10 } else { 900 + (i as u64 % 3) * 10 };
                let hist = if slow { vec![(0, 10), (2, 9)] } else { vec![(0, 10), (1, 9)] };
                unit(i as u64, hist, 10, cycles)
            })
            .collect();
        let t = trace(units);
        let (space, projected) = FeatureSpace::fit(&t, 2);
        assert_eq!(space.dim(), 2);
        assert!(space.columns.contains(&1) && space.columns.contains(&2), "{:?}", space.columns);
        assert!(!space.columns.contains(&0), "constant method must be eliminated");
        assert_eq!(projected.cols(), 2);
        assert_eq!(projected.rows(), 12);
    }

    #[test]
    fn project_matches_fit_on_same_trace() {
        let t = trace(vec![
            unit(0, vec![(0, 10), (1, 5)], 10, 1000),
            unit(1, vec![(0, 10), (1, 1)], 10, 2500),
            unit(2, vec![(0, 10), (1, 6)], 10, 1100),
            unit(3, vec![(0, 10)], 10, 2400),
        ]);
        let (space, fitted) = FeatureSpace::fit(&t, 5);
        let projected = space.project(&t);
        assert_eq!(fitted, projected);
    }

    #[test]
    fn serde_roundtrip() {
        let s = FeatureSpace { full_dim: 10, columns: vec![3, 7] };
        let back: FeatureSpace = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
