//! Phase sampling (§III-C): stratified random sampling with optimal
//! allocation, the stratified CPI estimator, its confidence interval, and
//! the required-sample-size solver.

use serde::{Deserialize, Serialize};

use simprof_stats::{
    confidence_interval, mean, optimal_allocation, srs_indices, stddev, stratified_se, Matrix,
    SeedRng, StratumStats,
};

/// The selected simulation points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationPoints {
    /// Unit ids (= indices into the trace) of the selected points, ascending.
    pub points: Vec<u64>,
    /// Points grouped by phase (`per_phase[h]` are the points of phase `h`).
    pub per_phase: Vec<Vec<u64>>,
    /// The optimal allocation that produced them (`n_h` per phase).
    pub allocation: Vec<usize>,
}

impl SimulationPoints {
    /// Total number of simulation points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points were selected.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Share of the total points that falls in each phase (Fig. 11's
    /// "sample size ratio").
    pub fn phase_ratios(&self) -> Vec<f64> {
        let total = self.points.len().max(1) as f64;
        self.allocation.iter().map(|&n| n as f64 / total).collect()
    }
}

/// A stratified CPI estimate with its sampling-error bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The stratified estimate of mean CPI: `Σ W_h · mean(sample_h)`.
    pub mean_cpi: f64,
    /// Standard error (Eq. 4).
    pub se: f64,
    /// z-score the confidence interval was computed at.
    pub z: f64,
    /// Confidence interval (Eqs. 2–3).
    pub ci: (f64, f64),
}

/// Population statistics per phase, in the form the allocator needs.
///
/// Assignments at or beyond `k` are skipped and counted (via the
/// `core.oob_assignments` counter) rather than panicking: live re-formation
/// can shrink `k` while stale assignments still point at retired phases.
pub fn strata_of(cpis: &[f64], assignments: &[usize], k: usize) -> Vec<StratumStats> {
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut oob = 0u64;
    for (&c, &a) in cpis.iter().zip(assignments) {
        match buckets.get_mut(a) {
            Some(b) => b.push(c),
            None => oob += 1,
        }
    }
    if oob > 0 {
        simprof_obs::counter_add("core.oob_assignments", oob);
    }
    buckets.iter().map(|b| StratumStats { units: b.len(), stddev: stddev(b) }).collect()
}

/// Selects `n` simulation points by stratified random sampling: Neyman
/// optimal allocation across phases, simple random sampling within each
/// phase (§III-C).
///
/// # Examples
///
/// ```
/// use simprof_core::sampling::{estimate_stratified, select_points};
/// use simprof_stats::seeded;
///
/// // 6 units in two phases: quiet phase 0, noisy phase 1.
/// let cpis = [1.0, 1.0, 1.0, 2.0, 4.0, 6.0];
/// let assignments = [0, 0, 0, 1, 1, 1];
/// let points = select_points(&cpis, &assignments, 2, 4, &mut seeded(1));
/// assert_eq!(points.len(), 4);
/// assert!(points.allocation[1] >= points.allocation[0]);
///
/// let estimate = estimate_stratified(&cpis, &assignments, &points, 3.0);
/// assert!(estimate.ci.0 <= estimate.mean_cpi && estimate.mean_cpi <= estimate.ci.1);
/// ```
pub fn select_points(
    cpis: &[f64],
    assignments: &[usize],
    k: usize,
    n: usize,
    rng: &mut SeedRng,
) -> SimulationPoints {
    let _span = simprof_obs::span!("core.select_points");
    let strata = strata_of(cpis, assignments, k);
    let allocation = optimal_allocation(n, &strata);
    simprof_obs::counter_add("core.points_selected", allocation.iter().sum::<usize>() as u64);

    // Unit ids per phase; out-of-range assignments were already dropped
    // from the strata above, so drop them here too or the two views of the
    // population would disagree.
    let mut members: Vec<Vec<u64>> = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        if let Some(m) = members.get_mut(a) {
            m.push(i as u64);
        }
    }

    let mut per_phase: Vec<Vec<u64>> = Vec::with_capacity(k);
    let mut points = Vec::new();
    for (h, ids) in members.iter().enumerate() {
        let picks = srs_indices(ids.len(), allocation[h], rng);
        let chosen: Vec<u64> = picks.into_iter().map(|i| ids[i]).collect();
        points.extend_from_slice(&chosen);
        per_phase.push(chosen);
    }
    points.sort_unstable();
    SimulationPoints { points, per_phase, allocation }
}

/// The stratified estimator over simulated points: each phase's sample mean
/// weighted by the phase's population share, with the Eq. 4 standard error.
///
/// `s_h` uses the sample stddev when a phase has ≥ 2 points (Eq. 5), with a
/// guard unique to SimProf's setting: the native profiler already measured
/// every unit's CPI, so the population σ_h is *known*. When a small sample's
/// spread collapses to under a tenth of the profiled σ_h (easy with
/// quantized CPIs and a handful of draws), the known σ_h is used instead —
/// otherwise the confidence interval would claim near-certainty the sample
/// cannot support.
///
/// A phase that drew zero points is skipped and the remaining phase weights
/// are renormalized over the covered population — the same `None` convention
/// as `phase_interval` in `diagnostics`. The old behaviour added
/// `w · mean(&[])` for such phases, silently dragging the estimate toward
/// zero by the uncovered weight.
pub fn estimate_stratified(
    cpis: &[f64],
    assignments: &[usize],
    points: &SimulationPoints,
    z: f64,
) -> Estimate {
    let k = points.per_phase.len();
    let strata = strata_of(cpis, assignments, k);

    let mut covered_units = 0usize;
    let mut parts = Vec::with_capacity(k);
    let mut se_strata = Vec::with_capacity(k);
    let mut sizes = Vec::with_capacity(k);
    for (h, stratum) in strata.iter().enumerate() {
        let sample: Vec<f64> = points.per_phase[h].iter().map(|&id| cpis[id as usize]).collect();
        if sample.is_empty() {
            continue;
        }
        covered_units += stratum.units;
        parts.push((stratum.units, mean(&sample)));
        let sample_sd = stddev(&sample);
        let s_h = if sample.len() >= 2 && sample_sd >= 0.1 * stratum.stddev {
            sample_sd
        } else {
            stratum.stddev
        };
        se_strata.push(StratumStats { units: stratum.units, stddev: s_h });
        sizes.push(sample.len());
    }
    let denom = covered_units.max(1) as f64;
    let est: f64 = parts.iter().map(|&(units, m)| units as f64 / denom * m).sum();
    let se = stratified_se(&se_strata, &sizes);
    Estimate { mean_cpi: est, se, z, ci: confidence_interval(est, se, z) }
}

/// Smallest sample size whose optimally allocated stratified error satisfies
/// `z · SE ≤ rel_err · oracle_cpi` (the Fig. 8 solver). Uses population
/// per-phase stddevs, which the profiler knows from the full trace.
pub fn required_sample_size(
    cpis: &[f64],
    assignments: &[usize],
    k: usize,
    z: f64,
    rel_err: f64,
) -> usize {
    let strata = strata_of(cpis, assignments, k);
    let target = rel_err * mean(cpis);
    simprof_stats::required_sample_size(&strata, z, target).unwrap_or(cpis.len())
}

/// Distance-to-center per unit, used by the CODE baseline to pick the most
/// central unit of each phase.
///
/// Many units share *identical* feature vectors (same call stacks), so the
/// minimum distance is usually tied across a large set. Ties resolve to the
/// median-index unit among the tied set: picking the first would
/// systematically select each phase's earliest units, which carry cold-start
/// and ramp-top behaviour and would bias the baseline.
pub fn central_units(
    features: &Matrix,
    centers: &Matrix,
    assignments: &[usize],
) -> Vec<Option<u64>> {
    let k = centers.rows();
    const EPS: f64 = 1e-12;
    let mut min_d: Vec<f64> = vec![f64::INFINITY; k];
    for (i, &a) in assignments.iter().enumerate() {
        let d = Matrix::sq_dist(features.row(i), centers.row(a));
        if d < min_d[a] {
            min_d[a] = d;
        }
    }
    let mut tied: Vec<Vec<u64>> = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        let d = Matrix::sq_dist(features.row(i), centers.row(a));
        if d <= min_d[a] + EPS {
            tied[a].push(i as u64);
        }
    }
    tied.into_iter()
        .map(|ids| if ids.is_empty() { None } else { Some(ids[ids.len() / 2]) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_stats::seeded;

    /// 60 units: phase 0 (40 units) CPI ~1 stable, phase 1 (20 units) CPI
    /// ~4 with large spread.
    fn fixture() -> (Vec<f64>, Vec<usize>) {
        let mut cpis = Vec::new();
        let mut asg = Vec::new();
        for i in 0..40 {
            cpis.push(1.0 + (i % 4) as f64 * 0.01);
            asg.push(0);
        }
        for i in 0..20 {
            cpis.push(3.0 + (i % 5) as f64);
            asg.push(1);
        }
        (cpis, asg)
    }

    #[test]
    fn allocation_favors_noisy_phase() {
        let (cpis, asg) = fixture();
        let pts = select_points(&cpis, &asg, 2, 12, &mut seeded(1));
        assert_eq!(pts.len(), 12);
        assert!(pts.allocation[1] > pts.allocation[0], "{:?}", pts.allocation);
        let ratios = pts.phase_ratios();
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn points_belong_to_their_phase() {
        let (cpis, asg) = fixture();
        let pts = select_points(&cpis, &asg, 2, 10, &mut seeded(2));
        for (h, ids) in pts.per_phase.iter().enumerate() {
            for &id in ids {
                assert_eq!(asg[id as usize], h);
            }
        }
        let mut all: Vec<u64> = pts.per_phase.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, pts.points);
    }

    #[test]
    fn estimate_close_to_oracle() {
        let (cpis, asg) = fixture();
        let oracle = mean(&cpis);
        let pts = select_points(&cpis, &asg, 2, 20, &mut seeded(3));
        let est = estimate_stratified(&cpis, &asg, &pts, 3.0);
        assert!((est.mean_cpi - oracle).abs() / oracle < 0.25, "{} vs {}", est.mean_cpi, oracle);
        assert!(est.ci.0 <= est.mean_cpi && est.mean_cpi <= est.ci.1);
        assert!(est.se >= 0.0);
    }

    #[test]
    fn zero_spread_sample_does_not_collapse_the_ci() {
        // Phase CPIs are quantized: a small sample can be all-identical even
        // though the phase varies. The SE must fall back to the population
        // stddev instead of reporting a zero-width interval.
        let cpis: Vec<f64> = (0..30).map(|i| if i % 3 == 0 { 2.0 } else { 1.0 }).collect();
        let asg = vec![0usize; 30];
        // Hand-build a selection whose two points are both 1.0.
        let pts = SimulationPoints {
            points: vec![1, 2],
            per_phase: vec![vec![1, 2]],
            allocation: vec![2],
        };
        let est = estimate_stratified(&cpis, &asg, &pts, 3.0);
        // Population stddev of the phase is ~0.47; the guard must restore a
        // spread of that order, not the sample's 0.
        assert!(est.se > 0.05, "CI must not collapse: {}", est.se);
    }

    #[test]
    fn empty_stratum_does_not_bias_the_estimate() {
        // Both phases sit at CPI 2.0 exactly, but only phase 0 drew points.
        // The old estimator added `w₁ · mean(&[]) = w₁ · 0.0`, dragging the
        // estimate down to 1.5; skipping the empty stratum with weight
        // renormalization keeps it at 2.0.
        let cpis = vec![2.0; 40];
        let mut asg = vec![0usize; 30];
        asg.extend(std::iter::repeat_n(1, 10));
        let pts = SimulationPoints {
            points: vec![0, 1, 2],
            per_phase: vec![vec![0, 1, 2], vec![]],
            allocation: vec![3, 0],
        };
        let est = estimate_stratified(&cpis, &asg, &pts, 3.0);
        assert!((est.mean_cpi - 2.0).abs() < 1e-12, "biased estimate: {}", est.mean_cpi);
        assert!(est.se.is_finite());
    }

    #[test]
    fn out_of_range_assignment_does_not_panic() {
        // A stale assignment beyond k (routine once live re-formation can
        // shrink the model) is dropped from both strata stats and the
        // member lists instead of panicking.
        let cpis = [1.0, 2.0, 3.0, 4.0];
        let asg = [0usize, 1, 9, 1];
        let strata = strata_of(&cpis, &asg, 2);
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0].units, 1);
        assert_eq!(strata[1].units, 2);
        let pts = select_points(&cpis, &asg, 2, 3, &mut seeded(1));
        for &p in &pts.points {
            assert_ne!(p, 2, "the out-of-range unit must not be selectable");
        }
        let est = estimate_stratified(&cpis, &asg, &pts, 3.0);
        assert!(est.mean_cpi.is_finite());
    }

    #[test]
    fn full_enumeration_is_exact() {
        let (cpis, asg) = fixture();
        let pts = select_points(&cpis, &asg, 2, cpis.len(), &mut seeded(4));
        assert_eq!(pts.len(), cpis.len());
        let est = estimate_stratified(&cpis, &asg, &pts, 3.0);
        assert!((est.mean_cpi - mean(&cpis)).abs() < 1e-12);
        assert_eq!(est.se, 0.0);
    }

    #[test]
    fn required_size_monotone_in_error() {
        let (cpis, asg) = fixture();
        let n5 = required_sample_size(&cpis, &asg, 2, 3.0, 0.05);
        let n2 = required_sample_size(&cpis, &asg, 2, 3.0, 0.02);
        assert!(n2 >= n5, "{n2} >= {n5}");
        assert!(n5 >= 2);
    }

    #[test]
    fn stratification_beats_srs_error_on_average() {
        // Empirical check of the paper's core claim: with the same budget,
        // stratified sampling estimates CPI more accurately than SRS.
        let (cpis, asg) = fixture();
        let oracle = mean(&cpis);
        let n = 10;
        let reps = 200;
        let mut strat_err = 0.0;
        let mut srs_err = 0.0;
        for seed in 0..reps {
            let pts = select_points(&cpis, &asg, 2, n, &mut seeded(seed));
            strat_err +=
                (estimate_stratified(&cpis, &asg, &pts, 3.0).mean_cpi - oracle).abs() / oracle;
            let ids = simprof_stats::srs_indices(cpis.len(), n, &mut seeded(seed + 10_000));
            let m = mean(&ids.iter().map(|&i| cpis[i]).collect::<Vec<_>>());
            srs_err += (m - oracle).abs() / oracle;
        }
        assert!(
            strat_err < srs_err,
            "stratified {} should beat SRS {}",
            strat_err / reps as f64,
            srs_err / reps as f64
        );
    }

    #[test]
    fn central_units_pick_closest() {
        let features = Matrix::from_rows(&[vec![0.0], vec![0.4], vec![1.0], vec![5.0], vec![5.5]]);
        let centers = Matrix::from_rows(&[vec![0.3], vec![5.25]]);
        let asg = vec![0, 0, 0, 1, 1];
        let picks = central_units(&features, &centers, &asg);
        // Phase 1's two units are equidistant from 5.25; the median-index
        // tie-break picks the later of the two.
        assert_eq!(picks, vec![Some(1), Some(4)]);
    }

    #[test]
    fn central_units_break_ties_at_median_index() {
        // Five identical vectors: the pick must be the middle one, not the
        // first (which would bias toward each phase's earliest units).
        let features = Matrix::from_rows(&vec![vec![1.0]; 5]);
        let centers = Matrix::from_rows(&[vec![1.0]]);
        let picks = central_units(&features, &centers, &[0, 0, 0, 0, 0]);
        assert_eq!(picks, vec![Some(2)]);
    }

    #[test]
    fn central_units_empty_phase_is_none() {
        let features = Matrix::from_rows(&[vec![0.0]]);
        let centers = Matrix::from_rows(&[vec![0.0], vec![9.0]]);
        let picks = central_units(&features, &centers, &[0]);
        assert_eq!(picks, vec![Some(0), None]);
    }
}
