//! SimProf × systematic sampling — the paper's stated future work (§III-C):
//!
//! > "Since SimProf uses the large size of sampling units, the simulation
//! > time can still be significant, users can combine other sampling
//! > approaches, e.g., systematic sampling [SMARTS] to reduce the simulation
//! > time of each simulation point."
//!
//! The profiler records per-snapshot-interval counter slices inside every
//! sampling unit (10 per unit at the paper's ratio). The hybrid estimator
//! simulates only every `stride`-th slice of each *selected* simulation
//! point — SMARTS-style systematic sampling nested inside SimProf's
//! stratified selection — cutting the detailed-simulation budget by ~stride×
//! on top of the stratified reduction, at a small accuracy cost measured by
//! the `hybrid` extension experiment.

use serde::{Deserialize, Serialize};

use simprof_profiler::ProfileTrace;
use simprof_stats::{confidence_interval, mean, stddev, stratified_se, StratumStats};

use crate::sampling::{strata_of, SimulationPoints};

/// Result of a hybrid (stratified × systematic) estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridEstimate {
    /// Stratified CPI estimate built from sliced per-point CPIs.
    pub mean_cpi: f64,
    /// Eq. 4 standard error of the stratified layer (the systematic layer's
    /// within-unit error is folded into the per-phase sample stddevs).
    pub se: f64,
    /// z-score of the confidence interval.
    pub z: f64,
    /// Confidence interval.
    pub ci: (f64, f64),
    /// Instructions that must be simulated in detail under this scheme.
    pub simulated_instrs: u64,
    /// Instructions the same points would cost without sub-unit sampling.
    pub full_instrs: u64,
}

impl HybridEstimate {
    /// Detailed-simulation reduction from the systematic layer
    /// (`1 − simulated/full`).
    pub fn slice_reduction(&self) -> f64 {
        if self.full_instrs == 0 {
            0.0
        } else {
            1.0 - self.simulated_instrs as f64 / self.full_instrs as f64
        }
    }
}

/// Estimates CPI from `points`, simulating only every `stride`-th
/// intra-unit slice of each point (offset deterministically varied per
/// point so slice positions do not align across points).
///
/// `stride = 1` degenerates to the plain stratified estimator over full
/// units. Units profiled without slices fall back to their full CPI.
pub fn estimate_hybrid(
    trace: &ProfileTrace,
    assignments: &[usize],
    points: &SimulationPoints,
    stride: usize,
    z: f64,
) -> HybridEstimate {
    let cpis: Vec<f64> = trace.units.iter().map(|u| u.cpi()).collect();
    let k = points.per_phase.len();
    let strata = strata_of(&cpis, assignments, k);
    let total_units: usize = strata.iter().map(|s| s.units).sum();

    let mut est = 0.0;
    let mut se_strata = Vec::with_capacity(k);
    let mut sizes = Vec::with_capacity(k);
    let mut simulated = 0u64;
    let mut full = 0u64;
    for (h, stratum) in strata.iter().enumerate() {
        let sample: Vec<f64> = points.per_phase[h]
            .iter()
            .map(|&id| {
                let unit = &trace.units[id as usize];
                simulated += unit.sliced_instrs(stride, id as usize);
                full += unit.counters.instructions;
                unit.sliced_cpi(stride, id as usize)
            })
            .collect();
        let w = stratum.units as f64 / total_units.max(1) as f64;
        est += w * mean(&sample);
        let s_h = if sample.len() >= 2 { stddev(&sample) } else { stratum.stddev };
        se_strata.push(StratumStats { units: stratum.units, stddev: s_h });
        sizes.push(sample.len());
    }
    let se = stratified_se(&se_strata, &sizes);
    HybridEstimate {
        mean_cpi: est,
        se,
        z,
        ci: confidence_interval(est, se, z),
        simulated_instrs: simulated,
        full_instrs: full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::select_points;
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;
    use simprof_stats::seeded;

    /// 40 units, two phases; every unit carries 10 slices whose CPIs wobble
    /// around the unit CPI.
    fn trace() -> (ProfileTrace, Vec<usize>) {
        let mut units = Vec::new();
        let mut assignments = Vec::new();
        for i in 0..40u64 {
            let first = i < 24;
            let base_cycles = if first { 1000 } else { 3000 + (i % 5) * 100 };
            let slices: Vec<(u64, u64)> = (0..10u64)
                .map(|j| {
                    // Slice CPIs alternate ±20 % around the unit mean.
                    let wobble = if j % 2 == 0 { 120 } else { 80 };
                    (100, base_cycles * wobble / 1000)
                })
                .collect();
            let cycles: u64 = slices.iter().map(|&(_, c)| c).sum();
            units.push(SamplingUnit {
                id: i,
                histogram: vec![(MethodId(if first { 1 } else { 2 }), 10)],
                snapshots: 10,
                counters: Counters { instructions: 1000, cycles, ..Default::default() },
                slices,
                truncated: false,
                dropped_snapshots: 0,
            });
            assignments.push(usize::from(!first));
        }
        (ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }, assignments)
    }

    #[test]
    fn stride_one_matches_plain_stratified() {
        let (t, asg) = trace();
        let cpis = t.cpis();
        let pts = select_points(&cpis, &asg, 2, 12, &mut seeded(3));
        let plain = crate::sampling::estimate_stratified(&cpis, &asg, &pts, 3.0);
        let hybrid = estimate_hybrid(&t, &asg, &pts, 1, 3.0);
        assert!((hybrid.mean_cpi - plain.mean_cpi).abs() < 1e-12);
        assert_eq!(hybrid.simulated_instrs, hybrid.full_instrs);
        assert_eq!(hybrid.slice_reduction(), 0.0);
    }

    #[test]
    fn larger_strides_cut_simulated_instructions() {
        let (t, asg) = trace();
        let cpis = t.cpis();
        let pts = select_points(&cpis, &asg, 2, 12, &mut seeded(3));
        let h2 = estimate_hybrid(&t, &asg, &pts, 2, 3.0);
        let h5 = estimate_hybrid(&t, &asg, &pts, 5, 3.0);
        assert!((h2.slice_reduction() - 0.5).abs() < 0.05, "{}", h2.slice_reduction());
        assert!((h5.slice_reduction() - 0.8).abs() < 0.05, "{}", h5.slice_reduction());
        // The estimate stays near the oracle despite the wobble.
        let oracle = t.oracle_cpi();
        assert!((h5.mean_cpi - oracle).abs() / oracle < 0.25, "{} vs {oracle}", h5.mean_cpi);
    }

    #[test]
    fn ci_still_brackets_estimate() {
        let (t, asg) = trace();
        let cpis = t.cpis();
        let pts = select_points(&cpis, &asg, 2, 10, &mut seeded(9));
        let h = estimate_hybrid(&t, &asg, &pts, 2, 3.0);
        assert!(h.ci.0 <= h.mean_cpi && h.mean_cpi <= h.ci.1);
        assert!(h.se >= 0.0);
    }

    #[test]
    fn sliceless_units_fall_back_to_full_cpi() {
        let (mut t, asg) = trace();
        for u in &mut t.units {
            u.slices.clear();
        }
        let cpis = t.cpis();
        let pts = select_points(&cpis, &asg, 2, 8, &mut seeded(1));
        let plain = crate::sampling::estimate_stratified(&cpis, &asg, &pts, 3.0);
        let h = estimate_hybrid(&t, &asg, &pts, 5, 3.0);
        assert!((h.mean_cpi - plain.mean_cpi).abs() < 1e-12);
        assert_eq!(h.slice_reduction(), 0.0, "no slices → no reduction to claim");
    }
}
