//! Simulation-manifest export: what a detailed microarchitectural simulator
//! actually consumes.
//!
//! The paper's workflow ends with "users simulate the simulation points and
//! estimate the sampling error" (§III-C) — the selected unit ids must reach
//! a simulator together with everything needed to (a) position each point in
//! the instruction stream, (b) warm up before measuring, and (c) re-aggregate
//! per-point results into a job-level estimate. [`SimulationManifest`]
//! packages exactly that, per point: the instruction interval on the
//! profiled thread, a warm-up prefix, the owning phase and its weight, and
//! the phase's characteristic method (so an architect knows what each point
//! *is*, the paper's method-level interpretability claim).

use serde::{Deserialize, Serialize};

use simprof_profiler::ProfileTrace;

use crate::phases::PhaseModel;
use crate::pipeline::Analysis;
use crate::sampling::SimulationPoints;

/// One simulation point, ready for a detailed simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestPoint {
    /// Sampling-unit id (the paper's simulation-point name).
    pub unit: u64,
    /// First instruction of the measured interval on the profiled thread.
    pub start_instr: u64,
    /// One past the last instruction of the measured interval.
    pub end_instr: u64,
    /// Suggested functional warm-up prefix (instructions before
    /// `start_instr` to execute without measuring; one unit by default, the
    /// paper's cold-start guard).
    pub warmup_instrs: u64,
    /// Phase the point samples.
    pub phase: usize,
    /// The phase's population weight `N_h / N` (for re-aggregation).
    pub phase_weight: f64,
    /// Number of points sampled from this phase (`n_h`; the per-point
    /// aggregation weight is `phase_weight / points_in_phase`).
    pub points_in_phase: usize,
    /// The phase's most characteristic method id, if any — the architect's
    /// handle on what this point executes.
    pub dominant_method: Option<u32>,
    /// The profiled CPI of the unit (for validating the simulator against
    /// the profile, §I's "validation is done against a real machine").
    pub profiled_cpi: f64,
}

/// A complete export of one selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationManifest {
    /// Sampling-unit size in instructions.
    pub unit_instrs: u64,
    /// Total units in the profiled job (for context/weighting).
    pub total_units: usize,
    /// The points, ordered by unit id.
    pub points: Vec<ManifestPoint>,
}

/// Why a manifest cannot be built from a selection.
///
/// A selection made on one analysis can be replayed against a different
/// trace (stale points file, re-profiled workload); these used to panic on
/// out-of-bounds indexing instead of reporting the mismatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportError {
    /// A selected unit id lies beyond the trace/analysis.
    PointOutOfRange {
        /// The offending unit id.
        unit: u64,
        /// Number of units the analysis actually covers.
        units: usize,
    },
    /// The selection references more phases than the analysis has.
    PhaseOutOfRange {
        /// The offending phase index.
        phase: usize,
        /// Number of phases in the analysis.
        phases: usize,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PointOutOfRange { unit, units } => write!(
                f,
                "simulation point {unit} is outside the analyzed trace ({units} units) — \
                 was the selection made on a different trace?"
            ),
            Self::PhaseOutOfRange { phase, phases } => {
                write!(f, "selection references phase {phase} but the analysis has only {phases}")
            }
        }
    }
}

impl std::error::Error for ExportError {}

impl SimulationManifest {
    /// Builds the manifest from an analysis and a selection made on it.
    ///
    /// # Errors
    ///
    /// Returns [`ExportError`] when the selection does not fit the analysis
    /// (a unit id or phase index out of range — typically a selection replayed
    /// against the wrong trace).
    pub fn build(
        analysis: &Analysis,
        trace: &ProfileTrace,
        points: &SimulationPoints,
    ) -> Result<SimulationManifest, ExportError> {
        let model: &PhaseModel = &analysis.model;
        let unit_instrs = trace.unit_instrs;
        let mut out = Vec::with_capacity(points.points.len());
        for (phase, ids) in points.per_phase.iter().enumerate() {
            if phase >= analysis.k() {
                return Err(ExportError::PhaseOutOfRange { phase, phases: analysis.k() });
            }
            let dominant = model.top_methods(phase, 1).first().map(|&(m, _)| m as u32);
            for &unit in ids {
                if unit as usize >= analysis.cpis.len() {
                    return Err(ExportError::PointOutOfRange { unit, units: analysis.cpis.len() });
                }
                out.push(ManifestPoint {
                    unit,
                    start_instr: unit * unit_instrs,
                    end_instr: (unit + 1) * unit_instrs,
                    warmup_instrs: unit_instrs.min(unit * unit_instrs),
                    phase,
                    phase_weight: analysis.weights[phase],
                    points_in_phase: ids.len(),
                    dominant_method: dominant,
                    profiled_cpi: analysis.cpis[unit as usize],
                });
            }
        }
        out.sort_by_key(|p| p.unit);
        Ok(SimulationManifest { unit_instrs, total_units: trace.units.len(), points: out })
    }

    /// Re-aggregates per-point simulated CPIs into the job-level stratified
    /// estimate — the inverse of the export, run after simulation. `results`
    /// maps unit id → simulated CPI and must cover every manifest point.
    ///
    /// # Errors
    ///
    /// Returns the first unit id missing from `results`.
    pub fn aggregate(&self, results: &std::collections::HashMap<u64, f64>) -> Result<f64, u64> {
        let mut estimate = 0.0;
        for p in &self.points {
            let cpi = results.get(&p.unit).copied().ok_or(p.unit)?;
            estimate += p.phase_weight * cpi / p.points_in_phase as f64;
        }
        Ok(estimate)
    }

    /// Total instructions of detailed simulation the manifest demands
    /// (measurement only, excluding warm-up).
    pub fn simulated_instrs(&self) -> u64 {
        self.points.len() as u64 * self.unit_instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{SimProf, SimProfConfig};
    use simprof_engine::MethodId;
    use simprof_profiler::SamplingUnit;
    use simprof_sim::Counters;
    use std::collections::HashMap;

    fn trace() -> ProfileTrace {
        let units = (0..30u64)
            .map(|i| {
                let first = i < 20;
                let (m, cycles) =
                    if first { (1, 1000 + (i % 4) * 20) } else { (2, 3000 + (i % 4) * 30) };
                SamplingUnit {
                    id: i,
                    histogram: vec![(MethodId(0), 10), (MethodId(m), 9)],
                    snapshots: 10,
                    counters: Counters { instructions: 1000, cycles, ..Default::default() },
                    slices: Vec::new(),
                    truncated: false,
                    dropped_snapshots: 0,
                }
            })
            .collect();
        ProfileTrace { unit_instrs: 1000, snapshot_instrs: 100, core: 0, units }
    }

    fn setup() -> (ProfileTrace, Analysis, SimulationPoints) {
        let t = trace();
        let a = SimProf::new(SimProfConfig { seed: 3, ..Default::default() }).analyze(&t).unwrap();
        let pts = a.select_points(8, 5);
        (t, a, pts)
    }

    #[test]
    fn manifest_positions_points_in_instruction_stream() {
        let (t, a, pts) = setup();
        let m = SimulationManifest::build(&a, &t, &pts).unwrap();
        assert_eq!(m.points.len(), pts.len());
        assert_eq!(m.simulated_instrs(), 8 * 1000);
        for p in &m.points {
            assert_eq!(p.start_instr, p.unit * 1000);
            assert_eq!(p.end_instr - p.start_instr, 1000);
            assert!(p.warmup_instrs <= p.start_instr, "warm-up fits before the interval");
            assert!(p.phase < a.k());
            assert!(p.points_in_phase >= 1);
            assert!(p.dominant_method.is_some());
        }
        // Ordered by unit id.
        assert!(m.points.windows(2).all(|w| w[0].unit < w[1].unit));
        // Unit 0 cannot have warm-up before instruction 0.
        if let Some(p0) = m.points.iter().find(|p| p.unit == 0) {
            assert_eq!(p0.warmup_instrs, 0);
        }
    }

    #[test]
    fn aggregate_reproduces_stratified_estimate() {
        let (t, a, pts) = setup();
        let m = SimulationManifest::build(&a, &t, &pts).unwrap();
        // A perfect simulator returns exactly the profiled CPIs.
        let results: HashMap<u64, f64> =
            m.points.iter().map(|p| (p.unit, p.profiled_cpi)).collect();
        let est = m.aggregate(&results).unwrap();
        let reference = a.estimate(&pts, 3.0).mean_cpi;
        assert!((est - reference).abs() < 1e-12, "{est} vs {reference}");
    }

    #[test]
    fn aggregate_reports_missing_points() {
        let (t, a, pts) = setup();
        let m = SimulationManifest::build(&a, &t, &pts).unwrap();
        let missing = m.aggregate(&HashMap::new()).unwrap_err();
        assert_eq!(missing, m.points[0].unit);
    }

    #[test]
    fn serde_roundtrip() {
        let (t, a, pts) = setup();
        let m = SimulationManifest::build(&a, &t, &pts).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: SimulationManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn mismatched_selection_is_rejected_typed() {
        let (t, a, mut pts) = setup();
        // A selection replayed against a shorter trace used to panic on
        // indexing; now it reports which point fell outside.
        pts.points.push(999);
        pts.per_phase[0].push(999);
        let err = SimulationManifest::build(&a, &t, &pts).unwrap_err();
        assert_eq!(err, ExportError::PointOutOfRange { unit: 999, units: 30 });
        assert!(err.to_string().contains("999"));
    }
}
