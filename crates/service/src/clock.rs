//! Injectable monotonic clocks for the service layer.
//!
//! The [`JobRunner`](crate::JobRunner) stamps every job lifecycle
//! transition (queued → started → finished/failed) through a [`Clock`]
//! instead of touching `Instant` directly, so tests and the CI smoke can
//! script time: with a [`ScriptedClock`] every duration in the
//! [`FleetReport`](simprof_obs::FleetReport) is a pure function of the
//! script, independent of worker count and thread interleaving — which
//! is what makes the report byte-deterministic at 1-vs-K concurrency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock. Implementations must be
/// thread-safe — workers read it concurrently — and non-decreasing.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch.
    fn now_us(&self) -> u64;
}

/// The real monotonic clock, anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A clock that replays a pre-programmed script of readings, in call
/// order; once the script is exhausted the last reading repeats (an
/// empty script always reads 0).
///
/// Concurrent callers race for script positions, so a multi-reading
/// script is only deterministic single-threaded. For concurrent runs use
/// [`ScriptedClock::fixed`]: every reading is the same value, every
/// duration is zero, and nothing depends on which thread read first.
#[derive(Debug)]
pub struct ScriptedClock {
    readings: Vec<u64>,
    next: AtomicUsize,
}

impl ScriptedClock {
    /// A clock replaying `readings` (clamped to be non-decreasing).
    pub fn from_script(readings: Vec<u64>) -> Self {
        let mut clamped = readings;
        let mut floor = 0u64;
        for r in &mut clamped {
            floor = floor.max(*r);
            *r = floor;
        }
        Self { readings: clamped, next: AtomicUsize::new(0) }
    }

    /// A clock stuck at `us`: the interleaving-proof script.
    pub fn fixed(us: u64) -> Self {
        Self::from_script(vec![us])
    }
}

impl Clock for ScriptedClock {
    fn now_us(&self) -> u64 {
        if self.readings.is_empty() {
            return 0;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed).min(self.readings.len() - 1);
        self.readings[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn scripted_clock_replays_then_repeats_the_last_reading() {
        let clock = ScriptedClock::from_script(vec![10, 25, 40]);
        assert_eq!(clock.now_us(), 10);
        assert_eq!(clock.now_us(), 25);
        assert_eq!(clock.now_us(), 40);
        assert_eq!(clock.now_us(), 40, "exhausted script repeats its tail");
    }

    #[test]
    fn scripted_clock_clamps_non_monotonic_scripts() {
        let clock = ScriptedClock::from_script(vec![50, 20, 60]);
        assert_eq!(clock.now_us(), 50);
        assert_eq!(clock.now_us(), 50, "backwards reading clamped up");
        assert_eq!(clock.now_us(), 60);
    }

    #[test]
    fn fixed_and_empty_scripts_are_constant() {
        let fixed = ScriptedClock::fixed(7);
        assert_eq!(fixed.now_us(), 7);
        assert_eq!(fixed.now_us(), 7);
        let empty = ScriptedClock::from_script(Vec::new());
        assert_eq!(empty.now_us(), 0);
    }
}
