//! The sharded on-disk trace store: one `.sptrc` shard per job plus a
//! deterministic JSON index, with per-tenant byte accounting.
//!
//! ```text
//! <root>/
//!   index.json            # StoreIndex: every admitted shard, sorted by job id
//!   shards/
//!     <job-id>.sptrc      # one sealed trace per job (v2 raw or v3 compressed)
//! ```
//!
//! Admission — not writing — is the accounting boundary: a job writes its
//! shard freely, then [`TraceStore::admit`] checks the tenant's byte cap
//! under the store lock and either records the shard or rejects it (the
//! runner deletes rejected shards). The index is rewritten from the
//! in-memory record set on [`TraceStore::write_index`], sorted by job id,
//! so the same jobs produce the same index bytes regardless of completion
//! order.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use simprof_trace::TraceReader;

/// The index file name inside a store root.
pub const INDEX_FILE: &str = "index.json";

/// The shards directory name inside a store root.
const SHARDS_DIR: &str = "shards";

/// Index schema version.
const INDEX_VERSION: u32 = 1;

/// One admitted shard, as recorded in the index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// Job id (also the shard's file stem).
    pub job: String,
    /// Tenant the shard's bytes are accounted to.
    pub tenant: String,
    /// Shard path relative to the store root (`shards/<job>.sptrc`).
    pub file: String,
    /// Sealed shard size in bytes.
    pub bytes: u64,
    /// Sampling units in the shard (from its footer).
    pub units: u64,
    /// Trace layout version (2 = raw, 3 = per-frame codec).
    pub layout_version: u32,
    /// Codec the shard was written under (`raw` / `lz`).
    pub codec: String,
}

/// The on-disk index: every shard the store has admitted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreIndex {
    /// Index schema version.
    pub version: u32,
    /// Admitted shards, sorted by job id.
    pub shards: Vec<ShardRecord>,
}

/// What [`TraceStore::validate`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreCheck {
    /// Shards listed in the index.
    pub shards: usize,
    /// Total bytes across all indexed shards.
    pub total_bytes: u64,
    /// Bytes per tenant.
    pub tenant_bytes: BTreeMap<String, u64>,
    /// Everything inconsistent between the index and the files on disk.
    pub problems: Vec<String>,
}

impl StoreCheck {
    /// True when index and disk agree completely.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// A sharded trace store rooted at one directory.
#[derive(Debug)]
pub struct TraceStore {
    root: PathBuf,
    /// Byte cap applied to tenants without an explicit entry in `caps`.
    default_cap: Option<u64>,
    caps: BTreeMap<String, u64>,
    records: Mutex<Vec<ShardRecord>>,
}

impl TraceStore {
    /// Creates (or reuses) the store layout under `root`. An existing
    /// `index.json` is loaded so re-serving into the same root keeps
    /// prior shards' accounting.
    pub fn create(root: &str) -> Result<Self, String> {
        let root_path = PathBuf::from(root);
        std::fs::create_dir_all(root_path.join(SHARDS_DIR))
            .map_err(|e| format!("create store {root}: {e}"))?;
        let records = match Self::load_index_at(&root_path) {
            Ok(index) => index.shards,
            Err(_) => Vec::new(),
        };
        Ok(Self {
            root: root_path,
            default_cap: None,
            caps: BTreeMap::new(),
            records: Mutex::new(records),
        })
    }

    /// Sets the byte cap applied to every tenant without an explicit cap.
    pub fn with_default_tenant_cap(mut self, bytes: u64) -> Self {
        self.default_cap = Some(bytes);
        self
    }

    /// Sets one tenant's byte cap.
    pub fn with_tenant_cap(mut self, tenant: &str, bytes: u64) -> Self {
        self.caps.insert(tenant.to_owned(), bytes);
        self
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The absolute path of `job`'s shard file.
    pub fn shard_path(&self, job: &str) -> PathBuf {
        self.root.join(SHARDS_DIR).join(format!("{job}.sptrc"))
    }

    /// `job`'s shard path relative to the store root (what the index
    /// records).
    pub fn shard_rel(&self, job: &str) -> String {
        format!("{SHARDS_DIR}/{job}.sptrc")
    }

    /// The cap for `tenant`, explicit or default.
    pub fn cap_for(&self, tenant: &str) -> Option<u64> {
        self.caps.get(tenant).copied().or(self.default_cap)
    }

    /// Bytes currently admitted for `tenant`.
    pub fn tenant_bytes(&self, tenant: &str) -> u64 {
        let records = self.records.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        records.iter().filter(|r| r.tenant == tenant).map(|r| r.bytes).sum()
    }

    /// Bytes currently admitted per tenant, for every tenant with at
    /// least one shard (each value equals
    /// [`tenant_bytes`](TraceStore::tenant_bytes) for that tenant).
    pub fn tenant_bytes_map(&self) -> BTreeMap<String, u64> {
        let records = self.records.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut map = BTreeMap::new();
        for r in records.iter() {
            *map.entry(r.tenant.clone()).or_insert(0) += r.bytes;
        }
        map
    }

    /// Admits a sealed shard into the index, enforcing the tenant's byte
    /// cap atomically under the store lock. On rejection nothing is
    /// recorded — the caller owns deleting the shard file.
    pub fn admit(&self, record: ShardRecord) -> Result<(), String> {
        let mut records = self.records.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if records.iter().any(|r| r.job == record.job) {
            return Err(format!("store already holds a shard for job `{}`", record.job));
        }
        if let Some(cap) = self.cap_for(&record.tenant) {
            let used: u64 =
                records.iter().filter(|r| r.tenant == record.tenant).map(|r| r.bytes).sum();
            if used + record.bytes > cap {
                return Err(format!(
                    "tenant `{}` byte cap exceeded: {used} admitted + {} new > {cap}",
                    record.tenant, record.bytes
                ));
            }
        }
        records.push(record);
        Ok(())
    }

    /// Writes `index.json` from the admitted records, sorted by job id so
    /// the bytes are independent of job completion order. Returns the
    /// index path.
    pub fn write_index(&self) -> Result<String, String> {
        let mut shards =
            self.records.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        shards.sort_by(|a, b| a.job.cmp(&b.job));
        let index = StoreIndex { version: INDEX_VERSION, shards };
        let path = self.root.join(INDEX_FILE);
        let text =
            serde_json::to_string_pretty(&index).map_err(|e| format!("encode store index: {e}"))?;
        std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(path.to_string_lossy().into_owned())
    }

    /// Loads the index of the store at `root`.
    pub fn load_index(root: &str) -> Result<StoreIndex, String> {
        Self::load_index_at(Path::new(root))
    }

    fn load_index_at(root: &Path) -> Result<StoreIndex, String> {
        let path = root.join(INDEX_FILE);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let index: StoreIndex =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        if index.version > INDEX_VERSION {
            return Err(format!(
                "{}: index version {} is newer than this build reads ({INDEX_VERSION})",
                path.display(),
                index.version
            ));
        }
        Ok(index)
    }

    /// Cross-checks the index of the store at `root` against the files on
    /// disk: every indexed shard must exist with the recorded byte size,
    /// open cleanly, and carry a footer matching the recorded unit count
    /// and layout; every `.sptrc` under `shards/` must be indexed.
    pub fn validate(root: &str) -> Result<StoreCheck, String> {
        let index = Self::load_index(root)?;
        let root_path = Path::new(root);
        let mut problems = Vec::new();
        let mut tenant_bytes: BTreeMap<String, u64> = BTreeMap::new();
        let mut total = 0u64;

        for rec in &index.shards {
            let expected_rel = format!("{SHARDS_DIR}/{}.sptrc", rec.job);
            if rec.file != expected_rel {
                problems.push(format!(
                    "job `{}`: index file `{}` is not the canonical `{expected_rel}`",
                    rec.job, rec.file
                ));
            }
            let path = root_path.join(&rec.file);
            let disk_bytes = match std::fs::metadata(&path) {
                Ok(m) => m.len(),
                Err(e) => {
                    problems.push(format!("job `{}`: shard missing ({e})", rec.job));
                    continue;
                }
            };
            if disk_bytes != rec.bytes {
                problems.push(format!(
                    "job `{}`: shard is {disk_bytes} bytes on disk, index says {}",
                    rec.job, rec.bytes
                ));
            }
            let path_str = path.to_string_lossy().into_owned();
            match TraceReader::open(&path_str) {
                Ok(mut reader) => {
                    if reader.layout_version() != rec.layout_version {
                        problems.push(format!(
                            "job `{}`: shard layout v{}, index says v{}",
                            rec.job,
                            reader.layout_version(),
                            rec.layout_version
                        ));
                    }
                    match reader.footer() {
                        Ok(footer) => {
                            if footer.unit_count != rec.units {
                                problems.push(format!(
                                    "job `{}`: footer has {} units, index says {}",
                                    rec.job, footer.unit_count, rec.units
                                ));
                            }
                        }
                        Err(e) => {
                            problems.push(format!("job `{}`: unreadable footer: {e}", rec.job))
                        }
                    }
                }
                Err(e) => problems.push(format!("job `{}`: unreadable shard: {e}", rec.job)),
            }
            *tenant_bytes.entry(rec.tenant.clone()).or_insert(0) += rec.bytes;
            total += rec.bytes;
        }

        // Stray shards: on disk but not accounted to any tenant.
        let shards_dir = root_path.join(SHARDS_DIR);
        if let Ok(entries) = std::fs::read_dir(&shards_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(stem) = name.strip_suffix(".sptrc") else { continue };
                if !index.shards.iter().any(|r| r.job == stem) {
                    problems.push(format!("stray shard `{name}` is not in the index"));
                }
            }
        }

        Ok(StoreCheck { shards: index.shards.len(), total_bytes: total, tenant_bytes, problems })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_trace::{TraceMeta, TraceWriter};

    fn tmp_root(name: &str) -> String {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_owned()
    }

    fn write_shard(store: &TraceStore, job: &str) -> (u64, u64) {
        let meta = TraceMeta {
            label: "wc_sp".into(),
            seed: 1,
            scale: "tiny".into(),
            unit_instrs: 100,
            snapshot_instrs: 10,
            core: 0,
        };
        let path = store.shard_path(job);
        let mut w = TraceWriter::create(path.to_str().unwrap(), &meta).unwrap();
        w.finish(&simprof_engine::MethodRegistry::new()).unwrap();
        (std::fs::metadata(&path).unwrap().len(), 0)
    }

    #[test]
    fn admit_index_validate_roundtrip() {
        let root = tmp_root("simprof_store_roundtrip");
        let store = TraceStore::create(&root).unwrap();
        let (bytes_a, units_a) = write_shard(&store, "a");
        let (bytes_b, units_b) = write_shard(&store, "b");
        store
            .admit(ShardRecord {
                job: "a".into(),
                tenant: "t1".into(),
                file: store.shard_rel("a"),
                bytes: bytes_a,
                units: units_a,
                layout_version: 2,
                codec: "raw".into(),
            })
            .unwrap();
        store
            .admit(ShardRecord {
                job: "b".into(),
                tenant: "t2".into(),
                file: store.shard_rel("b"),
                bytes: bytes_b,
                units: units_b,
                layout_version: 2,
                codec: "raw".into(),
            })
            .unwrap();
        store.write_index().unwrap();

        let check = TraceStore::validate(&root).unwrap();
        assert!(check.clean(), "problems: {:?}", check.problems);
        assert_eq!(check.shards, 2);
        assert_eq!(check.tenant_bytes["t1"], bytes_a);
        assert_eq!(check.total_bytes, bytes_a + bytes_b);

        // Re-opening the root restores the accounting.
        let reopened = TraceStore::create(&root).unwrap();
        assert_eq!(reopened.tenant_bytes("t1"), bytes_a);
        assert!(reopened
            .admit(ShardRecord {
                job: "a".into(),
                tenant: "t1".into(),
                file: reopened.shard_rel("a"),
                bytes: 1,
                units: 0,
                layout_version: 2,
                codec: "raw".into(),
            })
            .unwrap_err()
            .contains("already holds"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tenant_caps_gate_admission() {
        let root = tmp_root("simprof_store_caps");
        let store = TraceStore::create(&root)
            .unwrap()
            .with_default_tenant_cap(1000)
            .with_tenant_cap("big", 10_000);
        let rec = |job: &str, tenant: &str, bytes: u64| ShardRecord {
            job: job.into(),
            tenant: tenant.into(),
            file: format!("shards/{job}.sptrc"),
            bytes,
            units: 0,
            layout_version: 2,
            codec: "raw".into(),
        };
        store.admit(rec("a", "small", 700)).unwrap();
        let err = store.admit(rec("b", "small", 400)).unwrap_err();
        assert!(err.contains("byte cap exceeded"), "{err}");
        // A different tenant has its own budget; "big" has a raised cap.
        store.admit(rec("c", "other", 900)).unwrap();
        store.admit(rec("d", "big", 9_000)).unwrap();
        assert_eq!(store.tenant_bytes("small"), 700);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn validate_reports_tampering_and_strays() {
        let root = tmp_root("simprof_store_tamper");
        let store = TraceStore::create(&root).unwrap();
        let (bytes, units) = write_shard(&store, "a");
        store
            .admit(ShardRecord {
                job: "a".into(),
                tenant: "t".into(),
                file: store.shard_rel("a"),
                bytes,
                units,
                layout_version: 2,
                codec: "raw".into(),
            })
            .unwrap();
        store.write_index().unwrap();

        // A stray unindexed shard, plus a truncated indexed shard.
        write_shard(&store, "ghost");
        let shard = store.shard_path("a");
        let data = std::fs::read(&shard).unwrap();
        std::fs::write(&shard, &data[..data.len() - 4]).unwrap();

        let check = TraceStore::validate(&root).unwrap();
        assert!(!check.clean());
        let all = check.problems.join("\n");
        assert!(all.contains("stray shard"), "{all}");
        assert!(all.contains("bytes on disk"), "{all}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_index_is_an_error_for_validate() {
        let root = tmp_root("simprof_store_noindex");
        std::fs::create_dir_all(&root).unwrap();
        assert!(TraceStore::validate(&root).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
