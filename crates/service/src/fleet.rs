//! Fleet-report assembly and live progress for the service layer.
//!
//! [`fleet_report`] turns one service run — the specs, the per-job
//! results, and the store's tenant accounting — into a
//! [`FleetReport`]: it re-opens every admitted shard to count stored vs
//! decoded payload bytes (which doubles as a readability check) and
//! hands the merged facts to [`FleetReport::assemble`], whose output is
//! a pure function of its inputs. Under a scripted clock the serialized
//! report is byte-identical at any worker count.
//!
//! [`FleetProgress`] is the live half: an [`EventSink`] folding the
//! runner's lifecycle events into queued/running/done/failed counts, so
//! `simprof serve --progress` can render a one-line fleet status while
//! jobs run.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use simprof_obs::{Event, EventKind, EventSink, FleetJob, FleetReport, JobSlice};
use simprof_trace::TraceReader;

use crate::runner::JobOutcome;
use crate::spec::JobSpec;
use crate::store::TraceStore;

/// Streams `job`'s shard end to end and returns its `(stored, raw)`
/// payload byte totals (header + unit chunks + footer).
pub fn shard_payload_bytes(store: &TraceStore, job: &str) -> Result<(u64, u64), String> {
    let path = store.shard_path(job);
    let path_str = path.to_string_lossy().into_owned();
    let mut reader = TraceReader::open(&path_str)?;
    reader.footer()?;
    while reader.next_unit()?.is_some() {}
    Ok(reader.payload_bytes())
}

/// Builds the fleet report for one service run. `specs` and `results`
/// are the runner's input and output, index-aligned; the store supplies
/// per-tenant byte usage and the shards to scan for compression.
pub fn fleet_report(
    store: &TraceStore,
    specs: &[JobSpec],
    results: &[Result<JobOutcome, String>],
) -> Result<FleetReport, String> {
    if specs.len() != results.len() {
        return Err(format!("fleet report: {} specs but {} results", specs.len(), results.len()));
    }
    let mut jobs = Vec::with_capacity(specs.len());
    for (spec, result) in specs.iter().zip(results) {
        let job = match result {
            Ok(o) => {
                let (stored, raw) = shard_payload_bytes(store, &o.id)
                    .map_err(|e| format!("fleet report: job `{}`: {e}", o.id))?;
                FleetJob {
                    id: o.id.clone(),
                    tenant: o.tenant.clone(),
                    workload: o.workload.clone(),
                    ok: true,
                    error: None,
                    units: o.units,
                    trace_bytes: o.trace_bytes,
                    peak_alloc_bytes: o.peak_bytes,
                    queue_us: o.queue_us,
                    run_us: o.run_us,
                    stored_payload_bytes: stored,
                    raw_payload_bytes: raw,
                    compression: 0.0,
                }
            }
            Err(e) => FleetJob {
                id: spec.id.clone(),
                tenant: spec.tenant().to_owned(),
                workload: spec.workload.clone(),
                ok: false,
                error: Some(e.clone()),
                units: 0,
                trace_bytes: 0,
                peak_alloc_bytes: 0,
                queue_us: 0,
                run_us: 0,
                stored_payload_bytes: 0,
                raw_payload_bytes: 0,
                compression: 0.0,
            },
        };
        jobs.push(job);
    }
    Ok(FleetReport::assemble(jobs, store.tenant_bytes_map()))
}

/// Lays successful jobs out on per-worker timeline tracks (the input to
/// [`simprof_obs::fleet_chrome_trace`]).
pub fn fleet_slices(results: &[Result<JobOutcome, String>]) -> Vec<JobSlice> {
    results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|o| JobSlice {
            name: o.id.clone(),
            worker: o.worker,
            start_us: o.started_us,
            end_us: o.finished_us,
        })
        .collect()
}

/// Mutable fleet status counts.
#[derive(Debug, Default, Clone)]
struct ProgressCounts {
    queued: usize,
    running: usize,
    done: usize,
    failed: usize,
    /// `(done, failed)` per tenant.
    tenants: BTreeMap<String, (usize, usize)>,
}

/// A shared live view of the fleet's lifecycle events. Clone the handle
/// freely; [`FleetProgress::sink`] yields the [`EventSink`] to install
/// on the runner and [`FleetProgress::line`] renders the current
/// one-line status.
#[derive(Debug, Clone, Default)]
pub struct FleetProgress {
    counts: Arc<Mutex<ProgressCounts>>,
}

impl FleetProgress {
    /// A progress view with all counts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sink to install on the [`crate::JobRunner`] (tee it with a
    /// JSONL writer to keep a durable log too).
    pub fn sink(&self) -> Box<dyn EventSink> {
        Box::new(ProgressSink { counts: Arc::clone(&self.counts) })
    }

    /// One-line fleet status: totals plus per-tenant `done/failed`.
    pub fn line(&self) -> String {
        let c = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        let mut line = format!(
            "fleet: {} queued, {} running, {} done, {} failed",
            c.queued, c.running, c.done, c.failed
        );
        if !c.tenants.is_empty() {
            let tenants: Vec<String> = c
                .tenants
                .iter()
                .map(|(t, (done, failed))| format!("{t} {done}/{failed}"))
                .collect();
            line.push_str(&format!(" | {}", tenants.join(", ")));
        }
        line
    }

    /// `(queued, running, done, failed)` snapshot.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let c = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        (c.queued, c.running, c.done, c.failed)
    }
}

struct ProgressSink {
    counts: Arc<Mutex<ProgressCounts>>,
}

impl EventSink for ProgressSink {
    fn emit(&mut self, event: &Event) {
        let mut c = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        match &event.kind {
            EventKind::JobQueued { .. } => c.queued += 1,
            EventKind::JobStarted { .. } => {
                c.queued = c.queued.saturating_sub(1);
                c.running += 1;
            }
            EventKind::JobFinished { tenant, .. } => {
                c.running = c.running.saturating_sub(1);
                c.done += 1;
                c.tenants.entry(tenant.clone()).or_default().0 += 1;
            }
            EventKind::JobFailed { tenant, .. } => {
                c.running = c.running.saturating_sub(1);
                c.failed += 1;
                c.tenants.entry(tenant.clone()).or_default().1 += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::JobRunner;
    use crate::ScriptedClock;

    fn tmp_root(name: &str) -> String {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_owned()
    }

    fn spec(id: &str, workload: &str, seed: u64, tenant: &str, codec: Option<&str>) -> JobSpec {
        let mut s = JobSpec::new(id, workload);
        s.seed = Some(seed);
        s.scale = Some("tiny".into());
        s.tenant = Some(tenant.into());
        s.codec = codec.map(str::to_owned);
        s
    }

    #[test]
    fn fleet_report_folds_outcomes_store_bytes_and_compression() {
        let root = tmp_root("simprof_fleet_report");
        let runner = JobRunner::new(TraceStore::create(&root).unwrap())
            .with_clock(Arc::new(ScriptedClock::fixed(0)));
        let specs = vec![
            spec("a", "wc_sp", 1, "t0", Some("lz")),
            spec("b", "grep_hp", 2, "t1", None),
            spec("bad", "no_such", 3, "t1", None),
        ];
        let results = runner.run(&specs);
        let report = fleet_report(runner.store(), &specs, &results).unwrap();

        assert_eq!(report.totals.jobs, 3);
        assert_eq!(report.totals.ok, 2);
        assert_eq!(report.totals.failed, 1);
        assert_eq!(report.jobs.len(), 3);

        let a = report.jobs.iter().find(|j| j.id == "a").unwrap();
        assert!(a.ok);
        assert!(a.raw_payload_bytes > 0);
        assert!(
            a.stored_payload_bytes < a.raw_payload_bytes,
            "lz shard stores fewer payload bytes than raw"
        );
        assert!(a.compression > 0.0 && a.compression < 1.0);
        let b = report.jobs.iter().find(|j| j.id == "b").unwrap();
        assert_eq!(b.stored_payload_bytes, b.raw_payload_bytes, "v2 stores raw");
        assert_eq!(b.compression, 1.0);
        let bad = report.jobs.iter().find(|j| j.id == "bad").unwrap();
        assert!(!bad.ok);
        assert!(bad.error.as_deref().unwrap().contains("no_such"));

        // Report tenant bytes equal the store's accounting.
        for (tenant, stats) in &report.tenants {
            assert_eq!(stats.store_bytes, runner.store().tenant_bytes(tenant));
        }
        assert_eq!(report.tenants["t1"].failed, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn progress_counts_follow_the_lifecycle() {
        let root = tmp_root("simprof_fleet_progress");
        let progress = FleetProgress::new();
        let runner =
            JobRunner::new(TraceStore::create(&root).unwrap()).with_event_sink(progress.sink());
        let results =
            runner.run(&[spec("a", "wc_sp", 1, "t0", None), spec("bad", "no_such", 2, "t0", None)]);
        assert_eq!(results.len(), 2);
        assert_eq!(progress.counts(), (0, 0, 1, 1), "all jobs accounted for at the end");
        let line = progress.line();
        assert!(line.contains("1 done"), "{line}");
        assert!(line.contains("1 failed"), "{line}");
        assert!(line.contains("t0 1/1"), "{line}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fleet_slices_skip_failed_jobs() {
        let root = tmp_root("simprof_fleet_slices");
        let runner = JobRunner::new(TraceStore::create(&root).unwrap());
        let results =
            runner.run(&[spec("a", "wc_sp", 1, "t0", None), spec("bad", "no_such", 2, "t0", None)]);
        let slices = fleet_slices(&results);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].name, "a");
        assert!(slices[0].end_us >= slices[0].start_us);
        let _ = std::fs::remove_dir_all(&root);
    }
}
