//! Job specifications: what one profiling job in a service batch is.

use serde::{Deserialize, Serialize};

use simprof_trace::Codec;
use simprof_workloads::{WorkloadConfig, WorkloadId};

/// One profiling job: a workload, its configuration, and the job's
/// service-level envelope (trace codec, memory budget, tenant).
///
/// The `(workload, scale, seed, codec)` quadruple fully determines the
/// job's shard bytes; `id`, `tenant`, and `mem_cap_mb` only affect where
/// the shard lands and how the job is judged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job id; names the shard file (`shards/<id>.sptrc`).
    pub id: String,
    /// Workload label (`wc_sp`, `sort_hp`, …; see `simprof list`).
    pub workload: String,
    /// Master seed for the run. Defaults to 42, matching the CLI.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Scale preset (`paper` / `tiny`). Defaults to `tiny`.
    #[serde(default)]
    pub scale: Option<String>,
    /// Trace codec (`raw` / `lz`). Absent means the v2 uncompressed
    /// layout — byte-identical to `simprof profile`'s output.
    #[serde(default)]
    pub codec: Option<String>,
    /// Per-job memory budget in MiB, enforced against the job's own
    /// allocation slot (a neighbor's allocations never count).
    #[serde(default)]
    pub mem_cap_mb: Option<u64>,
    /// Tenant the job's shard bytes are accounted to. Defaults to
    /// `default`.
    #[serde(default)]
    pub tenant: Option<String>,
}

impl JobSpec {
    /// A minimal spec: `tiny` scale, seed 42, uncompressed, default
    /// tenant, no memory cap.
    pub fn new(id: &str, workload: &str) -> Self {
        Self {
            id: id.to_owned(),
            workload: workload.to_owned(),
            seed: None,
            scale: None,
            codec: None,
            mem_cap_mb: None,
            tenant: None,
        }
    }

    /// The effective seed (default 42, matching the CLI's `--seed`).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// The effective scale name (default `tiny`).
    pub fn scale_name(&self) -> &str {
        self.scale.as_deref().unwrap_or("tiny")
    }

    /// The effective tenant (default `default`).
    pub fn tenant(&self) -> &str {
        self.tenant.as_deref().unwrap_or("default")
    }

    /// The effective memory cap in bytes, when one was set.
    pub fn mem_cap_bytes(&self) -> Option<u64> {
        self.mem_cap_mb.map(|mb| mb << 20)
    }

    /// Resolves the workload label against the Table I matrix.
    pub fn resolve_workload(&self) -> Result<WorkloadId, String> {
        WorkloadId::all().into_iter().find(|w| w.label() == self.workload).ok_or_else(|| {
            let labels: Vec<String> = WorkloadId::all().iter().map(|w| w.label()).collect();
            format!(
                "job `{}`: unknown workload `{}`; available: {}",
                self.id,
                self.workload,
                labels.join(", ")
            )
        })
    }

    /// Builds the workload configuration for this job's scale and seed.
    pub fn workload_config(&self) -> Result<WorkloadConfig, String> {
        match self.scale_name() {
            "paper" => Ok(WorkloadConfig::paper(self.seed())),
            "tiny" => Ok(WorkloadConfig::tiny(self.seed())),
            other => Err(format!("job `{}`: invalid scale `{other}` (paper|tiny)", self.id)),
        }
    }

    /// Parses the job's codec choice: `None` = stay on the uncompressed
    /// v2 layout, `Some` = write a v3 shard under that codec.
    pub fn resolve_codec(&self) -> Result<Option<Codec>, String> {
        match self.codec.as_deref() {
            None => Ok(None),
            Some(name) => {
                Codec::parse(name).map(Some).map_err(|e| format!("job `{}`: {e}", self.id))
            }
        }
    }

    /// Validates the id for use as a shard file name: non-empty, and only
    /// `[A-Za-z0-9._-]` so a hostile jobs file cannot traverse out of the
    /// store (`../../etc/passwd`) or collide with the index.
    pub fn validate_id(&self) -> Result<(), String> {
        if self.id.is_empty() {
            return Err("job id must not be empty".into());
        }
        if self.id.starts_with('.') {
            return Err(format!("job id `{}` must not start with a dot", self.id));
        }
        if let Some(bad) =
            self.id.chars().find(|c| !c.is_ascii_alphanumeric() && !matches!(c, '.' | '_' | '-'))
        {
            return Err(format!(
                "job id `{}` contains `{bad}`; allowed characters are [A-Za-z0-9._-]",
                self.id
            ));
        }
        Ok(())
    }
}

/// Loads a jobs file: a JSON array of [`JobSpec`] objects. Ids must be
/// unique — each names one shard in the store.
pub fn load_jobs(path: &str) -> Result<Vec<JobSpec>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let specs: Vec<JobSpec> =
        serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
    if specs.is_empty() {
        return Err(format!("{path}: jobs file is empty"));
    }
    let mut seen = std::collections::BTreeSet::new();
    for spec in &specs {
        spec.validate_id().map_err(|e| format!("{path}: {e}"))?;
        if !seen.insert(spec.id.clone()) {
            return Err(format!("{path}: duplicate job id `{}`", spec.id));
        }
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_the_cli() {
        let s = JobSpec::new("j1", "grep_sp");
        assert_eq!(s.seed(), 42);
        assert_eq!(s.scale_name(), "tiny");
        assert_eq!(s.tenant(), "default");
        assert_eq!(s.mem_cap_bytes(), None);
        assert_eq!(s.resolve_codec().unwrap(), None);
        assert!(s.resolve_workload().is_ok());
        assert!(s.workload_config().is_ok());
    }

    #[test]
    fn bad_fields_are_rejected_with_the_job_named() {
        let mut s = JobSpec::new("j1", "nope_xx");
        assert!(s.resolve_workload().unwrap_err().contains("j1"));
        s.workload = "grep_sp".into();
        s.scale = Some("huge".into());
        assert!(s.workload_config().unwrap_err().contains("huge"));
        s.scale = None;
        s.codec = Some("zstd".into());
        assert!(s.resolve_codec().unwrap_err().contains("zstd"));
    }

    #[test]
    fn hostile_ids_are_rejected() {
        for id in ["", "../escape", "a/b", "a\\b", ".hidden", "sp ace"] {
            let s = JobSpec::new(id, "grep_sp");
            assert!(s.validate_id().is_err(), "id {id:?} must be rejected");
        }
        for id in ["job-1", "wc_sp.seed42", "A9"] {
            let s = JobSpec::new(id, "grep_sp");
            assert!(s.validate_id().is_ok(), "id {id:?} must be accepted");
        }
    }

    #[test]
    fn jobs_file_roundtrips_and_validates() {
        let dir = std::env::temp_dir();
        let path = dir.join("simprof_service_jobs.json");
        let path = path.to_str().unwrap();
        std::fs::write(
            path,
            r#"[
              {"id": "a", "workload": "grep_sp"},
              {"id": "b", "workload": "wc_hp", "seed": 7, "scale": "tiny",
               "codec": "lz", "mem_cap_mb": 64, "tenant": "team-x"}
            ]"#,
        )
        .unwrap();
        let specs = load_jobs(path).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].seed(), 7);
        assert_eq!(specs[1].tenant(), "team-x");
        assert_eq!(specs[1].mem_cap_bytes(), Some(64 << 20));
        assert_eq!(specs[1].resolve_codec().unwrap(), Some(Codec::Lz));

        std::fs::write(path, r#"[{"id": "a", "workload": "x"}, {"id": "a", "workload": "y"}]"#)
            .unwrap();
        assert!(load_jobs(path).unwrap_err().contains("duplicate"));
        std::fs::write(path, "[]").unwrap();
        assert!(load_jobs(path).unwrap_err().contains("empty"));
        let _ = std::fs::remove_file(path);
    }
}
