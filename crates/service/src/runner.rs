//! The concurrent job runner: N profiling jobs over a small worker pool,
//! each with its own observability context, allocation slot, and shard.
//!
//! Each worker thread pulls the next unstarted [`JobSpec`] off a shared
//! counter and runs it end-to-end on that thread: claim an
//! [`AllocSlot`], install a fresh [`ObsContext`], stream sampling units
//! into the job's shard, seal it, and [admit](TraceStore::admit) it into
//! the store. Nothing a job touches outlives it or leaks into a
//! neighbor, which is what makes the per-job determinism and memory
//! verdicts meaningful.
//!
//! The trace-writing sequence deliberately mirrors `simprof profile`
//! byte for byte (same [`TraceMeta`] fields, same default chunk size,
//! same writer wiring), so a job served here produces a shard
//! bit-identical to the batch CLI's output for the same spec.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use simprof_obs::{
    AllocSlot, Event, EventKind, EventSink, ObsContext, RunReport, ALLOC_SLOTS,
    EVENT_SCHEMA_VERSION,
};
use simprof_profiler::sink::{SharedSink, UnitSink};
use simprof_trace::{Codec, TraceMeta, TraceWriter};

use crate::clock::{Clock, MonotonicClock};
use crate::spec::JobSpec;
use crate::store::{ShardRecord, TraceStore};

/// How one finished job went.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's id (shard file stem).
    pub id: String,
    /// Tenant the shard was accounted to.
    pub tenant: String,
    /// Workload label that ran.
    pub workload: String,
    /// Sampling units in the sealed shard.
    pub units: u64,
    /// Sealed shard size in bytes.
    pub trace_bytes: u64,
    /// Shard path relative to the store root.
    pub shard: String,
    /// Peak bytes charged to the job's allocation slot.
    pub peak_bytes: u64,
    /// The job's memory budget, when one was set.
    pub mem_cap_bytes: Option<u64>,
    /// Whether `peak_bytes` stayed within the budget (vacuously true
    /// without one).
    pub within_cap: bool,
    /// Wall-clock milliseconds from spec validation to admission.
    pub wall_ms: u64,
    /// 0-based index of the worker thread that ran the job.
    pub worker: usize,
    /// Runner-clock reading when the job left the queue.
    pub started_us: u64,
    /// Runner-clock reading when the job finished.
    pub finished_us: u64,
    /// Microseconds the job waited between queueing and start
    /// (runner-clock; scripted clocks make this deterministic).
    pub queue_us: u64,
    /// Microseconds the job ran for (runner-clock).
    pub run_us: u64,
    /// The job's own span tree and metrics.
    pub report: RunReport,
}

/// The runner's installed lifecycle sink plus its own `seq` counter
/// (mirrors the per-context `SinkSlot` stamping contract: `seq` and
/// `ts_us` assigned under one lock, so file order is monotone).
struct EventState {
    sink: Box<dyn EventSink>,
    seq: u64,
}

/// Runs batches of [`JobSpec`]s concurrently against one [`TraceStore`].
pub struct JobRunner {
    store: TraceStore,
    default_codec: Option<Codec>,
    max_concurrent: usize,
    clock: Arc<dyn Clock>,
    events: Mutex<Option<EventState>>,
}

impl JobRunner {
    /// A runner writing into `store`, with up to 4 concurrent jobs, no
    /// default codec (jobs without one write uncompressed v2 shards), the
    /// real monotonic clock, and no lifecycle sink.
    pub fn new(store: TraceStore) -> Self {
        Self {
            store,
            default_codec: None,
            max_concurrent: 4,
            clock: Arc::new(MonotonicClock::new()),
            events: Mutex::new(None),
        }
    }

    /// Sets the codec applied to jobs whose spec does not choose one.
    pub fn with_default_codec(mut self, codec: Option<Codec>) -> Self {
        self.default_codec = codec;
        self
    }

    /// Sets how many jobs may run at once (clamped to at least 1).
    pub fn with_max_concurrent(mut self, n: usize) -> Self {
        self.max_concurrent = n.max(1);
        self
    }

    /// Replaces the clock that stamps job lifecycle transitions. Inject a
    /// [`crate::ScriptedClock`] to make queue/run durations — and any
    /// [`simprof_obs::FleetReport`] built from them — byte-deterministic.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Installs a service-level sink receiving one event per job
    /// lifecycle transition (`job_queued`/`job_started`/`job_finished`/
    /// `job_failed`). Flushed after every [`run`](JobRunner::run).
    pub fn with_event_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.events = Mutex::new(Some(EventState { sink, seq: 0 }));
        self
    }

    /// The store this runner admits shards into.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Stamps and delivers one lifecycle event, returning the clock
    /// reading used. With no sink installed this is just a clock read.
    fn emit_event(&self, kind: EventKind) -> u64 {
        let mut state = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        match state.as_mut() {
            Some(s) => {
                s.seq += 1;
                let event =
                    Event { v: EVENT_SCHEMA_VERSION, seq: s.seq, ts_us: self.clock.now_us(), kind };
                s.sink.emit(&event);
                event.ts_us
            }
            None => self.clock.now_us(),
        }
    }

    fn flush_events(&self) {
        let mut state = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = state.as_mut() {
            s.sink.flush();
        }
    }

    /// Runs every spec, up to `max_concurrent` at a time, and returns one
    /// result per spec in input order. A failed job never takes a
    /// neighbor down — its error is returned in its own slot and any
    /// partial shard file is deleted.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<Result<JobOutcome, String>> {
        self.run_with(specs, |_, _| {})
    }

    /// Like [`run`](JobRunner::run), invoking `on_done(index, result)` on
    /// the worker thread as each job completes (completion order, not
    /// input order) — the hook behind `simprof serve`'s streamed outcome
    /// lines. The returned vector is still in input order.
    pub fn run_with<F>(&self, specs: &[JobSpec], on_done: F) -> Vec<Result<JobOutcome, String>>
    where
        F: Fn(usize, &Result<JobOutcome, String>) + Sync,
    {
        if specs.is_empty() {
            return Vec::new();
        }
        // Queue stamps happen on this thread, in input order, before any
        // worker starts: the queued prefix of the event log is
        // deterministic and every queue wait is measured from here.
        let queued_us: Vec<u64> = specs
            .iter()
            .map(|s| {
                self.emit_event(EventKind::JobQueued {
                    job: s.id.clone(),
                    tenant: s.tenant().to_owned(),
                })
            })
            .collect();

        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<JobOutcome, String>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.max_concurrent.min(specs.len());
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let queued_us = &queued_us;
                let results = &results;
                let next = &next;
                let on_done = &on_done;
                scope.spawn(move || {
                    warm_worker_thread();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        let spec = &specs[i];
                        let started_us = self.emit_event(EventKind::JobStarted {
                            job: spec.id.clone(),
                            tenant: spec.tenant().to_owned(),
                            worker: worker as u64,
                        });
                        let mut outcome = self.run_one(spec);
                        let finished_us = self.clock.now_us().max(started_us);
                        let queue_us = started_us.saturating_sub(queued_us[i]);
                        let run_us = finished_us - started_us;
                        match &mut outcome {
                            Ok(o) => {
                                o.worker = worker;
                                o.started_us = started_us;
                                o.finished_us = finished_us;
                                o.queue_us = queue_us;
                                o.run_us = run_us;
                                self.emit_event(EventKind::JobFinished {
                                    job: o.id.clone(),
                                    tenant: o.tenant.clone(),
                                    units: o.units,
                                    bytes: o.trace_bytes,
                                    peak_bytes: o.peak_bytes,
                                    queue_us,
                                    run_us,
                                });
                            }
                            Err(e) => {
                                self.emit_event(EventKind::JobFailed {
                                    job: spec.id.clone(),
                                    tenant: spec.tenant().to_owned(),
                                    error: e.clone(),
                                });
                            }
                        }
                        on_done(i, &outcome);
                        *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                    }
                });
            }
        });
        self.flush_events();
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| Err("job worker panicked before reporting".into()))
            })
            .collect()
    }

    /// Runs one job end-to-end on the calling thread. Lifecycle timing
    /// fields (`worker`, `started_us`, …) are zero here; the worker loop
    /// in [`run_with`](JobRunner::run_with) fills them in.
    fn run_one(&self, spec: &JobSpec) -> Result<JobOutcome, String> {
        let started = Instant::now();
        spec.validate_id().map_err(|e| format!("job `{}`: {e}", spec.id))?;
        let workload = spec.resolve_workload()?;
        let cfg = spec.workload_config()?;
        let codec = spec.resolve_codec()?.or(self.default_codec);

        let slot = AllocSlot::claim().ok_or_else(|| {
            format!("job `{}`: all {ALLOC_SLOTS} allocation slots are in use", spec.id)
        })?;
        let ctx = ObsContext::new();
        ctx.set_alloc_slot(&slot);
        let guard = ctx.install();

        // From here the meta/writer/sink sequence must stay in lockstep
        // with `simprof profile` — it is what makes a served job's shard
        // bit-identical to the batch CLI's trace.
        let meta = TraceMeta {
            label: spec.workload.clone(),
            seed: spec.seed(),
            scale: spec.scale_name().to_owned(),
            unit_instrs: cfg.profiler.unit_instrs,
            snapshot_instrs: cfg.profiler.snapshot_instrs,
            core: cfg.profiler.core,
        };
        let shard_path = self.store.shard_path(&spec.id);
        let path_str = shard_path.to_string_lossy().into_owned();
        let writer = match codec {
            None => TraceWriter::create(&path_str, &meta),
            Some(c) => TraceWriter::create_compressed(&path_str, &meta, c),
        };
        let writer = match writer {
            Ok(w) => w,
            Err(e) => {
                drop(guard);
                return Err(format!("job `{}`: open shard: {e}", spec.id));
            }
        };
        let shared = SharedSink::new(writer);
        let sinks: Vec<Box<dyn UnitSink>> = vec![Box::new(shared.clone())];

        let out = {
            let _span = simprof_obs::span!("service.job");
            workload.run_full_with_sinks(&cfg, sinks)
        };
        let sealed = shared.lock().finish(&out.registry);
        drop(guard);
        let report = ctx.finish_report();
        let peak_bytes = slot.peak_bytes() as u64;
        drop(slot);

        let footer = match sealed {
            Ok(f) => f,
            Err(e) => {
                let _ = std::fs::remove_file(&shard_path);
                return Err(format!("job `{}`: seal shard: {e}", spec.id));
            }
        };
        let trace_bytes = std::fs::metadata(&shard_path)
            .map_err(|e| format!("job `{}`: stat shard: {e}", spec.id))?
            .len();
        let record = ShardRecord {
            job: spec.id.clone(),
            tenant: spec.tenant().to_owned(),
            file: self.store.shard_rel(&spec.id),
            bytes: trace_bytes,
            units: footer.unit_count,
            layout_version: if codec.is_some() { 3 } else { 2 },
            codec: codec.unwrap_or(Codec::Raw).name().to_owned(),
        };
        if let Err(e) = self.store.admit(record) {
            let _ = std::fs::remove_file(&shard_path);
            return Err(format!("job `{}`: {e}", spec.id));
        }

        let mem_cap_bytes = spec.mem_cap_bytes();
        let within_cap = mem_cap_bytes.is_none_or(|cap| peak_bytes <= cap);
        Ok(JobOutcome {
            id: spec.id.clone(),
            tenant: spec.tenant().to_owned(),
            workload: spec.workload.clone(),
            units: footer.unit_count,
            trace_bytes,
            shard: self.store.shard_rel(&spec.id),
            peak_bytes,
            mem_cap_bytes,
            within_cap,
            wall_ms: started.elapsed().as_millis() as u64,
            worker: 0,
            started_us: 0,
            finished_us: 0,
            queue_us: 0,
            run_us: 0,
            report,
        })
    }
}

/// Pays a worker thread's one-time lazy-init costs (thread-local span
/// and context stacks, thread registration) *before* any job's
/// allocation slot is tagged on the thread. Without this, whichever job
/// lands on a fresh thread first is charged those allocations, making
/// per-job peaks depend on worker count and scheduling.
fn warm_worker_thread() {
    let ctx = ObsContext::new();
    {
        let _installed = ctx.install();
        let _span = simprof_obs::span!("service.worker_warmup");
    }
    ctx.stop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    fn tmp_root(name: &str) -> String {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_owned()
    }

    fn spec(id: &str, workload: &str, seed: u64) -> JobSpec {
        let mut s = JobSpec::new(id, workload);
        s.seed = Some(seed);
        s
    }

    #[test]
    fn concurrent_jobs_match_solo_runs_bit_for_bit() {
        let root_pair = tmp_root("simprof_runner_pair");
        let runner = JobRunner::new(TraceStore::create(&root_pair).unwrap()).with_max_concurrent(2);
        let specs = vec![spec("a", "wc_sp", 7), spec("b", "grep_hp", 11)];
        let results = runner.run(&specs);
        for r in &results {
            assert!(r.is_ok(), "{r:?}");
        }
        runner.store().write_index().unwrap();
        let check = TraceStore::validate(&root_pair).unwrap();
        assert!(check.clean(), "problems: {:?}", check.problems);

        // Each job solo, in its own store, must produce the same bytes.
        for s in &specs {
            let root_solo = tmp_root(&format!("simprof_runner_solo_{}", s.id));
            let solo = JobRunner::new(TraceStore::create(&root_solo).unwrap());
            let res = solo.run(std::slice::from_ref(s));
            assert!(res[0].is_ok(), "{:?}", res[0]);
            let pair_bytes = std::fs::read(runner.store().shard_path(&s.id)).unwrap();
            let solo_bytes = std::fs::read(solo.store().shard_path(&s.id)).unwrap();
            assert_eq!(pair_bytes, solo_bytes, "job `{}` diverged under concurrency", s.id);
            let _ = std::fs::remove_dir_all(&root_solo);
        }
        let _ = std::fs::remove_dir_all(&root_pair);
    }

    #[test]
    fn compressed_jobs_write_v3_shards_that_read_back() {
        let root = tmp_root("simprof_runner_lz");
        let runner = JobRunner::new(TraceStore::create(&root).unwrap());
        let mut s = spec("z", "wc_sp", 3);
        s.codec = Some("lz".into());
        let results = runner.run(&[s]);
        let outcome = results[0].as_ref().unwrap();
        runner.store().write_index().unwrap();

        let path = runner.store().shard_path("z");
        let mut reader = simprof_trace::TraceReader::open(path.to_str().unwrap()).unwrap();
        assert_eq!(reader.layout_version(), 3);
        let footer = reader.footer().unwrap();
        assert_eq!(footer.unit_count, outcome.units);
        assert!(TraceStore::validate(&root).unwrap().clean());

        // The compressed shard holds the same units as an uncompressed
        // run of the same spec, in fewer or equal bytes.
        let root_raw = tmp_root("simprof_runner_raw");
        let raw = JobRunner::new(TraceStore::create(&root_raw).unwrap());
        let raw_outcome = &raw.run(&[spec("z", "wc_sp", 3)])[0];
        let raw_outcome = raw_outcome.as_ref().unwrap();
        assert_eq!(raw_outcome.units, outcome.units);
        assert!(outcome.trace_bytes <= raw_outcome.trace_bytes);
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&root_raw);
    }

    #[test]
    fn a_failed_job_reports_in_place_and_leaves_no_shard() {
        let root = tmp_root("simprof_runner_fail");
        let runner = JobRunner::new(TraceStore::create(&root).unwrap());
        let results = runner.run(&[spec("bad", "no_such", 1), spec("ok", "wc_sp", 1)]);
        assert!(results[0].as_ref().unwrap_err().contains("no_such"));
        assert!(results[1].is_ok(), "{:?}", results[1]);
        assert!(!runner.store().shard_path("bad").exists());
        runner.store().write_index().unwrap();
        assert!(TraceStore::validate(&root).unwrap().clean());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lifecycle_events_stream_in_order_under_a_scripted_clock() {
        use simprof_obs::events::CollectSink;

        let root = tmp_root("simprof_runner_events");
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let runner = JobRunner::new(TraceStore::create(&root).unwrap())
            .with_max_concurrent(1)
            .with_clock(Arc::new(crate::ScriptedClock::fixed(5)))
            .with_event_sink(Box::new(CollectSink(Arc::clone(&events))));
        let results = runner.run(&[spec("a", "wc_sp", 1), spec("bad", "no_such", 1)]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());

        let events = events.lock().unwrap();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            [
                "job_queued",
                "job_queued",
                "job_started",
                "job_finished",
                "job_started",
                "job_failed"
            ]
        );
        for w in events.windows(2) {
            assert!(w[1].seq > w[0].seq, "seq strictly increasing");
            assert!(w[1].ts_us >= w[0].ts_us, "ts non-decreasing");
        }
        assert!(events.iter().all(|e| e.ts_us == 5), "every stamp reads the scripted clock");

        let outcome = results[0].as_ref().unwrap();
        assert_eq!(outcome.queue_us, 0, "fixed clock makes every duration zero");
        assert_eq!(outcome.run_us, 0);
        assert_eq!(outcome.started_us, 5);
        assert_eq!(outcome.finished_us, 5);
        assert_eq!(outcome.worker, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn outcomes_carry_their_worker_index_and_clock_stamps() {
        let root = tmp_root("simprof_runner_workers");
        let runner = JobRunner::new(TraceStore::create(&root).unwrap()).with_max_concurrent(2);
        let results = runner.run(&[spec("a", "wc_sp", 1), spec("b", "grep_hp", 2)]);
        for r in &results {
            let o = r.as_ref().unwrap();
            assert!(o.worker < 2);
            assert!(o.finished_us >= o.started_us);
            assert_eq!(o.run_us, o.finished_us - o.started_us);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn on_done_fires_once_per_job_with_its_index() {
        let root = tmp_root("simprof_runner_on_done");
        let runner = JobRunner::new(TraceStore::create(&root).unwrap()).with_max_concurrent(2);
        let seen = Mutex::new(Vec::new());
        let results = runner.run_with(&[spec("a", "wc_sp", 1), spec("b", "grep_hp", 2)], |i, r| {
            seen.lock().unwrap().push((i, r.is_ok()));
        });
        assert_eq!(results.len(), 2);
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        assert_eq!(seen, vec![(0, true), (1, true)]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_cap_rejected_shard_is_deleted_not_left_stray() {
        let root = tmp_root("simprof_runner_cap");
        let store = TraceStore::create(&root).unwrap().with_default_tenant_cap(1);
        let runner = JobRunner::new(store);
        let results = runner.run(&[spec("a", "wc_sp", 1)]);
        assert!(results[0].as_ref().unwrap_err().contains("byte cap"));
        assert!(!runner.store().shard_path("a").exists());
        let _ = std::fs::remove_dir_all(&root);
    }
}
