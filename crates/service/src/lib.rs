//! Concurrent multi-job profiling service (DESIGN.md §17).
//!
//! The batch CLI profiles one workload per process: one
//! [`ObsContext`](simprof_obs::ObsContext), one trace file, one memory
//! budget. This crate generalizes that to a *service*: a [`JobRunner`]
//! accepts many [`JobSpec`]s and runs them concurrently, each job getting
//!
//! * its own observability context (spans, metrics, event sink) — the
//!   job-scoped handle the obs layer was de-globalized for,
//! * its own allocation budget slot
//!   ([`AllocSlot`](simprof_obs::AllocSlot)), so `mem_cap_mb` verdicts
//!   are per job even while neighbors allocate,
//! * its own shard in a [`TraceStore`] — one `.sptrc` file per job under
//!   `<root>/shards/`, raw (v2) or per-frame-compressed (v3, see
//!   [`simprof_trace::codec`]), recorded in a deterministic
//!   `<root>/index.json`.
//!
//! The determinism contract carries over from the batch path: a job's
//! shard bytes are a pure function of its spec (workload, scale, seed,
//! codec) — bit-identical whether the job runs alone, beside 31
//! neighbors, or through `simprof profile`. Tenant byte caps bound what
//! any one tenant's shards may occupy; admission is checked when a
//! finished shard is committed to the index, and a rejected shard is
//! deleted rather than left dangling.
//!
//! The fleet is observable while and after it runs (DESIGN.md §18): the
//! runner stamps `job_queued`/`job_started`/`job_finished`/`job_failed`
//! lifecycle events through an injectable [`Clock`] into a service-level
//! [`simprof_obs::EventSink`], [`FleetProgress`] folds them into a live
//! status line, and [`fleet_report`] merges every job's telemetry into a
//! per-tenant [`simprof_obs::FleetReport`] — byte-deterministic under a
//! [`ScriptedClock`] at any concurrency.

pub mod clock;
pub mod fleet;
pub mod runner;
pub mod spec;
pub mod store;

pub use clock::{Clock, MonotonicClock, ScriptedClock};
pub use fleet::{fleet_report, fleet_slices, shard_payload_bytes, FleetProgress};
pub use runner::{JobOutcome, JobRunner};
pub use spec::{load_jobs, JobSpec};
pub use store::{ShardRecord, StoreCheck, StoreIndex, TraceStore, INDEX_FILE};
