//! The `.sptrc` chunked on-disk trace format (DESIGN.md §12, §14).
//!
//! The legacy persistence format (`simprof-cli`'s JSON `TraceBundle`) is one
//! monolithic blob: writing it needs the whole [`ProfileTrace`] in memory
//! and reading it parses everything before the first unit is usable. This
//! crate replaces that with a *streaming* format:
//!
//! * [`TraceWriter`] is a [`UnitSink`]: attach it to a `SamplingManager`
//!   and units are framed to disk in fixed-size chunks while the engine is
//!   still running. Peak memory is one chunk, not one trace.
//! * [`TraceReader`] is a [`UnitStream`]: the two-pass analysis pipeline in
//!   `simprof-core` reads units chunk by chunk, twice, without ever
//!   materializing the trace.
//! * [`TraceFooter`] carries the summary a consumer wants *before* (or
//!   without) scanning units — unit count, method universe, totals, the
//!   method registry — and is reachable by seeking to the file's tail.
//! * [`salvage_bytes`] / [`TraceReader::open_salvage`] recover every
//!   intact chunk from a crashed or corrupted file (see [`salvage`]), and
//!   [`chaos`] provides the seeded fault injection that keeps the
//!   recovery path honest.
//!
//! ## Layout (v2)
//!
//! ```text
//! [MAGIC: 8 bytes "SPTRC\x00v2"]
//! [frame 'H'] header: TraceMeta as compact JSON
//! [frame 'U']*       chunks: Vec<SamplingUnit> as compact JSON
//! [frame 'F'] footer: TraceFooter as compact JSON
//! [footer payload length: u32 LE] [MAGIC]            ← 12-byte trailer
//! ```
//!
//! Every v2 frame is `[kind: u8] [payload length: u32 LE] [payload]
//! [CRC32: u32 LE]`, where the checksum covers `kind | length | payload`
//! (see [`crc32`](mod@crc32) — implemented in-crate, IEEE polynomial). The
//! trailer lets a reader locate the footer from the end of the file in
//! three reads, so `trace-info` on a multi-gigabyte trace is O(1). Frame
//! lengths are capped at [`MAX_FRAME_LEN`]: the cap bounds reader
//! allocation against corrupt or hostile length fields, and doubles as
//! the cheap rejection test during salvage resync.
//!
//! ## Layout (v3): per-frame compression
//!
//! v3 is v2 plus one codec byte per frame, negotiated from the
//! `SPTRC\x00v3` magic:
//!
//! ```text
//! [kind: u8] [codec: u8] [stored length: u32 LE] [stored bytes] [CRC32]
//! ```
//!
//! The length counts *stored* (post-codec) bytes, the CRC covers
//! `kind | codec | length | stored`, and the trailer's length field is
//! the footer frame's stored length — so the O(1) tail seek works without
//! decompressing anything first. Codec ids and the in-crate LZ codec live
//! in [`codec`]; a frame whose payload does not shrink is stored raw
//! (codec 0), so a compressed trace is never larger frame-by-frame than
//! its raw form. [`TraceWriter::create`] still writes v2 — compression is
//! opt-in via [`TraceWriter::create_compressed`], keeping the default
//! byte-stream identical across this change.
//!
//! ## Version negotiation
//!
//! The format version lives in two places on purpose: the magic's
//! trailing version (an incompatible layout change bumps it; v1 files —
//! identical to v2 but with no per-frame CRC — and v2 files are both
//! still read transparently) and [`TraceFooter::version`] (compatible
//! schema evolution inside frames; readers require it to match the
//! magic's layout version and reject versions newer than
//! [`FORMAT_VERSION`]). Unknown frame kinds are an error — the format has
//! no optional frames.
//!
//! ## Durability
//!
//! Frames are committed as whole-buffer writes at an explicit offset
//! (seek + write), so a failed write can be retried idempotently: the
//! writer re-seeks and rewrites the same frame. [`RetryPolicy`] bounds
//! those retries with doubling backoff; when a write fails persistently
//! the error is latched, the sink reports itself unhealthy, and the
//! profiler falls back to memory-only collection instead of panicking
//! (DESIGN.md §14.4).

use std::fs::File;
use std::io::{BufReader, Cursor, Read, Seek, SeekFrom, Write};

use serde::{Deserialize, Serialize};

use simprof_engine::MethodRegistry;
use simprof_profiler::sink::UnitSink;
use simprof_profiler::stream::UnitStream;
use simprof_profiler::trace::{ProfileTrace, SamplingUnit};

pub mod chaos;
pub mod codec;
pub mod crc32;
pub mod salvage;

pub use chaos::{ChaosCounts, ChaosPlan, ChaosReader, ChaosWriter};
pub use codec::Codec;
pub use salvage::{salvage_bytes, Salvage, SalvageReport};

/// The default layout's magic; the `v2` suffix is the layout version.
pub const MAGIC: &[u8; 8] = b"SPTRC\0v2";

/// The original layout's magic: same framing as v2, no per-frame CRC.
/// Still readable.
pub const MAGIC_V1: &[u8; 8] = b"SPTRC\0v1";

/// The compressed layout's magic: v2 framing plus a codec byte per frame.
pub const MAGIC_V3: &[u8; 8] = b"SPTRC\0v3";

/// Newest schema version this build reads and writes. Each footer carries
/// its own file's layout version (1, 2, or 3); the *default* writer still
/// produces v2 so existing byte-for-byte expectations hold.
pub const FORMAT_VERSION: u32 = 3;

/// Units buffered per on-disk chunk by default. The chunk is the unit of
/// durability as well as of reader memory: a crash (or torn tail) loses at
/// most the units buffered since the last committed chunk frame, and
/// salvage recovers whole intact chunks. 32 keeps that loss window small
/// for real profiles (a few hundred units) while still amortizing one JSON
/// parse across a chunk; `TraceWriter::with_chunk_units` tunes it per file.
pub const DEFAULT_CHUNK_UNITS: usize = 32;

/// Hard cap on a frame's payload length (64 MiB). A corrupt or hostile
/// length field is rejected *before* any allocation happens.
pub const MAX_FRAME_LEN: usize = 64 << 20;

pub(crate) const FRAME_HEADER: u8 = b'H';
pub(crate) const FRAME_UNITS: u8 = b'U';
pub(crate) const FRAME_FOOTER: u8 = b'F';

const SALVAGE_HINT: &str = "recover readable units with `simprof trace-info --salvage <file>` \
     or rewrite with `simprof trace-repair <in> <out>`";

/// Trace provenance and profiler geometry, written as the header frame so
/// readers know the unit size before the first unit arrives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Workload label (`wc_sp`, …).
    pub label: String,
    /// Seed the profiled run used.
    pub seed: u64,
    /// Scale preset name ("paper" / "tiny").
    pub scale: String,
    /// Sampling-unit size in instructions.
    pub unit_instrs: u64,
    /// Call-stack snapshot period in instructions.
    pub snapshot_instrs: u64,
    /// The core whose executor thread was profiled.
    pub core: usize,
}

/// Trace summary written as the final frame, locatable from the file tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFooter {
    /// Schema version (see [`FORMAT_VERSION`]); matches the file's layout
    /// version.
    pub version: u32,
    /// Number of sampling units in the file.
    pub unit_count: u64,
    /// Highest method id in any unit's histogram, plus one.
    pub method_universe: usize,
    /// Total instructions across all units.
    pub total_instrs: u64,
    /// Total cycles across all units.
    pub total_cycles: u64,
    /// Units whose profiled executor crashed mid-unit.
    pub truncated_units: u64,
    /// Call-stack snapshots dropped across all units.
    pub dropped_snapshots: u64,
    /// Method names/classes for the trace's method ids.
    pub registry: MethodRegistry,
}

/// True when the file at `path` starts with a chunked-trace magic (either
/// layout version) — the sniff the CLI uses to auto-detect the input
/// format.
pub fn is_chunked(path: &str) -> bool {
    let mut head = [0u8; 8];
    match File::open(path) {
        Ok(mut f) => {
            f.read_exact(&mut head).is_ok()
                && (&head == MAGIC || &head == MAGIC_V1 || &head == MAGIC_V3)
        }
        Err(_) => false,
    }
}

/// The magic for a given layout version.
pub(crate) fn magic_for(layout_version: u32) -> &'static [u8; 8] {
    match layout_version {
        1 => MAGIC_V1,
        3 => MAGIC_V3,
        _ => MAGIC,
    }
}

fn io_err(path: &str, what: &str, e: std::io::Error) -> String {
    format!("{what} {path}: {e}")
}

/// Bounded retry-with-backoff for transient sink I/O errors.
///
/// Each failed frame commit is retried up to `max_retries` times, sleeping
/// `backoff_ms << attempt` between attempts (shift capped at 6). Retries
/// are safe because frames are whole-buffer writes at an explicit offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per failed I/O operation before giving up (latching the
    /// error and degrading to memory-only collection upstream).
    pub max_retries: u32,
    /// Base backoff in milliseconds; doubles per attempt. Zero disables
    /// sleeping (useful under deterministic test chaos).
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 3, backoff_ms: 1 }
    }
}

impl RetryPolicy {
    /// No retries: every I/O error is immediately fatal to the sink.
    pub fn none() -> Self {
        Self { max_retries: 0, backoff_ms: 0 }
    }
}

/// A streaming [`UnitSink`] that frames sampling units to a `Write + Seek`
/// stream (a file by default) in chunks.
///
/// Units are buffered until a chunk fills, then written as one `'U'` frame;
/// footer statistics accumulate incrementally, so nothing grows with trace
/// length except the file. Because [`UnitSink::accept`] cannot fail, I/O
/// errors are *latched* after the [`RetryPolicy`] is exhausted: the writer
/// goes inert, [`UnitSink::healthy`] turns false, and the stored error
/// surfaces from [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek = File> {
    out: W,
    target: String,
    pos: u64,
    scratch: Vec<u8>,
    buf: Vec<SamplingUnit>,
    chunk_units: usize,
    retry: RetryPolicy,
    retries: u64,
    degraded: bool,
    unit_count: u64,
    method_universe: usize,
    total_instrs: u64,
    total_cycles: u64,
    truncated_units: u64,
    dropped_snapshots: u64,
    error: Option<String>,
    finished: bool,
    layout: u32,
    codec: Codec,
}

impl TraceWriter<File> {
    /// Creates the file at `path` and writes the v2 magic + header frame.
    pub fn create(path: &str, meta: &TraceMeta) -> Result<Self, String> {
        let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
        Self::from_writer_versioned(file, path, meta, 2, Codec::Raw)
    }

    /// Creates a file in the original (v1, CRC-less) layout. Exists so
    /// compatibility with pre-v2 readers and files stays testable; new
    /// traces should use [`TraceWriter::create`].
    pub fn create_legacy_v1(path: &str, meta: &TraceMeta) -> Result<Self, String> {
        let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
        Self::from_writer_versioned(file, path, meta, 1, Codec::Raw)
    }

    /// Creates the file at `path` in the v3 layout, encoding every frame
    /// under `codec` (with per-frame raw fallback — see [`codec`]).
    pub fn create_compressed(path: &str, meta: &TraceMeta, codec: Codec) -> Result<Self, String> {
        let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
        Self::from_writer_versioned(file, path, meta, 3, codec)
    }
}

impl TraceWriter<Cursor<Vec<u8>>> {
    /// An in-memory writer (backed by a `Cursor<Vec<u8>>`), for tests and
    /// chaos pipelines that never touch disk.
    pub fn in_memory(meta: &TraceMeta) -> Result<Self, String> {
        Self::from_writer(Cursor::new(Vec::new()), "<memory>", meta)
    }

    /// An in-memory v3 writer with the given frame codec.
    pub fn in_memory_compressed(meta: &TraceMeta, codec: Codec) -> Result<Self, String> {
        Self::from_writer_versioned(Cursor::new(Vec::new()), "<memory>", meta, 3, codec)
    }

    /// Unwraps the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out.into_inner()
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a v2 trace on an arbitrary `Write + Seek` stream (assumed to
    /// be positioned at offset 0). `target` names the stream in errors and
    /// events.
    pub fn from_writer(out: W, target: &str, meta: &TraceMeta) -> Result<Self, String> {
        Self::from_writer_versioned(out, target, meta, 2, Codec::Raw)
    }

    /// Starts a v3 trace on an arbitrary stream, encoding frames under
    /// `codec`.
    pub fn from_writer_compressed(
        out: W,
        target: &str,
        meta: &TraceMeta,
        codec: Codec,
    ) -> Result<Self, String> {
        Self::from_writer_versioned(out, target, meta, 3, codec)
    }

    fn from_writer_versioned(
        out: W,
        target: &str,
        meta: &TraceMeta,
        layout: u32,
        codec: Codec,
    ) -> Result<Self, String> {
        let mut this = Self {
            out,
            target: target.to_owned(),
            pos: 0,
            scratch: Vec::new(),
            buf: Vec::new(),
            chunk_units: DEFAULT_CHUNK_UNITS,
            retry: RetryPolicy::default(),
            retries: 0,
            degraded: false,
            unit_count: 0,
            method_universe: 0,
            total_instrs: 0,
            total_cycles: 0,
            truncated_units: 0,
            dropped_snapshots: 0,
            error: None,
            finished: false,
            layout,
            codec,
        };
        this.scratch.extend_from_slice(magic_for(layout));
        this.commit_scratch()?;
        let header =
            serde_json::to_string(meta).map_err(|e| format!("encode trace header: {e}"))?;
        this.write_frame(FRAME_HEADER, header.as_bytes())?;
        Ok(this)
    }

    /// Overrides the chunk size (units per `'U'` frame); `n` is clamped to
    /// at least 1.
    pub fn with_chunk_units(mut self, n: usize) -> Self {
        self.chunk_units = n.max(1);
        self
    }

    /// Overrides the transient-error retry policy (default: 3 retries,
    /// 1 ms doubling backoff).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Units pushed so far.
    pub fn unit_count(&self) -> u64 {
        self.unit_count
    }

    /// The layout version this writer produces (1, 2, or 3).
    pub fn layout_version(&self) -> u32 {
        self.layout
    }

    /// The frame codec this writer applies (always [`Codec::Raw`] below
    /// v3).
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The latched I/O error, if writing has already failed.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Transient-error retries performed so far (successful or not).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// True once an I/O operation exhausted its retries.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Unwraps the underlying stream (e.g. to recover a chaos wrapper's
    /// fault counts, or an in-memory cursor's bytes).
    pub fn into_writer(self) -> W {
        self.out
    }

    /// Buffers one unit, flushing a chunk frame when the buffer fills.
    pub fn push(&mut self, unit: &SamplingUnit) {
        if self.error.is_some() || self.finished {
            return;
        }
        self.unit_count += 1;
        for &(m, _) in &unit.histogram {
            self.method_universe = self.method_universe.max(m.index() + 1);
        }
        self.total_instrs += unit.counters.instructions;
        self.total_cycles += unit.counters.cycles;
        self.truncated_units += u64::from(unit.truncated);
        self.dropped_snapshots += u64::from(unit.dropped_snapshots);
        self.buf.push(unit.clone());
        if self.buf.len() >= self.chunk_units {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        if self.buf.is_empty() || self.error.is_some() {
            return;
        }
        let payload = match serde_json::to_string(&self.buf) {
            Ok(p) => p,
            Err(e) => {
                self.error = Some(format!("encode trace chunk: {e}"));
                return;
            }
        };
        self.buf.clear();
        if let Err(e) = self.write_frame(FRAME_UNITS, payload.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Frames `payload` into the scratch buffer (with CRC on v2+, and the
    /// codec byte + stored encoding on v3) and commits it. Returns the
    /// frame's *stored* payload length — what the trailer records for the
    /// footer frame.
    fn write_frame(&mut self, kind: u8, payload: &[u8]) -> Result<u32, String> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(format!(
                "write {}: frame over the {} MiB cap (shrink the chunk size)",
                self.target,
                MAX_FRAME_LEN >> 20
            ));
        }
        self.scratch.clear();
        self.scratch.push(kind);
        let len = if self.layout >= 3 {
            // Per-frame raw fallback inside `encode` guarantees the
            // stored form never exceeds the (already capped) raw form.
            let (codec_id, stored) = codec::encode(self.codec, payload);
            let len = stored.len() as u32;
            self.scratch.push(codec_id);
            self.scratch.extend_from_slice(&len.to_le_bytes());
            self.scratch.extend_from_slice(&stored);
            len
        } else {
            let len = payload.len() as u32;
            self.scratch.extend_from_slice(&len.to_le_bytes());
            self.scratch.extend_from_slice(payload);
            len
        };
        if self.layout >= 2 {
            let crc = crc32::crc32(&self.scratch);
            self.scratch.extend_from_slice(&crc.to_le_bytes());
        }
        self.commit_scratch()?;
        Ok(len)
    }

    /// Writes the scratch buffer at the current logical offset, retrying
    /// per policy. Seek-then-write makes the retry idempotent: a partial
    /// write is simply overwritten from the frame's start.
    fn commit_scratch(&mut self) -> Result<(), String> {
        let scratch = std::mem::take(&mut self.scratch);
        let pos = self.pos;
        let res = self.retrying("write", |out| {
            out.seek(SeekFrom::Start(pos))?;
            out.write_all(&scratch)
        });
        if res.is_ok() {
            self.pos += scratch.len() as u64;
        }
        self.scratch = scratch;
        res
    }

    fn retrying<T>(
        &mut self,
        what: &str,
        mut op: impl FnMut(&mut W) -> std::io::Result<T>,
    ) -> Result<T, String> {
        let mut attempt = 0u32;
        loop {
            match op(&mut self.out) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt >= self.retry.max_retries {
                        self.degraded = true;
                        simprof_obs::counter_add("sink.degraded", 1);
                        simprof_obs::sink_degraded(
                            &self.target,
                            u64::from(attempt),
                            &e.to_string(),
                        );
                        return Err(format!(
                            "{what} {}: {e} (gave up after {attempt} retries)",
                            self.target
                        ));
                    }
                    attempt += 1;
                    self.retries += 1;
                    simprof_obs::counter_add("sink.retries", 1);
                    simprof_obs::sink_retry(&self.target, u64::from(attempt), &e.to_string());
                    if self.retry.backoff_ms > 0 {
                        let shift = (attempt - 1).min(6);
                        std::thread::sleep(std::time::Duration::from_millis(
                            self.retry.backoff_ms << shift,
                        ));
                    }
                }
            }
        }
    }

    /// Flushes the tail chunk, writes the footer frame + trailer, and syncs
    /// the stream. Returns the footer it wrote. The registry arrives here —
    /// not at `create` — because methods are interned while the profiled
    /// job runs.
    ///
    /// Errors if writing already failed ([latched](TraceWriter::error)) or
    /// `finish` was already called.
    pub fn finish(&mut self, registry: &MethodRegistry) -> Result<TraceFooter, String> {
        if self.finished {
            return Err(format!("trace writer for {} already finished", self.target));
        }
        self.flush_chunk();
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let footer = TraceFooter {
            version: self.layout,
            unit_count: self.unit_count,
            method_universe: self.method_universe,
            total_instrs: self.total_instrs,
            total_cycles: self.total_cycles,
            truncated_units: self.truncated_units,
            dropped_snapshots: self.dropped_snapshots,
            registry: registry.clone(),
        };
        let payload =
            serde_json::to_string(&footer).map_err(|e| format!("encode trace footer: {e}"))?;
        // The trailer records the footer's *stored* length so the tail
        // seek stays O(1) even when the footer frame is compressed.
        let stored_len = self.write_frame(FRAME_FOOTER, payload.as_bytes())?;
        self.scratch.clear();
        self.scratch.extend_from_slice(&stored_len.to_le_bytes());
        self.scratch.extend_from_slice(magic_for(self.layout));
        self.commit_scratch()?;
        self.retrying("flush", |out| out.flush())?;
        self.finished = true;
        Ok(footer)
    }
}

impl<W: Write + Seek + std::fmt::Debug> UnitSink for TraceWriter<W> {
    fn accept(&mut self, unit: &SamplingUnit) {
        self.push(unit);
    }

    fn finish(&mut self) {
        // Sink-path finish has no registry; only the buffered chunk is
        // flushed here. The owner still calls `TraceWriter::finish` with
        // the registry to seal the file.
        self.flush_chunk();
    }

    fn healthy(&self) -> bool {
        self.error.is_none()
    }
}

/// A streaming [`UnitStream`] over a chunked trace: holds one decoded
/// chunk at a time and rewinds by seeking back to the first unit frame.
/// Reads v3 (compressed), v2 (checksummed), and legacy v1 files,
/// negotiated from the magic.
#[derive(Debug)]
pub struct TraceReader<R: Read + Seek = BufReader<File>> {
    file: R,
    path: String,
    meta: TraceMeta,
    layout_version: u32,
    data_start: u64,
    chunk: Vec<SamplingUnit>,
    pos: usize,
    done: bool,
    /// Bitmask of codec ids observed in decoded frames (bit n = codec n).
    codecs_seen: u8,
    /// Stored (on-disk) payload bytes across frames decoded so far.
    stored_payload_bytes: u64,
    /// Decoded payload bytes across the same frames.
    raw_payload_bytes: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens `path`, validating the magic and reading the header frame.
    pub fn open(path: &str) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| io_err(path, "open", e))?;
        Self::from_reader(BufReader::new(file), path)
    }

    /// Salvages `path` instead of opening it strictly: recovers every
    /// intact chunk from a truncated or corrupted trace. See
    /// [`salvage_bytes`] for the contract.
    pub fn open_salvage(path: &str) -> Result<Salvage, String> {
        let data = std::fs::read(path).map_err(|e| io_err(path, "read", e))?;
        salvage::salvage_bytes(&data, path)
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Opens a trace on an arbitrary `Read + Seek` stream (positioned at
    /// offset 0). `path` names the stream in errors.
    pub fn from_reader(mut file: R, path: &str) -> Result<Self, String> {
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                format!("{path}: truncated trace (shorter than the 8-byte magic); {SALVAGE_HINT}")
            } else {
                io_err(path, "read", e)
            }
        })?;
        let layout_version = if &magic == MAGIC {
            2
        } else if &magic == MAGIC_V1 {
            1
        } else if &magic == MAGIC_V3 {
            3
        } else {
            return Err(format!(
                "{path}: not a chunked simprof trace (bad magic {magic:?}; expected {MAGIC:?})"
            ));
        };
        let (kind, payload, codec_id, stored_len) = read_frame(&mut file, path, layout_version)?;
        if kind != FRAME_HEADER {
            return Err(format!("{path}: expected header frame, found {:?}", kind as char));
        }
        let raw_len = payload.len() as u64;
        let meta: TraceMeta = parse_payload(path, "header", &payload)?;
        let data_start = file.stream_position().map_err(|e| io_err(path, "seek", e))?;
        Ok(Self {
            file,
            path: path.to_owned(),
            meta,
            layout_version,
            data_start,
            chunk: Vec::new(),
            pos: 0,
            done: false,
            codecs_seen: 1 << codec_id.min(7),
            stored_payload_bytes: stored_len,
            raw_payload_bytes: raw_len,
        })
    }

    /// The header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The layout version negotiated from the magic (1, 2, or 3).
    pub fn layout_version(&self) -> u32 {
        self.layout_version
    }

    /// Names of the frame codecs observed so far (v1/v2 frames count as
    /// `raw`). Grows as frames are decoded — read the footer and stream
    /// the units first for full coverage.
    pub fn codecs_seen(&self) -> Vec<&'static str> {
        (0u8..8)
            .filter(|&id| self.codecs_seen & (1 << id) != 0)
            .filter_map(codec::codec_name)
            .collect()
    }

    /// `(stored, raw)` payload byte totals across the frames decoded so
    /// far — the compression accounting. Like [`codecs_seen`], the
    /// totals grow as frames are decoded: read the footer and stream the
    /// units first for full coverage. For v1/v2 files stored equals raw.
    ///
    /// [`codecs_seen`]: TraceReader::codecs_seen
    pub fn payload_bytes(&self) -> (u64, u64) {
        (self.stored_payload_bytes, self.raw_payload_bytes)
    }

    /// Reads the footer via the 12-byte trailer (seek from end), leaving
    /// the streaming position untouched.
    pub fn footer(&mut self) -> Result<TraceFooter, String> {
        let saved = self.file.stream_position().map_err(|e| io_err(&self.path, "seek", e))?;
        let result = self.read_footer_at_tail();
        self.file.seek(SeekFrom::Start(saved)).map_err(|e| io_err(&self.path, "seek", e))?;
        result
    }

    fn read_footer_at_tail(&mut self) -> Result<TraceFooter, String> {
        let path = self.path.clone();
        let file_len = self.file.seek(SeekFrom::End(0)).map_err(|e| io_err(&path, "seek", e))?;
        if file_len < 12 {
            return Err(format!(
                "{path}: truncated trace ({file_len} bytes; no room for the 12-byte trailer); \
                 {SALVAGE_HINT}"
            ));
        }
        self.file.seek(SeekFrom::End(-12)).map_err(|e| io_err(&path, "seek", e))?;
        let mut trailer = [0u8; 12];
        self.file.read_exact(&mut trailer).map_err(|e| io_err(&path, "read", e))?;
        if &trailer[4..12] != magic_for(self.layout_version) {
            return Err(format!(
                "{path}: missing footer trailer (crash before finish, or truncation?); \
                 {SALVAGE_HINT}"
            ));
        }
        // The trailer's length is the footer frame's *stored* payload
        // length, so the seek arithmetic is exact even for compressed
        // footers: [kind][codec?][len][stored][crc?].
        let len = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as u64;
        let head_len: u64 = if self.layout_version >= 3 { 6 } else { 5 };
        let crc_len: u64 = if self.layout_version >= 2 { 4 } else { 0 };
        let frame_len = head_len + len + crc_len;
        if len > MAX_FRAME_LEN as u64 || frame_len + 12 > file_len {
            return Err(format!(
                "{path}: corrupt trailer (footer length {len} does not fit the {file_len}-byte \
                 file); {SALVAGE_HINT}"
            ));
        }
        self.file
            .seek(SeekFrom::End(-12 - frame_len as i64))
            .map_err(|e| io_err(&path, "seek", e))?;
        let (kind, payload, codec_id, stored_len) =
            read_frame(&mut self.file, &path, self.layout_version)?;
        self.codecs_seen |= 1 << codec_id.min(7);
        self.stored_payload_bytes += stored_len;
        self.raw_payload_bytes += payload.len() as u64;
        if kind != FRAME_FOOTER {
            return Err(format!(
                "{path}: corrupt footer frame (kind {:?}); {SALVAGE_HINT}",
                kind as char
            ));
        }
        let footer: TraceFooter = parse_payload(&path, "footer", &payload)?;
        if footer.version > FORMAT_VERSION {
            return Err(format!(
                "{path}: trace schema version {} was written by a newer simprof (this build \
                 reads up to {FORMAT_VERSION})",
                footer.version
            ));
        }
        if footer.version != self.layout_version {
            return Err(format!(
                "{path}: footer schema version {} does not match the file's v{} layout; \
                 {SALVAGE_HINT}",
                footer.version, self.layout_version
            ));
        }
        Ok(footer)
    }

    /// Restarts streaming at the first unit.
    pub fn rewind(&mut self) -> Result<(), String> {
        self.file
            .seek(SeekFrom::Start(self.data_start))
            .map_err(|e| io_err(&self.path, "seek", e))?;
        self.chunk.clear();
        self.pos = 0;
        self.done = false;
        Ok(())
    }

    /// Yields the next unit, decoding the next chunk frame when the current
    /// one is exhausted. Same operation as the [`UnitStream`] impl, callable
    /// without the trait in scope.
    pub fn next_unit(&mut self) -> Result<Option<&SamplingUnit>, String> {
        if self.pos >= self.chunk.len() && !self.load_chunk()? {
            return Ok(None);
        }
        let unit = &self.chunk[self.pos];
        self.pos += 1;
        Ok(Some(unit))
    }

    /// Loads the next non-empty unit chunk; returns `false` at the footer.
    fn load_chunk(&mut self) -> Result<bool, String> {
        loop {
            if self.done {
                return Ok(false);
            }
            let (kind, payload, codec_id, stored_len) =
                read_frame(&mut self.file, &self.path, self.layout_version)?;
            self.codecs_seen |= 1 << codec_id.min(7);
            self.stored_payload_bytes += stored_len;
            self.raw_payload_bytes += payload.len() as u64;
            match kind {
                FRAME_UNITS => {
                    let units: Vec<SamplingUnit> = parse_payload(&self.path, "chunk", &payload)?;
                    if units.is_empty() {
                        continue;
                    }
                    self.chunk = units;
                    self.pos = 0;
                    return Ok(true);
                }
                FRAME_FOOTER => {
                    self.done = true;
                    return Ok(false);
                }
                other => {
                    return Err(format!(
                        "{}: unknown frame kind {:?} mid-stream",
                        self.path, other as char
                    ));
                }
            }
        }
    }
}

impl<R: Read + Seek> UnitStream for TraceReader<R> {
    fn unit_instrs(&self) -> u64 {
        self.meta.unit_instrs
    }

    fn snapshot_instrs(&self) -> u64 {
        self.meta.snapshot_instrs
    }

    fn core(&self) -> usize {
        self.meta.core
    }

    fn rewind(&mut self) -> Result<(), String> {
        TraceReader::rewind(self)
    }

    fn next_unit(&mut self) -> Result<Option<&SamplingUnit>, String> {
        TraceReader::next_unit(self)
    }
}

/// Convenience for whole-trace consumers: materializes the file into a
/// [`ProfileTrace`] (one chunk in flight at a time) and returns the footer.
pub fn read_trace(path: &str) -> Result<(ProfileTrace, TraceFooter), String> {
    let mut reader = TraceReader::open(path)?;
    let footer = reader.footer()?;
    let mut units = Vec::new();
    while let Some(unit) = reader.next_unit()? {
        units.push(unit.clone());
    }
    let meta = reader.meta();
    let trace = ProfileTrace {
        unit_instrs: meta.unit_instrs,
        snapshot_instrs: meta.snapshot_instrs,
        core: meta.core,
        units,
    };
    Ok((trace, footer))
}

/// Reads one frame, returning its kind, decoded payload, and codec id
/// (always [`codec::CODEC_RAW`] below v3). Validates the length against
/// [`MAX_FRAME_LEN`] *before* allocating, verifies the frame's CRC32
/// (v2+) over the *stored* bytes, and only then decompresses (v3) — so a
/// corrupt frame fails the checksum, not the decompressor.
/// Reads one frame, returning `(kind, decoded payload, codec id, stored
/// payload length)`. The stored length is what the frame occupies on
/// disk before decoding, so readers can account compression without
/// re-encoding.
fn read_frame<R: Read>(
    file: &mut R,
    path: &str,
    layout_version: u32,
) -> Result<(u8, Vec<u8>, u8, u64), String> {
    let mut kind = [0u8; 1];
    file.read_exact(&mut kind).map_err(|e| io_err(path, "read", e))?;
    let mut codec_byte = [codec::CODEC_RAW; 1];
    if layout_version >= 3 {
        file.read_exact(&mut codec_byte).map_err(|e| io_err(path, "read", e))?;
    }
    let mut len_bytes = [0u8; 4];
    file.read_exact(&mut len_bytes).map_err(|e| io_err(path, "read", e))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(format!(
            "{path}: frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap (corrupt or \
             hostile trace); {SALVAGE_HINT}"
        ));
    }
    let mut stored = vec![0u8; len];
    file.read_exact(&mut stored).map_err(|e| io_err(path, "read", e))?;
    if layout_version >= 2 {
        let mut crc_bytes = [0u8; 4];
        file.read_exact(&mut crc_bytes).map_err(|e| io_err(path, "read", e))?;
        let expected = u32::from_le_bytes(crc_bytes);
        let mut hasher = crc32::Hasher::new();
        hasher.update(&kind);
        if layout_version >= 3 {
            hasher.update(&codec_byte);
        }
        hasher.update(&len_bytes);
        hasher.update(&stored);
        let actual = hasher.finalize();
        if actual != expected {
            return Err(format!(
                "{path}: frame checksum mismatch (stored {expected:#010x}, computed \
                 {actual:#010x}); {SALVAGE_HINT}"
            ));
        }
    }
    let payload = if layout_version >= 3 {
        codec::decode(codec_byte[0], &stored, MAX_FRAME_LEN)
            .map_err(|e| format!("{path}: decode frame: {e}; {SALVAGE_HINT}"))?
    } else {
        stored
    };
    Ok((kind[0], payload, codec_byte[0], len as u64))
}

pub(crate) fn parse_payload<T: Deserialize>(
    path: &str,
    what: &str,
    payload: &[u8],
) -> Result<T, String> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| format!("{path}: {what} frame is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("{path}: parse {what} frame: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::methods::OpClass;
    use simprof_engine::MethodId;
    use simprof_sim::Counters;

    fn unit(id: u64) -> SamplingUnit {
        SamplingUnit {
            id,
            histogram: vec![(MethodId((id % 5) as u32), 4), (MethodId(7), 2)],
            snapshots: 6,
            counters: Counters {
                instructions: 1000 + id,
                cycles: 1500 + 3 * id,
                ..Default::default()
            },
            slices: vec![(500, 700), (500 + id, 800)],
            truncated: id % 3 == 0,
            dropped_snapshots: (id % 4) as u32,
        }
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            label: "wc_sp".into(),
            seed: 42,
            scale: "tiny".into(),
            unit_instrs: 1000,
            snapshot_instrs: 100,
            core: 0,
        }
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir().join(name).to_str().unwrap().to_owned()
    }

    /// Seals `n` units into in-memory v2 trace bytes.
    fn memory_trace(n: u64, chunk: usize) -> Vec<u8> {
        let mut w = TraceWriter::in_memory(&meta()).unwrap().with_chunk_units(chunk);
        for id in 0..n {
            w.push(&unit(id));
        }
        w.finish(&MethodRegistry::new()).unwrap();
        w.into_bytes()
    }

    #[test]
    fn writes_and_streams_back_across_chunk_boundaries() {
        let path = tmp("simprof_trace_chunks.sptrc");
        let mut reg = MethodRegistry::new();
        reg.intern("Mapper.map", OpClass::Map);
        let mut w = TraceWriter::create(&path, &meta()).unwrap().with_chunk_units(4);
        for id in 0..11 {
            w.push(&unit(id));
        }
        let footer = w.finish(&reg).unwrap();
        assert_eq!(footer.unit_count, 11);
        assert_eq!(footer.method_universe, 8);
        assert_eq!(footer.total_instrs, (0..11).map(|i| 1000 + i).sum::<u64>());
        assert_eq!(footer.truncated_units, 4);
        assert_eq!(footer.registry.len(), 1);

        assert!(is_chunked(&path));
        let mut r = TraceReader::open(&path).unwrap();
        assert_eq!(r.meta().label, "wc_sp");
        assert_eq!(r.layout_version(), 2);
        assert_eq!(r.footer().unwrap(), footer);
        let mut ids = Vec::new();
        while let Some(u) = r.next_unit().unwrap() {
            ids.push(u.id);
        }
        assert_eq!(ids, (0..11).collect::<Vec<u64>>());
        // Footer read mid-stream must not disturb the cursor.
        r.rewind().unwrap();
        let _ = r.next_unit().unwrap();
        let _ = r.footer().unwrap();
        assert_eq!(r.next_unit().unwrap().unwrap().id, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_trace_materializes_bit_identically() {
        let path = tmp("simprof_trace_materialize.sptrc");
        let expected: Vec<SamplingUnit> = (0..9).map(unit).collect();
        let mut w = TraceWriter::create(&path, &meta()).unwrap().with_chunk_units(2);
        for u in &expected {
            w.push(u);
        }
        w.finish(&MethodRegistry::new()).unwrap();
        let (trace, footer) = read_trace(&path).unwrap();
        assert_eq!(trace.units, expected);
        assert_eq!(trace.unit_instrs, 1000);
        assert_eq!(footer.unit_count, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let path = tmp("simprof_trace_empty.sptrc");
        let mut w = TraceWriter::create(&path, &meta()).unwrap();
        let footer = w.finish(&MethodRegistry::new()).unwrap();
        assert_eq!(footer.unit_count, 0);
        // The default writer stays on the v2 layout; v3 is opt-in.
        assert_eq!(footer.version, 2);
        let (trace, _) = read_trace(&path).unwrap();
        assert!(trace.units.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn double_finish_rejected() {
        let path = tmp("simprof_trace_double_finish.sptrc");
        let mut w = TraceWriter::create(&path, &meta()).unwrap();
        w.finish(&MethodRegistry::new()).unwrap();
        assert!(w.finish(&MethodRegistry::new()).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_trace_files_rejected() {
        let path = tmp("simprof_trace_not_a_trace.json");
        std::fs::write(&path, "{\"version\":1}").unwrap();
        assert!(!is_chunked(&path));
        let err = TraceReader::open(&path).unwrap_err();
        assert!(err.contains("bad magic"), "{err}");
        assert!(!is_chunked("/nonexistent/simprof.sptrc"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unfinished_file_has_no_footer() {
        let path = tmp("simprof_trace_unfinished.sptrc");
        let mut w = TraceWriter::create(&path, &meta()).unwrap().with_chunk_units(1);
        w.push(&unit(0));
        // Drop without finish: units are on disk, the trailer is not.
        drop(w);
        let mut r = TraceReader::open(&path).unwrap();
        let err = r.footer().unwrap_err();
        assert!(err.contains("trace-repair"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v1_files_still_read() {
        let path = tmp("simprof_trace_legacy_v1.sptrc");
        let mut reg = MethodRegistry::new();
        reg.intern("Mapper.map", OpClass::Map);
        let mut w = TraceWriter::create_legacy_v1(&path, &meta()).unwrap().with_chunk_units(3);
        for id in 0..7 {
            w.push(&unit(id));
        }
        let footer = w.finish(&reg).unwrap();
        assert_eq!(footer.version, 1);
        // The file leads with the v1 magic and contains no CRCs, yet the
        // v2 reader negotiates it transparently.
        let head = &std::fs::read(&path).unwrap()[..8];
        assert_eq!(head, MAGIC_V1);
        assert!(is_chunked(&path));
        let mut r = TraceReader::open(&path).unwrap();
        assert_eq!(r.layout_version(), 1);
        assert_eq!(r.footer().unwrap(), footer);
        let (trace, _) = read_trace(&path).unwrap();
        assert_eq!(trace.units, (0..7).map(unit).collect::<Vec<_>>());
        let _ = std::fs::remove_file(&path);
    }

    /// Seals `n` units into in-memory v3 trace bytes under `codec`.
    fn memory_trace_v3(n: u64, chunk: usize, codec: Codec) -> Vec<u8> {
        let mut w =
            TraceWriter::in_memory_compressed(&meta(), codec).unwrap().with_chunk_units(chunk);
        for id in 0..n {
            w.push(&unit(id));
        }
        w.finish(&MethodRegistry::new()).unwrap();
        w.into_bytes()
    }

    #[test]
    fn v3_lz_trace_roundtrips_and_shrinks() {
        let raw = memory_trace_v3(64, 8, Codec::Raw);
        let lz = memory_trace_v3(64, 8, Codec::Lz);
        assert_eq!(&raw[..8], MAGIC_V3);
        assert_eq!(&lz[..8], MAGIC_V3);
        assert!(
            lz.len() < raw.len() * 3 / 4,
            "chunked JSON should compress well: raw {} vs lz {}",
            raw.len(),
            lz.len()
        );
        for bytes in [raw, lz] {
            let mut r = TraceReader::from_reader(Cursor::new(bytes), "<memory>").unwrap();
            assert_eq!(r.layout_version(), 3);
            let footer = r.footer().unwrap();
            assert_eq!(footer.version, 3);
            assert_eq!(footer.unit_count, 64);
            let mut ids = Vec::new();
            while let Some(u) = r.next_unit().unwrap() {
                ids.push(u.id);
            }
            assert_eq!(ids, (0..64).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn v3_writes_are_deterministic() {
        assert_eq!(memory_trace_v3(32, 4, Codec::Lz), memory_trace_v3(32, 4, Codec::Lz));
    }

    #[test]
    fn v3_reader_reports_codecs_seen() {
        let bytes = memory_trace_v3(16, 4, Codec::Lz);
        let mut r = TraceReader::from_reader(Cursor::new(bytes), "<memory>").unwrap();
        let _ = r.footer().unwrap();
        while r.next_unit().unwrap().is_some() {}
        // Chunks compress (lz); the tiny header typically stores raw.
        assert!(r.codecs_seen().contains(&"lz"), "codecs: {:?}", r.codecs_seen());

        let bytes = memory_trace(6, 2);
        let mut r = TraceReader::from_reader(Cursor::new(bytes), "<memory>").unwrap();
        while r.next_unit().unwrap().is_some() {}
        assert_eq!(r.codecs_seen(), vec!["raw"], "v2 frames count as raw");
    }

    #[test]
    fn v3_file_roundtrips_through_create_compressed() {
        let path = tmp("simprof_trace_v3_file.sptrc");
        let mut reg = MethodRegistry::new();
        reg.intern("Mapper.map", OpClass::Map);
        let mut w =
            TraceWriter::create_compressed(&path, &meta(), Codec::Lz).unwrap().with_chunk_units(5);
        assert_eq!(w.layout_version(), 3);
        assert_eq!(w.codec(), Codec::Lz);
        for id in 0..23 {
            w.push(&unit(id));
        }
        let footer = w.finish(&reg).unwrap();
        assert!(is_chunked(&path));
        let (trace, read_footer) = read_trace(&path).unwrap();
        assert_eq!(read_footer, footer);
        assert_eq!(trace.units, (0..23).map(unit).collect::<Vec<_>>());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v3_flipped_stored_byte_fails_the_checksum_not_the_decompressor() {
        let mut bytes = memory_trace_v3(32, 8, Codec::Lz);
        let target = bytes.len() / 2;
        bytes[target] ^= 0x10;
        let mut r = TraceReader::from_reader(Cursor::new(bytes), "<memory>").unwrap();
        let mut err = None;
        loop {
            match r.next_unit() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let err = err.expect("corrupted compressed frame must error");
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn in_memory_writer_roundtrips_through_from_reader() {
        let bytes = memory_trace(9, 4);
        assert_eq!(&bytes[..8], MAGIC);
        let mut r = TraceReader::from_reader(Cursor::new(bytes), "<memory>").unwrap();
        let footer = r.footer().unwrap();
        assert_eq!(footer.unit_count, 9);
        let mut ids = Vec::new();
        while let Some(u) = r.next_unit().unwrap() {
            ids.push(u.id);
        }
        assert_eq!(ids, (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn hostile_frame_length_is_capped_before_allocation() {
        // Magic + a frame claiming a ~4 GiB payload: must error on the
        // cap, not attempt the allocation.
        let mut bytes = MAGIC.to_vec();
        bytes.push(FRAME_HEADER);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = TraceReader::from_reader(Cursor::new(bytes), "<memory>").unwrap_err();
        assert!(err.contains("exceeds the"), "{err}");
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn flipped_payload_byte_fails_the_frame_checksum() {
        let mut bytes = memory_trace(6, 2);
        // Flip one bit inside the first unit chunk's JSON payload (the
        // header frame ends well before 120 bytes on this tiny meta).
        let target = bytes.len() / 2;
        bytes[target] ^= 0x01;
        let mut r = TraceReader::from_reader(Cursor::new(bytes), "<memory>").unwrap();
        let mut err = None;
        loop {
            match r.next_unit() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let err = err.expect("corruption must surface as an error, not silent data");
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn short_files_get_truncation_errors_not_seek_errors() {
        let path = tmp("simprof_trace_short.sptrc");
        std::fs::write(&path, &MAGIC[..5]).unwrap();
        let err = TraceReader::open(&path).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains("--salvage"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_trailer_len_is_a_clear_corruption_error() {
        let path = tmp("simprof_trace_bad_trailer.sptrc");
        let mut bytes = memory_trace(3, 2);
        // Patch the trailer's footer-length field to exceed the file size.
        let n = bytes.len();
        bytes[n - 12..n - 8].copy_from_slice(&0x00FF_FFFFu32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        let err = r.footer().unwrap_err();
        assert!(err.contains("corrupt trailer"), "{err}");
        assert!(err.contains("--salvage"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_write_errors_are_retried_to_success() {
        let plan = ChaosPlan { write_error_ppm: 250_000, ..ChaosPlan::none(11) };
        let chaos = ChaosWriter::new(Cursor::new(Vec::new()), plan);
        let mut w = TraceWriter::from_writer(chaos, "<chaos>", &meta())
            .unwrap()
            .with_chunk_units(2)
            .with_retry(RetryPolicy { max_retries: 8, backoff_ms: 0 });
        for id in 0..10 {
            w.push(&unit(id));
        }
        let footer = w.finish(&MethodRegistry::new()).unwrap();
        assert_eq!(footer.unit_count, 10);
        assert!(w.retries() > 0, "chaos at 25% per op should have forced retries");
        assert!(!w.degraded());
        assert!(w.error().is_none());
        // The surviving bytes are a perfectly valid trace.
        let bytes = w.into_writer().into_inner().into_inner();
        let mut r = TraceReader::from_reader(Cursor::new(bytes), "<chaos>").unwrap();
        assert_eq!(r.footer().unwrap().unit_count, 10);
        let mut n = 0;
        while r.next_unit().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn persistent_write_errors_latch_and_degrade() {
        let plan = ChaosPlan { write_error_ppm: 1_000_000, ..ChaosPlan::none(5) };
        let chaos = ChaosWriter::new(Cursor::new(Vec::new()), plan);
        let err = TraceWriter::from_writer(chaos, "<chaos>", &meta())
            .expect_err("always-failing writer cannot even write the magic");
        assert!(err.contains("gave up after"), "{err}");
    }

    #[test]
    fn sink_path_latches_instead_of_panicking() {
        let plan = ChaosPlan { write_error_ppm: 1_000_000, ..ChaosPlan::none(5) };
        // Let construction succeed (no faults), then make every later
        // write fail: push must latch, not panic, and finish must report.
        let mut w = TraceWriter::from_writer(Cursor::new(Vec::new()), "<memory>", &meta())
            .unwrap()
            .with_chunk_units(1)
            .with_retry(RetryPolicy::none());
        // Swap in a chaos stream by rebuilding around the same bytes.
        let bytes = std::mem::replace(&mut w.out, Cursor::new(Vec::new())).into_inner();
        let pos = w.pos;
        let mut chaos = ChaosWriter::new(Cursor::new(bytes), plan);
        chaos.seek(SeekFrom::Start(pos)).unwrap();
        let mut w2 = TraceWriter {
            out: chaos,
            target: w.target.clone(),
            pos,
            scratch: Vec::new(),
            buf: Vec::new(),
            chunk_units: 1,
            retry: RetryPolicy::none(),
            retries: 0,
            degraded: false,
            unit_count: 0,
            method_universe: 0,
            total_instrs: 0,
            total_cycles: 0,
            truncated_units: 0,
            dropped_snapshots: 0,
            error: None,
            finished: false,
            layout: 2,
            codec: Codec::Raw,
        };
        w2.push(&unit(0));
        assert!(w2.error().is_some());
        assert!(w2.degraded());
        assert!(!UnitSink::healthy(&w2));
        // Further pushes are inert, and finish surfaces the latched error.
        w2.push(&unit(1));
        assert_eq!(w2.unit_count(), 1);
        let err = w2.finish(&MethodRegistry::new()).unwrap_err();
        assert!(err.contains("gave up after"), "{err}");
    }
}
