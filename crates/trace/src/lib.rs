//! The `.sptrc` chunked on-disk trace format (DESIGN.md §12).
//!
//! The legacy persistence format (`simprof-cli`'s JSON `TraceBundle`) is one
//! monolithic blob: writing it needs the whole [`ProfileTrace`] in memory
//! and reading it parses everything before the first unit is usable. This
//! crate replaces that with a *streaming* format:
//!
//! * [`TraceWriter`] is a [`UnitSink`]: attach it to a `SamplingManager`
//!   and units are framed to disk in fixed-size chunks while the engine is
//!   still running. Peak memory is one chunk, not one trace.
//! * [`TraceReader`] is a [`UnitStream`]: the two-pass analysis pipeline in
//!   `simprof-core` reads units chunk by chunk, twice, without ever
//!   materializing the trace.
//! * [`TraceFooter`] carries the summary a consumer wants *before* (or
//!   without) scanning units — unit count, method universe, totals, the
//!   method registry — and is reachable by seeking to the file's tail.
//!
//! ## Layout
//!
//! ```text
//! [MAGIC: 8 bytes "SPTRC\x00v1"]
//! [frame 'H'] header: TraceMeta as compact JSON
//! [frame 'U']*       chunks: Vec<SamplingUnit> as compact JSON
//! [frame 'F'] footer: TraceFooter as compact JSON
//! [footer payload length: u32 LE] [MAGIC]            ← 12-byte trailer
//! ```
//!
//! Every frame is `[kind: u8] [payload length: u32 LE] [payload]`. The
//! trailer lets a reader locate the footer from the end of the file in
//! three reads, so `trace-info` on a multi-gigabyte trace is O(1).
//!
//! ## Version negotiation
//!
//! The format version lives in two places on purpose: the magic's trailing
//! `v1` (an incompatible layout change bumps it, and old readers reject the
//! file at the first 8 bytes) and [`TraceFooter::version`] (compatible
//! schema evolution inside frames; readers check it equals
//! [`FORMAT_VERSION`]). Unknown frame kinds are an error — the format has
//! no optional frames in v1.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};

use serde::{Deserialize, Serialize};

use simprof_engine::MethodRegistry;
use simprof_profiler::sink::UnitSink;
use simprof_profiler::stream::UnitStream;
use simprof_profiler::trace::{ProfileTrace, SamplingUnit};

/// Leading (and trailing) magic bytes; the `v1` suffix is the layout
/// version.
pub const MAGIC: &[u8; 8] = b"SPTRC\0v1";

/// Schema version written into every footer.
pub const FORMAT_VERSION: u32 = 1;

/// Units buffered per on-disk chunk by default.
pub const DEFAULT_CHUNK_UNITS: usize = 256;

const FRAME_HEADER: u8 = b'H';
const FRAME_UNITS: u8 = b'U';
const FRAME_FOOTER: u8 = b'F';

/// Trace provenance and profiler geometry, written as the header frame so
/// readers know the unit size before the first unit arrives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Workload label (`wc_sp`, …).
    pub label: String,
    /// Seed the profiled run used.
    pub seed: u64,
    /// Scale preset name ("paper" / "tiny").
    pub scale: String,
    /// Sampling-unit size in instructions.
    pub unit_instrs: u64,
    /// Call-stack snapshot period in instructions.
    pub snapshot_instrs: u64,
    /// The core whose executor thread was profiled.
    pub core: usize,
}

/// Trace summary written as the final frame, locatable from the file tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFooter {
    /// Schema version (see [`FORMAT_VERSION`]).
    pub version: u32,
    /// Number of sampling units in the file.
    pub unit_count: u64,
    /// Highest method id in any unit's histogram, plus one.
    pub method_universe: usize,
    /// Total instructions across all units.
    pub total_instrs: u64,
    /// Total cycles across all units.
    pub total_cycles: u64,
    /// Units whose profiled executor crashed mid-unit.
    pub truncated_units: u64,
    /// Call-stack snapshots dropped across all units.
    pub dropped_snapshots: u64,
    /// Method names/classes for the trace's method ids.
    pub registry: MethodRegistry,
}

/// True when the file at `path` starts with the chunked-trace magic — the
/// sniff the CLI uses to auto-detect the input format.
pub fn is_chunked(path: &str) -> bool {
    let mut head = [0u8; 8];
    match File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && &head == MAGIC,
        Err(_) => false,
    }
}

fn io_err(path: &str, what: &str, e: std::io::Error) -> String {
    format!("{what} {path}: {e}")
}

fn write_frame(
    out: &mut BufWriter<File>,
    path: &str,
    kind: u8,
    payload: &[u8],
) -> Result<(), String> {
    let len = u32::try_from(payload.len())
        .map_err(|_| format!("write {path}: frame over 4 GiB (shrink the chunk size)"))?;
    out.write_all(&[kind]).map_err(|e| io_err(path, "write", e))?;
    out.write_all(&len.to_le_bytes()).map_err(|e| io_err(path, "write", e))?;
    out.write_all(payload).map_err(|e| io_err(path, "write", e))
}

/// A streaming [`UnitSink`] that frames sampling units to disk in chunks.
///
/// Units are buffered until a chunk fills, then written as one `'U'` frame;
/// footer statistics accumulate incrementally, so nothing grows with trace
/// length except the file. Because [`UnitSink::accept`] cannot fail, I/O
/// errors are *latched*: the writer goes inert and the stored error
/// surfaces from [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    path: String,
    buf: Vec<SamplingUnit>,
    chunk_units: usize,
    unit_count: u64,
    method_universe: usize,
    total_instrs: u64,
    total_cycles: u64,
    truncated_units: u64,
    dropped_snapshots: u64,
    error: Option<String>,
    finished: bool,
}

impl TraceWriter {
    /// Creates the file at `path` and writes the magic + header frame.
    pub fn create(path: &str, meta: &TraceMeta) -> Result<Self, String> {
        let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
        let mut out = BufWriter::new(file);
        out.write_all(MAGIC).map_err(|e| io_err(path, "write", e))?;
        let header =
            serde_json::to_string(meta).map_err(|e| format!("encode trace header: {e}"))?;
        write_frame(&mut out, path, FRAME_HEADER, header.as_bytes())?;
        Ok(Self {
            out,
            path: path.to_owned(),
            buf: Vec::new(),
            chunk_units: DEFAULT_CHUNK_UNITS,
            unit_count: 0,
            method_universe: 0,
            total_instrs: 0,
            total_cycles: 0,
            truncated_units: 0,
            dropped_snapshots: 0,
            error: None,
            finished: false,
        })
    }

    /// Overrides the chunk size (units per `'U'` frame); `n` is clamped to
    /// at least 1.
    pub fn with_chunk_units(mut self, n: usize) -> Self {
        self.chunk_units = n.max(1);
        self
    }

    /// Units pushed so far.
    pub fn unit_count(&self) -> u64 {
        self.unit_count
    }

    /// The latched I/O error, if writing has already failed.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Buffers one unit, flushing a chunk frame when the buffer fills.
    pub fn push(&mut self, unit: &SamplingUnit) {
        if self.error.is_some() || self.finished {
            return;
        }
        self.unit_count += 1;
        for &(m, _) in &unit.histogram {
            self.method_universe = self.method_universe.max(m.index() + 1);
        }
        self.total_instrs += unit.counters.instructions;
        self.total_cycles += unit.counters.cycles;
        self.truncated_units += u64::from(unit.truncated);
        self.dropped_snapshots += u64::from(unit.dropped_snapshots);
        self.buf.push(unit.clone());
        if self.buf.len() >= self.chunk_units {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        if self.buf.is_empty() || self.error.is_some() {
            return;
        }
        let payload = match serde_json::to_string(&self.buf) {
            Ok(p) => p,
            Err(e) => {
                self.error = Some(format!("encode trace chunk: {e}"));
                return;
            }
        };
        self.buf.clear();
        if let Err(e) = write_frame(&mut self.out, &self.path, FRAME_UNITS, payload.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Flushes the tail chunk, writes the footer frame + trailer, and syncs
    /// the stream. Returns the footer it wrote. The registry arrives here —
    /// not at `create` — because methods are interned while the profiled
    /// job runs.
    ///
    /// Errors if writing already failed ([latched](TraceWriter::error)) or
    /// `finish` was already called.
    pub fn finish(&mut self, registry: &MethodRegistry) -> Result<TraceFooter, String> {
        if self.finished {
            return Err(format!("trace writer for {} already finished", self.path));
        }
        self.flush_chunk();
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let footer = TraceFooter {
            version: FORMAT_VERSION,
            unit_count: self.unit_count,
            method_universe: self.method_universe,
            total_instrs: self.total_instrs,
            total_cycles: self.total_cycles,
            truncated_units: self.truncated_units,
            dropped_snapshots: self.dropped_snapshots,
            registry: registry.clone(),
        };
        let payload =
            serde_json::to_string(&footer).map_err(|e| format!("encode trace footer: {e}"))?;
        write_frame(&mut self.out, &self.path, FRAME_FOOTER, payload.as_bytes())?;
        let len = payload.len() as u32;
        self.out.write_all(&len.to_le_bytes()).map_err(|e| io_err(&self.path, "write", e))?;
        self.out.write_all(MAGIC).map_err(|e| io_err(&self.path, "write", e))?;
        self.out.flush().map_err(|e| io_err(&self.path, "flush", e))?;
        self.finished = true;
        Ok(footer)
    }
}

impl UnitSink for TraceWriter {
    fn accept(&mut self, unit: &SamplingUnit) {
        self.push(unit);
    }

    fn finish(&mut self) {
        // Sink-path finish has no registry; only the buffered chunk is
        // flushed here. The owner still calls `TraceWriter::finish` with
        // the registry to seal the file.
        self.flush_chunk();
    }
}

/// A streaming [`UnitStream`] over a chunked trace file: holds one decoded
/// chunk at a time and rewinds by seeking back to the first unit frame.
#[derive(Debug)]
pub struct TraceReader {
    file: BufReader<File>,
    path: String,
    meta: TraceMeta,
    data_start: u64,
    chunk: Vec<SamplingUnit>,
    pos: usize,
    done: bool,
}

impl TraceReader {
    /// Opens `path`, validating the magic and reading the header frame.
    pub fn open(path: &str) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| io_err(path, "open", e))?;
        let mut file = BufReader::new(file);
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic).map_err(|e| io_err(path, "read", e))?;
        if &magic != MAGIC {
            return Err(format!(
                "{path}: not a chunked simprof trace (bad magic {magic:?}; expected {MAGIC:?})"
            ));
        }
        let (kind, payload) = read_frame(&mut file, path)?;
        if kind != FRAME_HEADER {
            return Err(format!("{path}: expected header frame, found {:?}", kind as char));
        }
        let meta: TraceMeta = parse_payload(path, "header", &payload)?;
        let data_start = file.stream_position().map_err(|e| io_err(path, "seek", e))?;
        Ok(Self {
            file,
            path: path.to_owned(),
            meta,
            data_start,
            chunk: Vec::new(),
            pos: 0,
            done: false,
        })
    }

    /// The header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Reads the footer via the 12-byte trailer (seek from end), leaving
    /// the streaming position untouched.
    pub fn footer(&mut self) -> Result<TraceFooter, String> {
        let saved = self.file.stream_position().map_err(|e| io_err(&self.path, "seek", e))?;
        let result = self.read_footer_at_tail();
        self.file.seek(SeekFrom::Start(saved)).map_err(|e| io_err(&self.path, "seek", e))?;
        result
    }

    fn read_footer_at_tail(&mut self) -> Result<TraceFooter, String> {
        let path = self.path.clone();
        self.file.seek(SeekFrom::End(-12)).map_err(|e| io_err(&path, "seek", e))?;
        let mut trailer = [0u8; 12];
        self.file.read_exact(&mut trailer).map_err(|e| io_err(&path, "read", e))?;
        if &trailer[4..12] != MAGIC {
            return Err(format!("{path}: missing footer trailer (file truncated or unfinished?)"));
        }
        let len = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as i64;
        self.file.seek(SeekFrom::End(-12 - len)).map_err(|e| io_err(&path, "seek", e))?;
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload).map_err(|e| io_err(&path, "read", e))?;
        let footer: TraceFooter = parse_payload(&path, "footer", &payload)?;
        if footer.version != FORMAT_VERSION {
            return Err(format!(
                "{path}: unsupported trace schema version {} (expected {FORMAT_VERSION})",
                footer.version
            ));
        }
        Ok(footer)
    }

    /// Restarts streaming at the first unit.
    pub fn rewind(&mut self) -> Result<(), String> {
        self.file
            .seek(SeekFrom::Start(self.data_start))
            .map_err(|e| io_err(&self.path, "seek", e))?;
        self.chunk.clear();
        self.pos = 0;
        self.done = false;
        Ok(())
    }

    /// Yields the next unit, decoding the next chunk frame when the current
    /// one is exhausted. Same operation as the [`UnitStream`] impl, callable
    /// without the trait in scope.
    pub fn next_unit(&mut self) -> Result<Option<&SamplingUnit>, String> {
        if self.pos >= self.chunk.len() && !self.load_chunk()? {
            return Ok(None);
        }
        let unit = &self.chunk[self.pos];
        self.pos += 1;
        Ok(Some(unit))
    }

    /// Loads the next non-empty unit chunk; returns `false` at the footer.
    fn load_chunk(&mut self) -> Result<bool, String> {
        loop {
            if self.done {
                return Ok(false);
            }
            let (kind, payload) = read_frame(&mut self.file, &self.path)?;
            match kind {
                FRAME_UNITS => {
                    let units: Vec<SamplingUnit> = parse_payload(&self.path, "chunk", &payload)?;
                    if units.is_empty() {
                        continue;
                    }
                    self.chunk = units;
                    self.pos = 0;
                    return Ok(true);
                }
                FRAME_FOOTER => {
                    self.done = true;
                    return Ok(false);
                }
                other => {
                    return Err(format!(
                        "{}: unknown frame kind {:?} mid-stream",
                        self.path, other as char
                    ));
                }
            }
        }
    }
}

impl UnitStream for TraceReader {
    fn unit_instrs(&self) -> u64 {
        self.meta.unit_instrs
    }

    fn snapshot_instrs(&self) -> u64 {
        self.meta.snapshot_instrs
    }

    fn core(&self) -> usize {
        self.meta.core
    }

    fn rewind(&mut self) -> Result<(), String> {
        TraceReader::rewind(self)
    }

    fn next_unit(&mut self) -> Result<Option<&SamplingUnit>, String> {
        TraceReader::next_unit(self)
    }
}

/// Convenience for whole-trace consumers: materializes the file into a
/// [`ProfileTrace`] (one chunk in flight at a time) and returns the footer.
pub fn read_trace(path: &str) -> Result<(ProfileTrace, TraceFooter), String> {
    let mut reader = TraceReader::open(path)?;
    let footer = reader.footer()?;
    let mut units = Vec::new();
    while let Some(unit) = reader.next_unit()? {
        units.push(unit.clone());
    }
    let meta = reader.meta();
    let trace = ProfileTrace {
        unit_instrs: meta.unit_instrs,
        snapshot_instrs: meta.snapshot_instrs,
        core: meta.core,
        units,
    };
    Ok((trace, footer))
}

fn read_frame(file: &mut BufReader<File>, path: &str) -> Result<(u8, Vec<u8>), String> {
    let mut kind = [0u8; 1];
    file.read_exact(&mut kind).map_err(|e| io_err(path, "read", e))?;
    let mut len = [0u8; 4];
    file.read_exact(&mut len).map_err(|e| io_err(path, "read", e))?;
    let len = u32::from_le_bytes(len) as usize;
    let mut payload = vec![0u8; len];
    file.read_exact(&mut payload).map_err(|e| io_err(path, "read", e))?;
    Ok((kind[0], payload))
}

fn parse_payload<T: Deserialize>(path: &str, what: &str, payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| format!("{path}: {what} frame is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("{path}: parse {what} frame: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::methods::OpClass;
    use simprof_engine::MethodId;
    use simprof_sim::Counters;

    fn unit(id: u64) -> SamplingUnit {
        SamplingUnit {
            id,
            histogram: vec![(MethodId((id % 5) as u32), 4), (MethodId(7), 2)],
            snapshots: 6,
            counters: Counters {
                instructions: 1000 + id,
                cycles: 1500 + 3 * id,
                ..Default::default()
            },
            slices: vec![(500, 700), (500 + id, 800)],
            truncated: id % 3 == 0,
            dropped_snapshots: (id % 4) as u32,
        }
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            label: "wc_sp".into(),
            seed: 42,
            scale: "tiny".into(),
            unit_instrs: 1000,
            snapshot_instrs: 100,
            core: 0,
        }
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir().join(name).to_str().unwrap().to_owned()
    }

    #[test]
    fn writes_and_streams_back_across_chunk_boundaries() {
        let path = tmp("simprof_trace_chunks.sptrc");
        let mut reg = MethodRegistry::new();
        reg.intern("Mapper.map", OpClass::Map);
        let mut w = TraceWriter::create(&path, &meta()).unwrap().with_chunk_units(4);
        for id in 0..11 {
            w.push(&unit(id));
        }
        let footer = w.finish(&reg).unwrap();
        assert_eq!(footer.unit_count, 11);
        assert_eq!(footer.method_universe, 8);
        assert_eq!(footer.total_instrs, (0..11).map(|i| 1000 + i).sum::<u64>());
        assert_eq!(footer.truncated_units, 4);
        assert_eq!(footer.registry.len(), 1);

        assert!(is_chunked(&path));
        let mut r = TraceReader::open(&path).unwrap();
        assert_eq!(r.meta().label, "wc_sp");
        assert_eq!(r.footer().unwrap(), footer);
        let mut ids = Vec::new();
        while let Some(u) = r.next_unit().unwrap() {
            ids.push(u.id);
        }
        assert_eq!(ids, (0..11).collect::<Vec<u64>>());
        // Footer read mid-stream must not disturb the cursor.
        r.rewind().unwrap();
        let _ = r.next_unit().unwrap();
        let _ = r.footer().unwrap();
        assert_eq!(r.next_unit().unwrap().unwrap().id, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_trace_materializes_bit_identically() {
        let path = tmp("simprof_trace_materialize.sptrc");
        let expected: Vec<SamplingUnit> = (0..9).map(unit).collect();
        let mut w = TraceWriter::create(&path, &meta()).unwrap().with_chunk_units(2);
        for u in &expected {
            w.push(u);
        }
        w.finish(&MethodRegistry::new()).unwrap();
        let (trace, footer) = read_trace(&path).unwrap();
        assert_eq!(trace.units, expected);
        assert_eq!(trace.unit_instrs, 1000);
        assert_eq!(footer.unit_count, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let path = tmp("simprof_trace_empty.sptrc");
        let mut w = TraceWriter::create(&path, &meta()).unwrap();
        let footer = w.finish(&MethodRegistry::new()).unwrap();
        assert_eq!(footer.unit_count, 0);
        let (trace, _) = read_trace(&path).unwrap();
        assert!(trace.units.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn double_finish_rejected() {
        let path = tmp("simprof_trace_double_finish.sptrc");
        let mut w = TraceWriter::create(&path, &meta()).unwrap();
        w.finish(&MethodRegistry::new()).unwrap();
        assert!(w.finish(&MethodRegistry::new()).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_trace_files_rejected() {
        let path = tmp("simprof_trace_not_a_trace.json");
        std::fs::write(&path, "{\"version\":1}").unwrap();
        assert!(!is_chunked(&path));
        let err = TraceReader::open(&path).unwrap_err();
        assert!(err.contains("bad magic"), "{err}");
        assert!(!is_chunked("/nonexistent/simprof.sptrc"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unfinished_file_has_no_footer() {
        let path = tmp("simprof_trace_unfinished.sptrc");
        let mut w = TraceWriter::create(&path, &meta()).unwrap().with_chunk_units(1);
        w.push(&unit(0));
        // Drop without finish: units are on disk, the trailer is not.
        drop(w);
        let mut r = TraceReader::open(&path).unwrap();
        assert!(r.footer().is_err());
        let _ = std::fs::remove_file(&path);
    }
}
