//! Per-frame payload codecs for the v3 `.sptrc` layout (DESIGN.md §17.3).
//!
//! A v3 frame carries a one-byte codec id between the frame kind and the
//! length field; the length counts *stored* (post-codec) bytes. Two codecs
//! exist:
//!
//! * [`CODEC_RAW`] — the payload verbatim. Also the per-frame fallback:
//!   when compression fails to shrink a payload the writer stores it raw,
//!   so a pathological (incompressible) chunk never grows the file.
//! * [`CODEC_LZ`] — an in-crate LZSS variant (no external dependencies):
//!   a 4-byte raw-length prefix followed by groups of one control byte
//!   and eight items. A `0` flag bit is one literal byte; a `1` flag bit
//!   is a back-reference `[offset: u16 LE][length-4: u8]` into the
//!   already-decompressed output (offset `1..=65535`, length `4..=259`).
//!   Matches are found greedily through a 4-byte-prefix hash table, so
//!   compression is a pure function of the input bytes — the determinism
//!   contract (same units ⇒ same file bytes) extends to compressed
//!   shards.
//!
//! Decompression is bounds-checked end to end: the raw-length prefix is
//! validated against the caller's cap *before* any allocation, every
//! back-reference must land inside the bytes already produced, and the
//! stream must reconstruct exactly the promised length. Corrupt input is
//! an error, never a panic or an over-allocation.

/// Codec id for uncompressed payloads (and the compression fallback).
pub const CODEC_RAW: u8 = 0;

/// Codec id for the in-crate LZSS codec.
pub const CODEC_LZ: u8 = 1;

/// Shortest match worth encoding: a match costs 3 bytes + 1/8th of a
/// control byte, so 4 literal bytes is the break-even point.
const MIN_MATCH: usize = 4;

/// Longest encodable match (`MIN_MATCH + u8::MAX`).
const MAX_MATCH: usize = 259;

/// Furthest back-reference (`u16::MAX`); offset 0 is invalid.
const MAX_OFFSET: usize = 65_535;

const HASH_BITS: u32 = 15;

/// Human-readable codec name, or `None` for an unknown id.
pub fn codec_name(id: u8) -> Option<&'static str> {
    match id {
        CODEC_RAW => Some("raw"),
        CODEC_LZ => Some("lz"),
        _ => None,
    }
}

/// The codec a v3 writer is asked to apply to its frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Store every payload verbatim (codec byte [`CODEC_RAW`]).
    #[default]
    Raw,
    /// LZSS-compress each payload, falling back to raw per frame when the
    /// compressed form is not strictly smaller.
    Lz,
}

impl Codec {
    /// Parses a user-facing codec name (`raw` / `lz`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "raw" => Ok(Self::Raw),
            "lz" => Ok(Self::Lz),
            other => Err(format!("unknown trace codec `{other}` (expected `raw` or `lz`)")),
        }
    }

    /// The user-facing name (`raw` / `lz`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Raw => "raw",
            Self::Lz => "lz",
        }
    }
}

/// Encodes `payload` under `codec`, returning the codec id actually used
/// and the stored bytes. LZ falls back to raw per frame when compression
/// does not strictly shrink the payload, so the stored form is never
/// larger than the raw form.
pub fn encode(codec: Codec, payload: &[u8]) -> (u8, Vec<u8>) {
    match codec {
        Codec::Raw => (CODEC_RAW, payload.to_vec()),
        Codec::Lz => {
            let packed = lz_compress(payload);
            if packed.len() < payload.len() {
                (CODEC_LZ, packed)
            } else {
                (CODEC_RAW, payload.to_vec())
            }
        }
    }
}

/// Decodes stored frame bytes back to the payload. `max_len` caps the
/// decoded size (readers pass [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN)):
/// a corrupt or hostile length is rejected before allocation.
pub fn decode(codec_id: u8, stored: &[u8], max_len: usize) -> Result<Vec<u8>, String> {
    match codec_id {
        CODEC_RAW => {
            if stored.len() > max_len {
                return Err(format!(
                    "raw payload of {} bytes exceeds the {max_len}-byte cap",
                    stored.len()
                ));
            }
            Ok(stored.to_vec())
        }
        CODEC_LZ => lz_decompress(stored, max_len),
        other => Err(format!("unknown frame codec id {other}")),
    }
}

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy LZSS compression. Deterministic: output depends only on `input`.
fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // Candidate positions for each 4-byte prefix hash. usize::MAX = empty.
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    // One control byte governs the next 8 items; patch it in place once
    // its flags are known.
    let mut ctrl_at = usize::MAX;
    let mut ctrl_bit = 8u8;

    while i < input.len() {
        if ctrl_bit == 8 {
            ctrl_at = out.len();
            out.push(0);
            ctrl_bit = 0;
        }
        let mut match_len = 0usize;
        let mut match_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(&input[i..]);
            let cand = table[h];
            table[h] = i;
            if cand != usize::MAX && i - cand <= MAX_OFFSET {
                let limit = (input.len() - i).min(MAX_MATCH);
                let mut len = 0usize;
                while len < limit && input[cand + len] == input[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    match_len = len;
                    match_off = i - cand;
                }
            }
        }
        if match_len > 0 {
            out[ctrl_at] |= 1 << ctrl_bit;
            out.extend_from_slice(&(match_off as u16).to_le_bytes());
            out.push((match_len - MIN_MATCH) as u8);
            // Seed the hash table through the matched region so later
            // matches can reference into it.
            let end = i + match_len;
            i += 1;
            while i < end {
                if i + MIN_MATCH <= input.len() {
                    table[hash4(&input[i..])] = i;
                }
                i += 1;
            }
        } else {
            out.push(input[i]);
            i += 1;
        }
        ctrl_bit += 1;
    }
    out
}

/// Bounds-checked LZSS decompression; inverse of [`lz_compress`].
fn lz_decompress(stored: &[u8], max_len: usize) -> Result<Vec<u8>, String> {
    if stored.len() < 4 {
        return Err(format!("compressed payload too short ({} bytes)", stored.len()));
    }
    let raw_len = u32::from_le_bytes([stored[0], stored[1], stored[2], stored[3]]) as usize;
    if raw_len > max_len {
        return Err(format!(
            "compressed payload declares {raw_len} bytes, over the {max_len}-byte cap"
        ));
    }
    let mut out = Vec::with_capacity(raw_len);
    let mut at = 4usize;
    while out.len() < raw_len {
        let Some(&ctrl) = stored.get(at) else {
            return Err(format!(
                "compressed payload truncated at byte {at} ({} of {raw_len} bytes decoded)",
                out.len()
            ));
        };
        at += 1;
        for bit in 0..8 {
            if out.len() >= raw_len {
                break;
            }
            if ctrl & (1 << bit) == 0 {
                let Some(&b) = stored.get(at) else {
                    return Err(format!("compressed payload truncated in a literal at byte {at}"));
                };
                out.push(b);
                at += 1;
            } else {
                let Some(item) = stored.get(at..at + 3) else {
                    return Err(format!("compressed payload truncated in a match at byte {at}"));
                };
                let off = u16::from_le_bytes([item[0], item[1]]) as usize;
                let len = item[2] as usize + MIN_MATCH;
                at += 3;
                if off == 0 || off > out.len() {
                    return Err(format!(
                        "corrupt back-reference (offset {off} with only {} bytes decoded)",
                        out.len()
                    ));
                }
                if out.len() + len > raw_len {
                    return Err(format!(
                        "corrupt match (length {len} overruns the declared {raw_len}-byte payload)"
                    ));
                }
                // Byte-by-byte so overlapping matches (off < len) replicate
                // the most recent bytes, RLE-style.
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> Vec<u8> {
        let packed = lz_compress(input);
        lz_decompress(&packed, input.len().max(1)).expect("roundtrip decodes")
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"abc"), b"abc");
    }

    #[test]
    fn repetitive_json_compresses_and_roundtrips() {
        let mut input = String::from("[");
        for i in 0..200 {
            input.push_str(&format!(
                "{{\"id\":{i},\"histogram\":[[0,4],[7,2]],\"snapshots\":6,\"truncated\":false}},"
            ));
        }
        input.push(']');
        let bytes = input.as_bytes();
        let packed = lz_compress(bytes);
        assert!(
            packed.len() < bytes.len() / 2,
            "repetitive JSON should at least halve: {} -> {}",
            bytes.len(),
            packed.len()
        );
        assert_eq!(roundtrip(bytes), bytes);
    }

    #[test]
    fn overlapping_matches_replicate_rle_style() {
        let input = vec![b'x'; 10_000];
        let packed = lz_compress(&input);
        assert!(packed.len() < 200, "pure run should collapse: {}", packed.len());
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn incompressible_input_falls_back_to_raw_in_encode() {
        // A pseudo-random byte stream with no 4-byte repeats to speak of.
        let mut x = 0x1234_5678_9abc_def0u64;
        let input: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let (id, stored) = encode(Codec::Lz, &input);
        assert_eq!(id, CODEC_RAW, "noise must not be stored compressed");
        assert_eq!(stored, input);
        // The LZ stream itself still roundtrips even when unprofitable.
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn compression_is_deterministic() {
        let input: Vec<u8> = (0..50_000u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        assert_eq!(lz_compress(&input), lz_compress(&input));
    }

    #[test]
    fn declared_length_over_cap_is_rejected_before_allocation() {
        let mut stored = (u32::MAX).to_le_bytes().to_vec();
        stored.push(0);
        let err = lz_decompress(&stored, 1024).unwrap_err();
        assert!(err.contains("over the"), "{err}");
    }

    #[test]
    fn corrupt_back_reference_is_an_error_not_a_panic() {
        // raw_len 8, one control byte with a match flag, offset 500 into
        // an empty output.
        let mut stored = 8u32.to_le_bytes().to_vec();
        stored.push(0b0000_0001);
        stored.extend_from_slice(&500u16.to_le_bytes());
        stored.push(0);
        let err = lz_decompress(&stored, 1024).unwrap_err();
        assert!(err.contains("back-reference"), "{err}");
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let input = b"the quick brown fox jumps over the quick brown fox";
        let packed = lz_compress(input);
        for cut in [4, 5, packed.len() - 1] {
            let err = lz_decompress(&packed[..cut], 1024).unwrap_err();
            assert!(err.contains("truncated"), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn match_overrunning_declared_length_is_an_error() {
        // "abcd" then a match of length 4+200 against a 6-byte declared
        // total: the match overruns.
        let mut stored = 6u32.to_le_bytes().to_vec();
        stored.push(0b0001_0000);
        stored.extend_from_slice(b"abcd");
        stored.extend_from_slice(&4u16.to_le_bytes());
        stored.push(200);
        let err = lz_decompress(&stored, 1024).unwrap_err();
        assert!(err.contains("overruns"), "{err}");
    }

    #[test]
    fn unknown_codec_id_is_rejected() {
        let err = decode(9, b"abc", 1024).unwrap_err();
        assert!(err.contains("unknown frame codec"), "{err}");
        assert_eq!(codec_name(9), None);
        assert_eq!(codec_name(CODEC_LZ), Some("lz"));
    }

    #[test]
    fn codec_parse_and_name_roundtrip() {
        assert_eq!(Codec::parse("raw").unwrap(), Codec::Raw);
        assert_eq!(Codec::parse("lz").unwrap(), Codec::Lz);
        assert_eq!(Codec::parse("lz").unwrap().name(), "lz");
        assert!(Codec::parse("zstd").is_err());
    }
}
