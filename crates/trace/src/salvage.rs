//! Salvage recovery for damaged `.sptrc` traces (DESIGN.md §14.3).
//!
//! A crash before [`TraceWriter::finish`](crate::TraceWriter::finish)
//! leaves a footer-less file the normal reader refuses; a flipped byte
//! mid-file fails its frame's CRC. Both are recoverable artifacts: every
//! *other* frame is still intact and self-describing. [`salvage_bytes`]
//! forward-scans the whole file, keeps every frame that validates
//! (structure + CRC for v2, structure + JSON parse for v1), and
//! resynchronizes past damage by scanning byte-by-byte for the next
//! position where a valid frame begins. The result is every fully intact
//! chunk, a [`SalvageReport`] describing what was lost, and a footer —
//! the original one when the file turns out to be undamaged, otherwise a
//! synthetic footer rebuilt from the recovered units (so the salvage can
//! be re-sealed by `simprof trace-repair`).
//!
//! Salvage is deliberately in-memory over the full file bytes: recovery
//! is a rare, offline operation where random access (probing candidate
//! frame boundaries) matters more than streaming memory use.

use serde::{Deserialize, Serialize};

use simprof_profiler::trace::SamplingUnit;

use crate::codec;
use crate::crc32::crc32;
use crate::{
    parse_payload, TraceFooter, TraceMeta, FRAME_FOOTER, FRAME_HEADER, FRAME_UNITS, MAGIC,
    MAGIC_V1, MAGIC_V3, MAX_FRAME_LEN,
};

/// What a salvage pass found, frame by frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SalvageReport {
    /// Layout version detected from the magic (v1 or v2).
    pub layout_version: u32,
    /// Total bytes scanned.
    pub file_bytes: u64,
    /// True when the header frame survived (meta is authentic, not a
    /// placeholder).
    pub header_recovered: bool,
    /// True when a footer frame was found anywhere in the file.
    pub footer_found: bool,
    /// True when the file needed no salvage at all: header, every chunk,
    /// footer and trailer all validated with zero skipped bytes.
    pub clean: bool,
    /// Sampling units recovered from intact chunk frames.
    pub recovered_units: u64,
    /// Intact chunk frames recovered.
    pub recovered_chunks: u64,
    /// Positions where an expected frame failed validation.
    pub bad_frames: u64,
    /// Successful resynchronizations onto a later valid frame.
    pub resyncs: u64,
    /// Bytes skipped while resynchronizing (includes any unrecoverable
    /// tail).
    pub skipped_bytes: u64,
}

/// A salvaged trace: recovered content plus the damage report.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvage {
    /// Header metadata — authentic when
    /// [`SalvageReport::header_recovered`], otherwise a placeholder
    /// reconstructed from the recovered units.
    pub meta: TraceMeta,
    /// Every unit from every intact chunk frame, in file order.
    pub units: Vec<SamplingUnit>,
    /// The original footer when the file was clean; otherwise synthetic,
    /// with statistics recomputed from the recovered units (the registry
    /// is reused from a surviving footer frame when one was found).
    pub footer: TraceFooter,
    /// What happened during the scan.
    pub report: SalvageReport,
}

/// One validated frame, decoded.
enum Recovered {
    Header(TraceMeta),
    Units(Vec<SamplingUnit>),
    Footer(TraceFooter, usize),
}

/// Checks whether a structurally valid, checksummed, parseable frame
/// begins at `at`; returns its decoded content and end offset.
///
/// This is both the normal forward step and the resync probe: after a bad
/// frame, salvage advances one byte at a time until this accepts. The
/// [`MAX_FRAME_LEN`] cap doubles as the resync guard — almost every
/// random 4-byte window decodes to an enormous length and is rejected
/// before any expensive CRC work.
fn probe_frame(data: &[u8], at: usize, layout_version: u32) -> Option<(Recovered, usize)> {
    let kind = *data.get(at)?;
    if kind != FRAME_HEADER && kind != FRAME_UNITS && kind != FRAME_FOOTER {
        return None;
    }
    // v3 frames carry a codec byte between the kind and the length; an
    // unknown codec id rejects the candidate before any CRC work.
    let head = if layout_version >= 3 { 6 } else { 5 };
    let codec_id = if layout_version >= 3 {
        let id = *data.get(at + 1)?;
        codec::codec_name(id)?;
        id
    } else {
        codec::CODEC_RAW
    };
    let len_bytes = data.get(at + head - 4..at + head)?;
    let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    let stored = data.get(at + head..at + head + len)?;
    let mut end = at + head + len;
    if layout_version >= 2 {
        let crc_bytes = data.get(end..end + 4)?;
        let expected = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if crc32(&data[at..end]) != expected {
            return None;
        }
        end += 4;
    }
    // CRC validated over the stored bytes; only now decompress (v3) and
    // parse. A frame that checksums but fails either step is still bad.
    let decoded;
    let payload: &[u8] = if layout_version >= 3 {
        decoded = codec::decode(codec_id, stored, MAX_FRAME_LEN).ok()?;
        &decoded
    } else {
        stored
    };
    let rec = match kind {
        FRAME_HEADER => Recovered::Header(parse_payload("salvage", "header", payload).ok()?),
        FRAME_UNITS => Recovered::Units(parse_payload("salvage", "chunk", payload).ok()?),
        _ => Recovered::Footer(parse_payload("salvage", "footer", payload).ok()?, len),
    };
    Some((rec, end))
}

/// True when `data[at..]` is exactly a valid 12-byte trailer for a footer
/// frame whose payload was `footer_len` bytes.
fn is_trailer(data: &[u8], at: usize, footer_len: usize, magic: &[u8; 8]) -> bool {
    let Some(trailer) = data.get(at..at + 12) else { return false };
    data.len() - at == 12
        && &trailer[4..12] == magic
        && u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as usize
            == footer_len
}

/// Salvages a trace from raw file bytes. `origin` names the source in
/// events and errors (normally the file path).
///
/// Never panics on any input. Errs only when the bytes cannot be a
/// simprof trace at all (magic mismatch in a file long enough to hold
/// one); a truncated prefix of a real trace — at *any* byte offset,
/// including mid-magic — salvages successfully, possibly to zero units.
pub fn salvage_bytes(data: &[u8], origin: &str) -> Result<Salvage, String> {
    let (layout_version, magic): (u32, &[u8; 8]) = if data.len() >= 8 {
        let head = &data[..8];
        if head == MAGIC {
            (2, MAGIC)
        } else if head == MAGIC_V1 {
            (1, MAGIC_V1)
        } else if head == MAGIC_V3 {
            (3, MAGIC_V3)
        } else {
            return Err(format!(
                "{origin}: not a chunked simprof trace (bad magic {head:?}); nothing to salvage"
            ));
        }
    } else if data == &MAGIC[..data.len()] || data == &MAGIC_V1[..data.len()] {
        // Truncated inside the magic itself (the three magics share their
        // first seven bytes): a real trace cut that short holds nothing,
        // but it is still "ours" — salvage to zero units.
        (2, MAGIC)
    } else {
        return Err(format!(
            "{origin}: not a chunked simprof trace ({} bytes, magic mismatch); nothing to salvage",
            data.len()
        ));
    };

    let mut meta: Option<TraceMeta> = None;
    let mut units: Vec<SamplingUnit> = Vec::new();
    let mut chunks = 0u64;
    let mut footer_frame: Option<TraceFooter> = None;
    let mut footer_len = 0usize;
    let mut bad_frames = 0u64;
    let mut resyncs = 0u64;
    let mut skipped = 0u64;
    let mut trailer_ok = false;

    let mut at = 8.min(data.len());
    while at < data.len() {
        if footer_frame.is_some() && is_trailer(data, at, footer_len, magic) {
            trailer_ok = true;
            break;
        }
        match probe_frame(data, at, layout_version) {
            Some((rec, end)) => {
                match rec {
                    Recovered::Header(m) => {
                        if meta.is_none() {
                            meta = Some(m);
                        }
                    }
                    Recovered::Units(us) => {
                        chunks += 1;
                        units.extend(us);
                    }
                    Recovered::Footer(f, len) => {
                        footer_frame = Some(f);
                        footer_len = len;
                    }
                }
                at = end;
            }
            None => {
                bad_frames += 1;
                let mut next = at + 1;
                while next < data.len() && probe_frame(data, next, layout_version).is_none() {
                    next += 1;
                }
                skipped += (next - at) as u64;
                if next < data.len() {
                    resyncs += 1;
                }
                at = next;
            }
        }
    }

    let header_recovered = meta.is_some();
    let clean =
        header_recovered && footer_frame.is_some() && trailer_ok && bad_frames == 0 && skipped == 0;

    // Header gone: reconstruct a placeholder so the salvage is still a
    // complete, re-sealable trace. The unit size is recovered from the
    // first unit's own instruction count (units span exactly one unit
    // interval), which is the best evidence the file still holds.
    let meta = meta.unwrap_or_else(|| TraceMeta {
        label: "(salvaged)".into(),
        seed: 0,
        scale: "unknown".into(),
        unit_instrs: units.first().map(|u| u.counters.instructions.max(1)).unwrap_or(1),
        snapshot_instrs: 1,
        core: 0,
    });

    let footer = if clean {
        footer_frame.clone().expect("clean implies footer")
    } else {
        let mut method_universe = 0usize;
        let mut total_instrs = 0u64;
        let mut total_cycles = 0u64;
        let mut truncated_units = 0u64;
        let mut dropped_snapshots = 0u64;
        for u in &units {
            for &(m, _) in &u.histogram {
                method_universe = method_universe.max(m.index() + 1);
            }
            total_instrs += u.counters.instructions;
            total_cycles += u.counters.cycles;
            truncated_units += u64::from(u.truncated);
            dropped_snapshots += u64::from(u.dropped_snapshots);
        }
        TraceFooter {
            version: layout_version,
            unit_count: units.len() as u64,
            method_universe,
            total_instrs,
            total_cycles,
            truncated_units,
            dropped_snapshots,
            registry: footer_frame.as_ref().map(|f| f.registry.clone()).unwrap_or_default(),
        }
    };

    let report = SalvageReport {
        layout_version,
        file_bytes: data.len() as u64,
        header_recovered,
        footer_found: footer_frame.is_some(),
        clean,
        recovered_units: units.len() as u64,
        recovered_chunks: chunks,
        bad_frames,
        resyncs,
        skipped_bytes: skipped,
    };

    simprof_obs::counter_add("trace.salvaged_units", report.recovered_units);
    simprof_obs::salvage_event(
        origin,
        report.recovered_units,
        report.bad_frames,
        report.skipped_bytes,
        report.resyncs,
    );

    Ok(Salvage { meta, units, footer, report })
}
