//! Seeded chaos I/O: deterministic fault injection for the trace format.
//!
//! [`ChaosWriter`] and [`ChaosReader`] wrap any `Write + Seek` / `Read +
//! Seek` stream and inject the failures a real disk produces — transient
//! write errors, short writes, flush errors, silent bit flips, and a hard
//! truncation at an arbitrary byte offset (a crash mid-write) — according
//! to a [`ChaosPlan`]. Every decision is a pure hash of `(seed, salt,
//! op index)` in the same SplitMix64 style as the engine's `FaultPlan`
//! (DESIGN.md §7), so a given plan replays the exact same fault sequence
//! on every run: durability bugs found under chaos are reproducible from
//! the seed alone.
//!
//! Rates are parts-per-million per I/O operation; `1_000_000` or more
//! means "always". Injected errors use [`std::io::ErrorKind::Other`] —
//! deliberately *not* `Interrupted`, which `write_all`/`read_exact`
//! silently retry forever inside std, hiding the fault from the retry
//! layer under test.

use std::io::{Error, Read, Result as IoResult, Seek, SeekFrom, Write};

use serde::Serialize;

// Domain-separation salts, one per fault kind, so the per-op decisions
// are independent draws from the same seed.
const SALT_WRITE_ERR: u64 = 0x57_52_45_52_52;
const SALT_SHORT: u64 = 0x53_48_4F_52_54;
const SALT_FLUSH: u64 = 0x46_4C_55_53_48;
const SALT_FLIP: u64 = 0x46_4C_49_50;
const SALT_FLIP_POS: u64 = 0x46_50_4F_53;
const SALT_READ_ERR: u64 = 0x52_44_45_52_52;

/// SplitMix64-style stateless mix, the same idiom as the engine's fault
/// plan: decisions depend only on the coordinates, never on call order
/// elsewhere in the program.
fn mix(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ salt ^ a.wrapping_mul(0xA24B_AED4_963E_E407) ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault schedule for a chaos-wrapped stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ChaosPlan {
    /// Seed all per-op decisions derive from.
    pub seed: u64,
    /// Transient write-error rate (ppm per write op, fires before any
    /// byte is consumed — a retry may safely re-issue the same bytes).
    pub write_error_ppm: u32,
    /// Short-write rate (ppm per write op; half the buffer is consumed).
    pub short_write_ppm: u32,
    /// Flush-error rate (ppm per flush op).
    pub flush_error_ppm: u32,
    /// Silent single-bit corruption rate (ppm per write/read op).
    pub bit_flip_ppm: u32,
    /// Transient read-error rate (ppm per read op).
    pub read_error_ppm: u32,
    /// Crash simulation: bytes at logical offsets `>= truncate_at` are
    /// silently dropped while still being reported as written.
    pub truncate_at: Option<u64>,
}

impl ChaosPlan {
    /// A plan that injects nothing (pass-through wrapper).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            write_error_ppm: 0,
            short_write_ppm: 0,
            flush_error_ppm: 0,
            bit_flip_ppm: 0,
            read_error_ppm: 0,
            truncate_at: None,
        }
    }

    fn fires(&self, salt: u64, op: u64, ppm: u32) -> bool {
        ppm > 0 && mix(self.seed, salt, op, 0) % 1_000_000 < u64::from(ppm)
    }
}

/// Tally of the faults a chaos wrapper actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ChaosCounts {
    /// Write ops observed (including ones that errored).
    pub writes: u64,
    /// Transient write errors injected.
    pub write_errors: u64,
    /// Short writes injected.
    pub short_writes: u64,
    /// Flush errors injected.
    pub flush_errors: u64,
    /// Single-bit flips injected.
    pub bit_flips: u64,
    /// Transient read errors injected.
    pub read_errors: u64,
    /// Bytes silently dropped past the truncation point.
    pub dropped_bytes: u64,
}

fn chaos_err(what: &str, op: u64) -> Error {
    Error::other(format!("chaos: injected {what} (op {op})"))
}

/// A `Write + Seek` wrapper that injects seeded faults per [`ChaosPlan`].
#[derive(Debug)]
pub struct ChaosWriter<W: Write + Seek> {
    inner: W,
    plan: ChaosPlan,
    counts: ChaosCounts,
    /// Logical stream position (what the caller believes was written).
    pos: u64,
    ops: u64,
}

impl<W: Write + Seek> ChaosWriter<W> {
    /// Wraps `inner` under `plan`. The wrapper assumes the stream starts
    /// at offset 0.
    pub fn new(inner: W, plan: ChaosPlan) -> Self {
        Self { inner, plan, counts: ChaosCounts::default(), pos: 0, ops: 0 }
    }

    /// Faults injected so far.
    pub fn counts(&self) -> ChaosCounts {
        self.counts
    }

    /// Unwraps the underlying stream.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write + Seek> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let op = self.ops;
        self.ops += 1;
        self.counts.writes += 1;
        // Errors fire before any byte is consumed, so a retry layer can
        // safely re-issue the exact same write.
        if self.plan.fires(SALT_WRITE_ERR, op, self.plan.write_error_ppm) {
            self.counts.write_errors += 1;
            return Err(chaos_err("transient write error", op));
        }
        let mut n = buf.len();
        if n > 1 && self.plan.fires(SALT_SHORT, op, self.plan.short_write_ppm) {
            self.counts.short_writes += 1;
            n /= 2;
        }
        let mut data = buf[..n].to_vec();
        if self.plan.fires(SALT_FLIP, op, self.plan.bit_flip_ppm) {
            let h = mix(self.plan.seed, SALT_FLIP_POS, op, self.pos);
            let byte = (h as usize) % data.len();
            let bit = ((h >> 32) % 8) as u32;
            data[byte] ^= 1u8 << bit;
            self.counts.bit_flips += 1;
        }
        // Crash simulation: the caller sees `n` bytes accepted, but bytes
        // at or past the truncation offset never become durable.
        let keep = match self.plan.truncate_at {
            Some(t) if self.pos >= t => 0,
            Some(t) => ((t - self.pos) as usize).min(data.len()),
            None => data.len(),
        };
        self.counts.dropped_bytes += (data.len() - keep) as u64;
        if keep > 0 {
            self.inner.write_all(&data[..keep])?;
        }
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> IoResult<()> {
        let op = self.ops;
        self.ops += 1;
        if self.plan.fires(SALT_FLUSH, op, self.plan.flush_error_ppm) {
            self.counts.flush_errors += 1;
            return Err(chaos_err("flush error", op));
        }
        self.inner.flush()
    }
}

impl<W: Write + Seek> Seek for ChaosWriter<W> {
    fn seek(&mut self, to: SeekFrom) -> IoResult<u64> {
        match to {
            SeekFrom::Start(p) => {
                // Keep the inner stream clamped at the truncation point so
                // post-crash writes behind the cut still land correctly.
                let t = self.plan.truncate_at.unwrap_or(u64::MAX);
                self.inner.seek(SeekFrom::Start(p.min(t)))?;
                self.pos = p;
                Ok(p)
            }
            other => {
                let r = self.inner.seek(other)?;
                self.pos = r;
                Ok(r)
            }
        }
    }
}

/// A `Read + Seek` wrapper that injects seeded faults per [`ChaosPlan`].
#[derive(Debug)]
pub struct ChaosReader<R: Read + Seek> {
    inner: R,
    plan: ChaosPlan,
    counts: ChaosCounts,
    ops: u64,
}

impl<R: Read + Seek> ChaosReader<R> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: R, plan: ChaosPlan) -> Self {
        Self { inner, plan, counts: ChaosCounts::default(), ops: 0 }
    }

    /// Faults injected so far.
    pub fn counts(&self) -> ChaosCounts {
        self.counts
    }

    /// Unwraps the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read + Seek> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        let op = self.ops;
        self.ops += 1;
        if self.plan.fires(SALT_READ_ERR, op, self.plan.read_error_ppm) {
            self.counts.read_errors += 1;
            return Err(chaos_err("transient read error", op));
        }
        let n = self.inner.read(buf)?;
        if n > 0 && self.plan.fires(SALT_FLIP, op, self.plan.bit_flip_ppm) {
            let h = mix(self.plan.seed, SALT_FLIP_POS, op, n as u64);
            let byte = (h as usize) % n;
            let bit = ((h >> 32) % 8) as u32;
            buf[byte] ^= 1u8 << bit;
            self.counts.bit_flips += 1;
        }
        Ok(n)
    }
}

impl<R: Read + Seek> Seek for ChaosReader<R> {
    fn seek(&mut self, to: SeekFrom) -> IoResult<u64> {
        self.inner.seek(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn pass_through_plan_is_transparent() {
        let mut w = ChaosWriter::new(Cursor::new(Vec::new()), ChaosPlan::none(1));
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        w.flush().unwrap();
        assert_eq!(w.counts(), ChaosCounts { writes: 2, ..Default::default() });
        assert_eq!(w.into_inner().into_inner(), b"hello world");
    }

    #[test]
    fn truncation_drops_bytes_silently() {
        let plan = ChaosPlan { truncate_at: Some(7), ..ChaosPlan::none(1) };
        let mut w = ChaosWriter::new(Cursor::new(Vec::new()), plan);
        w.write_all(b"0123456789").unwrap(); // reported fully written
        w.write_all(b"abc").unwrap(); // entirely past the cut
        assert_eq!(w.counts().dropped_bytes, 6);
        assert_eq!(w.into_inner().into_inner(), b"0123456");
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = ChaosPlan {
            write_error_ppm: 300_000,
            short_write_ppm: 300_000,
            bit_flip_ppm: 200_000,
            ..ChaosPlan::none(99)
        };
        let run = || {
            let mut w = ChaosWriter::new(Cursor::new(Vec::new()), plan);
            for i in 0..200u32 {
                let chunk = [i as u8; 16];
                // Swallow injected errors; write_all retries nothing here.
                let _ = w.write(&chunk);
            }
            (w.counts(), w.into_inner().into_inner())
        };
        let (c1, b1) = run();
        let (c2, b2) = run();
        assert_eq!(c1, c2);
        assert_eq!(b1, b2);
        assert!(c1.write_errors > 0 && c1.short_writes > 0 && c1.bit_flips > 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| {
            let plan = ChaosPlan { bit_flip_ppm: 500_000, ..ChaosPlan::none(seed) };
            let mut w = ChaosWriter::new(Cursor::new(Vec::new()), plan);
            for _ in 0..64 {
                w.write_all(&[0u8; 8]).unwrap();
            }
            w.into_inner().into_inner()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn reader_injects_errors_and_flips() {
        let data: Vec<u8> = (0..=255u8).collect();
        let plan =
            ChaosPlan { read_error_ppm: 400_000, bit_flip_ppm: 400_000, ..ChaosPlan::none(7) };
        let mut r = ChaosReader::new(Cursor::new(data.clone()), plan);
        let mut out = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.to_string().contains("chaos") => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out.len(), data.len());
        assert!(r.counts().read_errors > 0);
        assert!(r.counts().bit_flips > 0);
        assert_ne!(out, data);
    }
}
