//! In-crate CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The v2 frame format appends a CRC-32 over every frame's
//! `[kind | len | payload]` bytes so a flipped bit is caught before a
//! corrupted payload reaches the JSON codec (DESIGN.md §14). The workspace
//! builds offline with no crates.io access, so the checksum is implemented
//! here: the standard byte-at-a-time table algorithm, table built at
//! compile time. This is the same CRC that gzip, PNG and zlib use, so a
//! frame checksum can be verified with any external tool.

/// The reflected IEEE 802.3 generator polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Streaming CRC-32 state, for callers that hash a frame in pieces.
#[derive(Debug, Clone, Copy)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Fresh state (all-ones preset, per the standard).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The final checksum (final XOR applied; the state is not consumed).
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 test vector ("check" in the Rocksoft model).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data = b"SPTRC frame payload with some bytes";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
