//! Property tests: the chunked on-disk format round-trips any
//! [`ProfileTrace`] bit-identically — including the optional
//! `truncated` / `dropped_snapshots` / `slices` fields — for any chunk
//! size, and the footer statistics always match the units on disk.

use proptest::prelude::*;

use simprof_engine::{MethodId, MethodRegistry, OpClass};
use simprof_profiler::trace::{ProfileTrace, SamplingUnit};
use simprof_sim::Counters;
use simprof_trace::{read_trace, TraceMeta, TraceWriter};

/// Builds a sampling unit from compact generator inputs.
fn build_unit(
    id: u64,
    hist: Vec<(u32, u32)>,
    slices: Vec<(u64, u64)>,
    instrs: u64,
    cycles: u64,
    truncated: bool,
    dropped: u32,
) -> SamplingUnit {
    let mut histogram: Vec<(MethodId, u32)> =
        hist.into_iter().map(|(m, c)| (MethodId(m), c)).collect();
    histogram.sort_by_key(|&(m, _)| m);
    histogram.dedup_by_key(|&mut (m, _)| m);
    let snapshots = histogram.iter().map(|&(_, c)| c).max().unwrap_or(0);
    SamplingUnit {
        id,
        histogram,
        snapshots,
        counters: Counters { instructions: instrs, cycles, ..Default::default() },
        slices,
        truncated,
        dropped_snapshots: dropped,
    }
}

fn unit_strategy() -> impl Strategy<Value = SamplingUnit> {
    (
        any::<u64>(),
        proptest::collection::vec((0u32..64, 1u32..50), 0..8),
        proptest::collection::vec((0u64..10_000, 0u64..30_000), 0..6),
        0u64..1_000_000,
        0u64..3_000_000,
        any::<bool>(),
        0u32..10,
    )
        .prop_map(|(id, hist, slices, instrs, cycles, truncated, dropped)| {
            build_unit(id, hist, slices, instrs, cycles, truncated, dropped)
        })
}

fn tmp(tag: &str, case: u64) -> String {
    std::env::temp_dir()
        .join(format!("simprof_prop_{tag}_{case}.sptrc"))
        .to_str()
        .unwrap()
        .to_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Writer → reader round-trips any trace bit-identically regardless of
    /// how units land on chunk boundaries.
    #[test]
    fn roundtrip_is_bit_identical(
        units in proptest::collection::vec(unit_strategy(), 0..30),
        chunk_units in 1usize..9,
        unit_instrs in 1u64..1_000_000,
        snapshot_instrs in 1u64..100_000,
        core in 0usize..4,
        tag in any::<u64>(),
    ) {
        let trace = ProfileTrace { unit_instrs, snapshot_instrs, core, units };
        let meta = TraceMeta {
            label: "prop".into(),
            seed: 7,
            scale: "tiny".into(),
            unit_instrs,
            snapshot_instrs,
            core,
        };
        let mut registry = MethodRegistry::new();
        registry.intern("Mapper.map", OpClass::Map);
        registry.intern("Reducer.reduce", OpClass::Reduce);

        let path = tmp("roundtrip", tag);
        let mut writer =
            TraceWriter::create(&path, &meta).unwrap().with_chunk_units(chunk_units);
        for unit in &trace.units {
            writer.push(unit);
        }
        let footer = writer.finish(&registry).unwrap();
        let (back, read_footer) = read_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        // The materialized trace is the original, field for field —
        // SamplingUnit's PartialEq covers histogram, counters, slices,
        // truncated and dropped_snapshots.
        prop_assert_eq!(&back, &trace);

        // Footer statistics agree with the trace's own accessors.
        prop_assert_eq!(read_footer.clone(), footer);
        // The default writer stays on the v2 layout (v3 compression is
        // opt-in), so sealed footers carry version 2.
        prop_assert_eq!(footer.version, 2);
        prop_assert_eq!(footer.unit_count, trace.units.len() as u64);
        prop_assert_eq!(footer.method_universe, trace.method_universe());
        prop_assert_eq!(footer.total_instrs, trace.total_instrs());
        prop_assert_eq!(footer.total_cycles, trace.total_cycles());
        prop_assert_eq!(footer.truncated_units, trace.truncated_units() as u64);
        prop_assert_eq!(footer.dropped_snapshots, trace.dropped_snapshots());
        prop_assert_eq!(footer.registry, registry);
    }
}
