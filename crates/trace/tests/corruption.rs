//! Property tests for the durability layer (DESIGN.md §14): for any
//! generated trace and any single-byte flip or truncation offset,
//!
//! * reading never panics,
//! * a streamed unit is never *silently* wrong — the frame CRC catches
//!   every flip before the unit reaches the caller, so whatever prefix a
//!   reader yields matches the original bit-for-bit,
//! * salvage recovers exactly the units of the chunk frames that are
//!   fully intact, and re-sealing them (`trace-repair`) round-trips
//!   bit-identically through the reader,
//! * the same chaos seed produces a bit-identical salvage outcome.
//!
//! The expected-recovery oracle walks the *uncorrupted* bytes with
//! layout knowledge (v2 frame = `kind | len u32 LE | payload | crc32`)
//! so the tests pin the format, not the implementation under test.

use std::io::Cursor;

use proptest::prelude::*;

use simprof_engine::{MethodId, MethodRegistry, OpClass};
use simprof_profiler::trace::SamplingUnit;
use simprof_sim::Counters;
use simprof_trace::{
    salvage_bytes, ChaosPlan, ChaosWriter, Codec, RetryPolicy, Salvage, TraceMeta, TraceReader,
    TraceWriter,
};

fn mk_unit(id: u64) -> SamplingUnit {
    SamplingUnit {
        id,
        histogram: vec![(MethodId((id % 4) as u32), 2 + (id % 3) as u32), (MethodId(9), 1)],
        snapshots: 4,
        counters: Counters {
            instructions: 900 + 7 * id,
            cycles: 1400 + 11 * id,
            ..Default::default()
        },
        slices: vec![(10 * id, 10 * id + 5)],
        truncated: id % 5 == 0,
        dropped_snapshots: (id % 3) as u32,
    }
}

fn mk_meta() -> TraceMeta {
    TraceMeta {
        label: "corrupt".into(),
        seed: 9,
        scale: "tiny".into(),
        unit_instrs: 900,
        snapshot_instrs: 90,
        core: 0,
    }
}

fn mk_registry() -> MethodRegistry {
    let mut reg = MethodRegistry::new();
    reg.intern("Mapper.map", OpClass::Map);
    reg.intern("Reducer.reduce", OpClass::Reduce);
    reg
}

/// Seals `units` into in-memory v2 trace bytes.
fn seal(units: &[SamplingUnit], chunk: usize) -> Vec<u8> {
    let mut w = TraceWriter::in_memory(&mk_meta()).unwrap().with_chunk_units(chunk);
    for u in units {
        w.push(u);
    }
    w.finish(&mk_registry()).unwrap();
    w.into_bytes()
}

/// Seals `units` into in-memory v3 trace bytes under the LZ codec.
fn seal_v3(units: &[SamplingUnit], chunk: usize) -> Vec<u8> {
    let mut w =
        TraceWriter::in_memory_compressed(&mk_meta(), Codec::Lz).unwrap().with_chunk_units(chunk);
    for u in units {
        w.push(u);
    }
    w.finish(&mk_registry()).unwrap();
    w.into_bytes()
}

/// Walks an *uncorrupted* sealed v2 trace frame by frame using only
/// layout knowledge. Returns `(kind, start, end)` per frame, ending at
/// the footer frame (the 12-byte trailer follows the last entry).
fn frame_map(bytes: &[u8]) -> Vec<(u8, usize, usize)> {
    let mut frames = Vec::new();
    let mut at = 8; // past the magic
    loop {
        let kind = bytes[at];
        let len = u32::from_le_bytes([bytes[at + 1], bytes[at + 2], bytes[at + 3], bytes[at + 4]])
            as usize;
        let end = at + 5 + len + 4; // v2: kind + len + payload + crc32
        frames.push((kind, at, end));
        if kind == b'F' {
            return frames;
        }
        at = end;
    }
}

/// Frame map for the v3 layout: `kind + codec + stored len u32 + stored
/// bytes + crc32`, where the length counts post-codec bytes.
fn frame_map_v3(bytes: &[u8]) -> Vec<(u8, usize, usize)> {
    let mut frames = Vec::new();
    let mut at = 8;
    loop {
        let kind = bytes[at];
        let len = u32::from_le_bytes([bytes[at + 2], bytes[at + 3], bytes[at + 4], bytes[at + 5]])
            as usize;
        let end = at + 6 + len + 4;
        frames.push((kind, at, end));
        if kind == b'F' {
            return frames;
        }
        at = end;
    }
}

/// The units salvage must recover when every chunk frame whose byte
/// range satisfies `intact` survives and every other chunk is lost.
/// Chunks hold `chunk` units each (tail chunk partial), in id order.
fn expected_units(
    all: &[SamplingUnit],
    chunk: usize,
    frames: &[(u8, usize, usize)],
    intact: impl Fn(usize, usize) -> bool,
) -> Vec<SamplingUnit> {
    let mut expected = Vec::new();
    let mut next = 0usize;
    for &(kind, start, end) in frames {
        if kind != b'U' {
            continue;
        }
        let take = (all.len() - next).min(chunk);
        if intact(start, end) {
            expected.extend_from_slice(&all[next..next + take]);
        }
        next += take;
    }
    expected
}

/// Streams units out of possibly-damaged bytes, asserting the yielded
/// prefix matches `all` element for element; errors terminate the stream
/// but must never panic and never yield a wrong unit first.
fn assert_stream_is_honest_prefix(bytes: &[u8], all: &[SamplingUnit]) {
    if let Ok(mut r) = TraceReader::from_reader(Cursor::new(bytes.to_vec()), "<corrupt>") {
        let mut i = 0usize;
        loop {
            match r.next_unit() {
                Ok(Some(u)) => {
                    prop_assert!(i < all.len(), "reader yielded more units than were written");
                    prop_assert_eq!(u, &all[i], "unit {} differs from the original", i);
                    i += 1;
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
        // The footer path must also fail cleanly, never panic.
        let _ = r.footer();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single-byte bit flip: streaming yields an honest prefix, and
    /// salvage recovers exactly the chunks the flip did not touch.
    #[test]
    fn single_byte_flip_never_panics_never_lies(
        n in 0u64..18,
        chunk in 1usize..6,
        fpos in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let all: Vec<SamplingUnit> = (0..n).map(mk_unit).collect();
        let bytes = seal(&all, chunk);
        let f = fpos % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[f] ^= 1u8 << bit;

        assert_stream_is_honest_prefix(&corrupt, &all);

        let res = salvage_bytes(&corrupt, "<flip>");
        if f < 8 {
            // A flipped magic byte makes the file unidentifiable; both
            // magics differ from each other by more than one bit, so a
            // single flip can never alias layouts.
            prop_assert!(res.is_err());
        } else {
            let s = res.unwrap();
            let frames = frame_map(&bytes);
            let expected = expected_units(&all, chunk, &frames, |start, end| {
                !(f >= start && f < end)
            });
            prop_assert_eq!(&s.units, &expected);
            prop_assert_eq!(s.report.recovered_units, expected.len() as u64);
            prop_assert!(!s.report.clean, "a flipped byte can never leave the file clean");
        }
    }

    /// Any truncation offset — including mid-magic, mid-frame and
    /// pre-footer — salvages successfully, recovering exactly the fully
    /// intact chunk prefix, and the salvage re-seals into a valid trace
    /// that round-trips bit-identically.
    #[test]
    fn truncation_recovers_exactly_the_intact_chunk_prefix(
        n in 0u64..18,
        chunk in 1usize..6,
        tpos in 0usize..1_000_000,
    ) {
        let all: Vec<SamplingUnit> = (0..n).map(mk_unit).collect();
        let bytes = seal(&all, chunk);
        let t = tpos % (bytes.len() + 1);
        let cut = &bytes[..t];

        assert_stream_is_honest_prefix(cut, &all);

        let s = salvage_bytes(cut, "<cut>").unwrap();
        let frames = frame_map(&bytes);
        let expected = expected_units(&all, chunk, &frames, |_, end| end <= t);
        prop_assert_eq!(&s.units, &expected);
        prop_assert_eq!(s.report.recovered_units, expected.len() as u64);
        prop_assert_eq!(s.report.clean, t == bytes.len());
        prop_assert_eq!(s.report.file_bytes, t as u64);

        // trace-repair's rewrite: re-seal the salvage and stream it back.
        let mut w = TraceWriter::in_memory(&s.meta).unwrap();
        for u in &s.units {
            w.push(u);
        }
        let sealed = w.finish(&s.footer.registry).unwrap();
        prop_assert_eq!(sealed.unit_count, s.report.recovered_units);
        let repaired = w.into_bytes();
        let mut r = TraceReader::from_reader(Cursor::new(repaired), "<repaired>")
            .unwrap();
        let footer = r.footer().unwrap();
        prop_assert_eq!(footer.unit_count, s.units.len() as u64);
        let mut back = Vec::new();
        while let Some(u) = r.next_unit().unwrap() {
            back.push(u.clone());
        }
        prop_assert_eq!(back, s.units);
    }

    /// v3 (compressed) files under a single-byte flip: the CRC over the
    /// *stored* bytes rejects the frame before the decompressor sees it,
    /// streaming stays an honest prefix, and salvage recovers exactly the
    /// untouched chunks — decompressed back to the original units.
    #[test]
    fn v3_single_byte_flip_never_panics_never_lies(
        n in 0u64..18,
        chunk in 1usize..6,
        fpos in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let all: Vec<SamplingUnit> = (0..n).map(mk_unit).collect();
        let bytes = seal_v3(&all, chunk);
        let f = fpos % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[f] ^= 1u8 << bit;

        assert_stream_is_honest_prefix(&corrupt, &all);

        let res = salvage_bytes(&corrupt, "<v3flip>");
        if f < 8 {
            prop_assert!(res.is_err());
        } else {
            let s = res.unwrap();
            prop_assert_eq!(s.report.layout_version, 3);
            let frames = frame_map_v3(&bytes);
            let expected = expected_units(&all, chunk, &frames, |start, end| {
                !(f >= start && f < end)
            });
            prop_assert_eq!(&s.units, &expected);
            prop_assert!(!s.report.clean);
        }
    }

    /// v3 truncation — including cuts that split a compressed frame —
    /// salvages exactly the intact chunk prefix, and re-sealing under the
    /// same codec round-trips.
    #[test]
    fn v3_truncation_recovers_exactly_the_intact_chunk_prefix(
        n in 0u64..18,
        chunk in 1usize..6,
        tpos in 0usize..1_000_000,
    ) {
        let all: Vec<SamplingUnit> = (0..n).map(mk_unit).collect();
        let bytes = seal_v3(&all, chunk);
        let t = tpos % (bytes.len() + 1);
        let cut = &bytes[..t];

        assert_stream_is_honest_prefix(cut, &all);

        let s = salvage_bytes(cut, "<v3cut>").unwrap();
        let frames = frame_map_v3(&bytes);
        let expected = expected_units(&all, chunk, &frames, |_, end| end <= t);
        prop_assert_eq!(&s.units, &expected);
        prop_assert_eq!(s.report.clean, t == bytes.len());

        // Re-seal the salvage compressed and stream it back.
        let mut w = TraceWriter::in_memory_compressed(&s.meta, Codec::Lz).unwrap();
        for u in &s.units {
            w.push(u);
        }
        w.finish(&s.footer.registry).unwrap();
        let mut r = TraceReader::from_reader(Cursor::new(w.into_bytes()), "<v3repaired>")
            .unwrap();
        prop_assert_eq!(r.footer().unwrap().unit_count, s.units.len() as u64);
        let mut back = Vec::new();
        while let Some(u) = r.next_unit().unwrap() {
            back.push(u.clone());
        }
        prop_assert_eq!(back, s.units);
    }

    /// v1 (CRC-less) files: truncation still salvages to exactly the
    /// intact chunk prefix — validation falls back to JSON parsing.
    #[test]
    fn legacy_v1_truncation_salvages_intact_prefix(
        n in 0u64..12,
        chunk in 1usize..5,
        tpos in 0usize..1_000_000,
    ) {
        let all: Vec<SamplingUnit> = (0..n).map(mk_unit).collect();
        let path = std::env::temp_dir()
            .join(format!("simprof_corrupt_v1_{n}_{chunk}_{tpos}.sptrc"))
            .to_str()
            .unwrap()
            .to_owned();
        let mut w =
            TraceWriter::create_legacy_v1(&path, &mk_meta()).unwrap().with_chunk_units(chunk);
        for u in &all {
            w.push(u);
        }
        w.finish(&mk_registry()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        let t = tpos % (bytes.len() + 1);
        let s = salvage_bytes(&bytes[..t], "<v1cut>").unwrap();
        prop_assert_eq!(s.report.layout_version, if t >= 8 { 1 } else { 2 });

        // v1 frame = kind + len + payload (no CRC): walk accordingly.
        let mut expected = Vec::new();
        let mut next = 0usize;
        let mut at = 8usize;
        loop {
            let kind = bytes[at];
            let len = u32::from_le_bytes([
                bytes[at + 1],
                bytes[at + 2],
                bytes[at + 3],
                bytes[at + 4],
            ]) as usize;
            let end = at + 5 + len;
            if kind == b'U' {
                let take = (all.len() - next).min(chunk);
                if end <= t {
                    expected.extend_from_slice(&all[next..next + take]);
                }
                next += take;
            }
            if kind == b'F' {
                break;
            }
            at = end;
        }
        prop_assert_eq!(&s.units, &expected);
    }
}

/// The acceptance criterion, pinned exhaustively: a small trace truncated
/// at *every* byte offset is openable via salvage.
#[test]
fn every_truncation_offset_salvages() {
    let all: Vec<SamplingUnit> = (0..7).map(mk_unit).collect();
    let bytes = seal(&all, 2);
    let frames = frame_map(&bytes);
    for t in 0..=bytes.len() {
        let s = salvage_bytes(&bytes[..t], "<sweep>")
            .unwrap_or_else(|e| panic!("truncation at offset {t} must salvage: {e}"));
        let expected = expected_units(&all, 2, &frames, |_, end| end <= t);
        assert_eq!(s.units, expected, "offset {t}");
        assert_eq!(s.report.recovered_units, expected.len() as u64, "offset {t}");
        assert_eq!(s.report.clean, t == bytes.len(), "offset {t}");
    }
}

/// The exhaustive truncation sweep, repeated for the compressed layout.
#[test]
fn every_v3_truncation_offset_salvages() {
    let all: Vec<SamplingUnit> = (0..7).map(mk_unit).collect();
    let bytes = seal_v3(&all, 2);
    let frames = frame_map_v3(&bytes);
    for t in 0..=bytes.len() {
        let s = salvage_bytes(&bytes[..t], "<v3sweep>")
            .unwrap_or_else(|e| panic!("v3 truncation at offset {t} must salvage: {e}"));
        let expected = expected_units(&all, 2, &frames, |_, end| end <= t);
        assert_eq!(s.units, expected, "offset {t}");
        assert_eq!(s.report.clean, t == bytes.len(), "offset {t}");
    }
}

/// The same chaos seed replays the same faults, so the whole
/// write-under-chaos → salvage → repair pipeline is bit-identical
/// between runs.
#[test]
fn same_chaos_seed_yields_bit_identical_salvage() {
    fn run(seed: u64) -> Option<(Salvage, Vec<u8>)> {
        let all: Vec<SamplingUnit> = (0..24).map(mk_unit).collect();
        let plan =
            ChaosPlan { bit_flip_ppm: 120_000, truncate_at: Some(1700), ..ChaosPlan::none(seed) };
        let chaos = ChaosWriter::new(Cursor::new(Vec::new()), plan);
        let mut w = TraceWriter::from_writer(chaos, "<chaos>", &mk_meta())
            .ok()?
            .with_chunk_units(3)
            .with_retry(RetryPolicy { max_retries: 4, backoff_ms: 0 });
        for u in &all {
            w.push(u);
        }
        // Flips are silent and truncation lies about durability, so
        // finish may well "succeed" — exactly the crash being simulated.
        let _ = w.finish(&mk_registry());
        let chaos = w.into_writer();
        let counts = chaos.counts();
        assert!(
            counts.bit_flips > 0 || counts.dropped_bytes > 0,
            "chaos plan must actually inject faults"
        );
        let bytes = chaos.into_inner().into_inner();
        let s = salvage_bytes(&bytes, "<chaos>").ok()?;
        let mut w = TraceWriter::in_memory(&s.meta).unwrap();
        for u in &s.units {
            w.push(u);
        }
        w.finish(&s.footer.registry).ok()?;
        Some((s, w.into_bytes()))
    }

    // Some seeds flip the magic itself (legitimately unsalvageable);
    // pick the first seed that salvages and pin its determinism.
    let seed = (0..32)
        .find(|&s| run(s).is_some())
        .expect("at least one seed in 0..32 must produce a salvageable file");
    let (s1, repaired1) = run(seed).unwrap();
    let (s2, repaired2) = run(seed).unwrap();
    assert_eq!(s1, s2, "salvage outcome must be bit-identical for the same seed");
    assert_eq!(repaired1, repaired2, "repair output must be bit-identical for the same seed");
    assert!(s1.report.recovered_units > 0, "the chosen seed should recover something");
}
