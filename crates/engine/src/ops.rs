//! Instrumented kernels.
//!
//! Each kernel *really executes* its algorithm on real data at
//! job-construction time and emits the [`WorkItem`] cost trace the scheduler
//! will later replay against the machine model. Because instruction counts
//! and memory footprints are derived from the actual data (actual token
//! counts, actual hash-map growth, actual quicksort partition sizes), the
//! performance phenomena the paper reports — e.g. the non-homogeneous
//! sort phase caused by small vs. large quicksort partitions (§III-B-1) —
//! emerge mechanistically instead of being scripted.

use std::collections::HashMap;
use std::hash::Hash;

use simprof_sim::{AccessPattern, Machine, Region};

use crate::methods::MethodId;
use crate::work::WorkItem;

/// Calibrated instruction costs (instructions per unit of work). These play
/// the role of the per-bytecode costs of a JVM interpreter/JIT profile.
pub mod costs {
    /// Instructions per input byte scanned during tokenization.
    pub const TOKENIZE_PER_BYTE: u64 = 4;
    /// Instructions per token emitted (object allocation, pair creation).
    pub const TOKEN_EMIT: u64 = 24;
    /// Instructions per hash-map insert/probe (hashing + bucket walk).
    pub const HASH_PROBE: u64 = 45;
    /// Instructions per element per quicksort partition pass.
    pub const SORT_PASS: u64 = 8;
    /// Instructions per element for insertion-sort leaves.
    pub const SORT_LEAF: u64 = 6;
    /// Base instructions per element merged in a k-way merge.
    pub const MERGE_BASE: u64 = 22;
    /// Extra instructions per element per doubling of merge fan-in.
    pub const MERGE_LOG: u64 = 8;
    /// Instructions per byte for substring scanning (grep).
    pub const SCAN_PER_BYTE: u64 = 3;
    /// Memory intensity (cache-line touches per 1000 instructions) of
    /// streaming scans — an "access" in the machine model is one line touch,
    /// so a byte-scanner at ~4 instructions/byte touches a new 64-B line
    /// every ~256 instructions.
    pub const SEQ_APKI: u32 = 8;
    /// Memory intensity of hash-map probing.
    pub const HASH_APKI: u32 = 50;
    /// Memory intensity of in-place sorting passes.
    pub const SORT_APKI: u32 = 18;
    /// Memory intensity of k-way merging.
    pub const MERGE_APKI: u32 = 30;
}

/// Tokenizes lines into whitespace-separated words, returning the real
/// tokens and the cost item for the scan.
pub fn tokenize(
    lines: &[String],
    path: Vec<MethodId>,
    input_region: Region,
    seed: u64,
) -> (Vec<&str>, WorkItem) {
    let bytes: u64 = lines.iter().map(|l| l.len() as u64).sum();
    let tokens: Vec<&str> = lines.iter().flat_map(|l| l.split_whitespace()).collect();
    let instrs = bytes * costs::TOKENIZE_PER_BYTE + tokens.len() as u64 * costs::TOKEN_EMIT;
    let item = WorkItem::compute(
        path,
        instrs,
        costs::SEQ_APKI,
        AccessPattern::Sequential,
        input_region,
        seed,
    );
    (tokens, item)
}

/// Scans lines for a literal substring (grep), returning matching line
/// indices and the cost item.
pub fn scan_match(
    lines: &[String],
    needle: &str,
    path: Vec<MethodId>,
    input_region: Region,
    seed: u64,
) -> (Vec<usize>, WorkItem) {
    let bytes: u64 = lines.iter().map(|l| l.len() as u64).sum();
    let matches: Vec<usize> =
        lines.iter().enumerate().filter(|(_, l)| l.contains(needle)).map(|(i, _)| i).collect();
    let instrs = bytes * costs::SCAN_PER_BYTE + matches.len() as u64 * costs::TOKEN_EMIT;
    let item = WorkItem::compute(
        path,
        instrs,
        costs::SEQ_APKI,
        AccessPattern::Sequential,
        input_region,
        seed,
    );
    (matches, item)
}

/// Hash-aggregates `pairs` by key with `merge` (the map-side combine /
/// reduce-by-key kernel). Processes records in batches; after each batch the
/// emitted item's region covers the hash map *as it has grown so far*, so
/// early batches probe a small, cache-resident map and late batches a large
/// one — the paper's "random accesses over per-key state" reduce behaviour.
/// `pattern` sets how probes spread over the live map:
/// [`AccessPattern::Zipf`] for frequency-skewed keys (words, graph hubs),
/// [`AccessPattern::Random`] for uniform keys.
///
/// Returns the real aggregated pairs — **sorted by key**, so downstream
/// routing is deterministic regardless of `HashMap` iteration order — and
/// the cost items. `entry_bytes` is the modelled in-memory footprint of one
/// map entry.
#[allow(clippy::too_many_arguments)]
pub fn hash_combine<K, V, I, F>(
    pairs: I,
    mut merge: F,
    entry_bytes: u64,
    batch: usize,
    path: Vec<MethodId>,
    pattern: AccessPattern,
    machine: &mut Machine,
    seed: u64,
) -> (Vec<(K, V)>, Vec<WorkItem>)
where
    K: Hash + Eq + Ord,
    I: IntoIterator<Item = (K, V)>,
    F: FnMut(&mut V, V),
{
    assert!(batch > 0, "batch must be positive");
    let mut map: HashMap<K, V> = HashMap::new();
    // (records processed, distinct keys after the batch) checkpoints.
    let mut checkpoints: Vec<(u64, u64)> = Vec::new();
    let mut in_batch = 0u64;
    for (k, v) in pairs {
        match map.entry(k) {
            std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(v);
            }
        }
        in_batch += 1;
        if in_batch == batch as u64 {
            checkpoints.push((in_batch, map.len() as u64));
            in_batch = 0;
        }
    }
    if in_batch > 0 {
        checkpoints.push((in_batch, map.len() as u64));
    }

    // The map's final footprint is known now; allocate it and attribute each
    // batch to the prefix that existed when the batch ran.
    let final_bytes = (map.len() as u64 * entry_bytes).max(64);
    let region = machine.alloc(final_bytes);
    let items = checkpoints
        .iter()
        .enumerate()
        .map(|(i, &(records, distinct))| {
            let live = Region::new(region.base, (distinct * entry_bytes).max(64));
            WorkItem::compute(
                path.clone(),
                records * costs::HASH_PROBE,
                costs::HASH_APKI,
                pattern,
                live,
                seed.wrapping_add(i as u64),
            )
        })
        .collect();
    let mut out: Vec<(K, V)> = map.into_iter().collect();
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    (out, items)
}

/// In-place quicksort that emits one cost item per partition pass.
///
/// Runs a real median-of-three Hoare quicksort over `data`; every partition
/// pass over `s` elements emits an item whose region is exactly that
/// partition's slice of `region`, so passes over partitions larger than a
/// cache level miss in it and passes over small partitions hit — the
/// mechanism behind the paper's non-homogeneous sort phases. Leaf partitions
/// (`≤ LEAF` elements) are insertion-sorted and batched into combined
/// low-footprint items to bound the trace length.
pub fn quicksort_trace<T: Ord>(
    data: &mut [T],
    elem_bytes: u64,
    region: Region,
    path: Vec<MethodId>,
    seed: u64,
) -> Vec<WorkItem> {
    const LEAF: usize = 48;
    /// Flush accumulated leaf work once it exceeds this many instructions.
    const LEAF_FLUSH: u64 = 120_000;

    let mut items = Vec::new();
    let mut pending_leaf_instrs = 0u64;
    let mut emitted = 0u64;
    let flush_leaves = |pending: &mut u64, items: &mut Vec<WorkItem>, emitted: &mut u64| {
        if *pending == 0 {
            return;
        }
        items.push(WorkItem::compute(
            path.clone(),
            *pending,
            costs::SORT_APKI,
            AccessPattern::RandomWindow { window_bytes: (LEAF as u64 * elem_bytes).max(64) },
            region,
            seed.wrapping_add(0x5EAF).wrapping_add(*emitted),
        ));
        *emitted += 1;
        *pending = 0;
    };

    let mut stack: Vec<(usize, usize)> = vec![(0, data.len())];
    while let Some((lo, hi)) = stack.pop() {
        let s = hi - lo;
        if s <= 1 {
            continue;
        }
        if s <= LEAF {
            insertion_sort(&mut data[lo..hi]);
            pending_leaf_instrs += s as u64 * costs::SORT_LEAF * 2;
            if pending_leaf_instrs >= LEAF_FLUSH {
                flush_leaves(&mut pending_leaf_instrs, &mut items, &mut emitted);
            }
            continue;
        }
        // Cost of this partition pass, over exactly this partition's memory.
        // A pass is a two-pointer *stream* over the partition: whether it
        // hits depends on the partition still being resident from the
        // previous pass — small partitions re-hit, large ones re-miss.
        let part_region = Region::new(region.base + lo as u64 * elem_bytes, s as u64 * elem_bytes);
        items.push(WorkItem::compute(
            path.clone(),
            s as u64 * costs::SORT_PASS,
            costs::SORT_APKI,
            AccessPattern::Sequential,
            part_region,
            seed.wrapping_add(emitted),
        ));
        emitted += 1;

        // After partitioning, the pivot sits in its final position `p`:
        // recurse strictly left and right of it.
        let p = partition(data, lo, hi);
        // Process the left side next (LIFO): recursion descends into smaller
        // pieces after each big pass, reproducing the time-varying footprint.
        stack.push((p + 1, hi));
        stack.push((lo, p));
    }
    flush_leaves(&mut pending_leaf_instrs, &mut items, &mut emitted);
    items
}

fn insertion_sort<T: Ord>(a: &mut [T]) {
    for i in 1..a.len() {
        let mut j = i;
        while j > 0 && a[j] < a[j - 1] {
            a.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// Hoare partition with median-of-three pivot. Returns `p` such that
/// `data[lo..=p] <= data[p+1..hi]` element-wise.
fn partition<T: Ord>(data: &mut [T], lo: usize, hi: usize) -> usize {
    let mid = lo + (hi - lo) / 2;
    let last = hi - 1;
    // Median-of-three into `lo`.
    if data[mid] < data[lo] {
        data.swap(mid, lo);
    }
    if data[last] < data[lo] {
        data.swap(last, lo);
    }
    if data[last] < data[mid] {
        data.swap(last, mid);
    }
    data.swap(lo, mid); // pivot to front
    let mut i = lo;
    let mut j = hi;
    loop {
        loop {
            i += 1;
            if i >= hi || data[i] >= data[lo] {
                break;
            }
        }
        loop {
            j -= 1;
            if data[j] <= data[lo] {
                break;
            }
        }
        if i >= j {
            data.swap(lo, j);
            return j;
        }
        data.swap(i, j);
    }
}

/// K-way merges sorted runs into one sorted vector, emitting cost items per
/// merged chunk. The k advancing read frontiers stream through the runs'
/// combined region once, so the pattern is a (prefetch-friendly) sequential
/// walk of the whole region.
pub fn kway_merge<T: Ord + Clone>(
    runs: &[Vec<T>],
    elem_bytes: u64,
    region: Region,
    path: Vec<MethodId>,
    seed: u64,
) -> (Vec<T>, Vec<WorkItem>) {
    const CHUNK: usize = 8_192;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let k = runs.iter().filter(|r| !r.is_empty()).count().max(1);
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<Reverse<(T, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(ri, r)| Reverse((r[0].clone(), ri, 0)))
        .collect();

    let mut out = Vec::with_capacity(total);
    let mut items = Vec::new();
    let per_elem = costs::MERGE_BASE
        + costs::MERGE_LOG * (k as u64).next_power_of_two().trailing_zeros() as u64;
    let mut since_item = 0usize;
    let mut emitted = 0u64;
    while let Some(Reverse((v, ri, pos))) = heap.pop() {
        out.push(v);
        if pos + 1 < runs[ri].len() {
            heap.push(Reverse((runs[ri][pos + 1].clone(), ri, pos + 1)));
        }
        since_item += 1;
        if since_item == CHUNK {
            items.push(WorkItem::compute(
                path.clone(),
                since_item as u64 * per_elem,
                costs::MERGE_APKI,
                AccessPattern::Sequential,
                region,
                seed.wrapping_add(emitted),
            ));
            emitted += 1;
            since_item = 0;
        }
    }
    if since_item > 0 {
        items.push(WorkItem::compute(
            path.clone(),
            since_item as u64 * per_elem,
            costs::MERGE_APKI,
            AccessPattern::Sequential,
            region,
            seed.wrapping_add(emitted),
        ));
    }
    let _ = elem_bytes;
    (out, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    fn path() -> Vec<MethodId> {
        vec![MethodId(0)]
    }

    fn region(bytes: u64) -> Region {
        Region::new(0x10_000, bytes)
    }

    #[test]
    fn tokenize_counts_real_tokens() {
        let lines = vec!["the quick brown fox".to_owned(), "jumps  over".to_owned()];
        let (tokens, item) = tokenize(&lines, path(), region(1024), 1);
        assert_eq!(tokens, vec!["the", "quick", "brown", "fox", "jumps", "over"]);
        assert_eq!(item.instrs, (19 + 11) * costs::TOKENIZE_PER_BYTE + 6 * costs::TOKEN_EMIT);
        assert_eq!(item.pattern, AccessPattern::Sequential);
    }

    #[test]
    fn scan_match_finds_lines() {
        let lines = vec!["error: disk".to_owned(), "ok".to_owned(), "error again".to_owned()];
        let (m, _item) = scan_match(&lines, "error", path(), region(128), 1);
        assert_eq!(m, vec![0, 2]);
    }

    #[test]
    fn hash_combine_aggregates_correctly() {
        let mut machine = Machine::new(MachineConfig::scaled(1));
        let pairs = vec![("a", 1i64), ("b", 1), ("a", 1), ("c", 1), ("a", 1)];
        let (combined, items) = hash_combine(
            pairs,
            |acc, v| *acc += v,
            64,
            2,
            path(),
            AccessPattern::Random,
            &mut machine,
            7,
        );
        assert_eq!(combined, vec![("a", 3), ("b", 1), ("c", 1)], "sorted by key");
        // 5 records in batches of 2 → 3 items.
        assert_eq!(items.len(), 3);
        // Regions grow with distinct-key count.
        assert!(items[0].region.bytes <= items[2].region.bytes);
        assert_eq!(items.last().unwrap().region.bytes, 3 * 64);
    }

    #[test]
    fn quicksort_actually_sorts() {
        let mut data: Vec<u64> = (0..5000).map(|i| (i * 2_654_435_761u64) % 100_000).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let items = quicksort_trace(&mut data, 8, region(5000 * 8), path(), 3);
        assert_eq!(data, expect);
        assert!(!items.is_empty());
    }

    #[test]
    fn quicksort_partition_regions_shrink_over_time() {
        let mut data: Vec<u64> = (0..20_000).map(|i| (i * 2_654_435_761u64) % 1_000_000).collect();
        let items = quicksort_trace(&mut data, 8, region(20_000 * 8), path(), 3);
        let first = items.first().unwrap().region.bytes;
        assert_eq!(first, 20_000 * 8, "first pass covers the whole array");
        let min = items.iter().map(|i| i.region.bytes).min().unwrap();
        assert!(min < first / 16, "late passes work on small partitions");
    }

    #[test]
    fn quicksort_handles_degenerate_inputs() {
        let mut empty: Vec<u64> = vec![];
        assert!(quicksort_trace(&mut empty, 8, region(64), path(), 1).is_empty());
        let mut single = vec![5u64];
        quicksort_trace(&mut single, 8, region(64), path(), 1);
        assert_eq!(single, vec![5]);
        let mut dup = vec![7u64; 3000];
        let items = quicksort_trace(&mut dup, 8, region(3000 * 8), path(), 1);
        assert_eq!(dup, vec![7u64; 3000]);
        assert!(!items.is_empty(), "all-equal keys must still terminate");
        let mut sorted: Vec<u64> = (0..3000).collect();
        quicksort_trace(&mut sorted, 8, region(3000 * 8), path(), 1);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn kway_merge_merges() {
        let runs = vec![vec![1u64, 4, 7], vec![2, 5, 8], vec![3, 6, 9], vec![]];
        let (out, items) = kway_merge(&runs, 8, region(9 * 8), path(), 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].instrs, 9 * (costs::MERGE_BASE + 2 * costs::MERGE_LOG));
    }

    #[test]
    fn kway_merge_chunking() {
        let runs: Vec<Vec<u64>> =
            (0..4).map(|r| (0..5000u64).map(|i| i * 4 + r).collect()).collect();
        let (out, items) = kway_merge(&runs, 8, region(20_000 * 8), path(), 1);
        assert_eq!(out.len(), 20_000);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert!(items.len() >= 2, "20000 elems / 8192 chunk → ≥2 items");
    }
}
