//! Execution-engine substrate for SimProf.
//!
//! This crate is the stand-in for the JVM + Apache Spark / Apache Hadoop
//! stack the paper profiles. It executes *jobs* — staged collections of
//! tasks — on the [`simprof_sim`] machine model while maintaining an explicit
//! per-thread call stack of interned method names, which is what the paper
//! obtains through JVMTI.
//!
//! The key design split: **functional execution happens at job-construction
//! time on real data** (real tokenization, real hash aggregation, real
//! quicksort recursion, real graph traversals), producing a precise cost
//! trace of [`work::WorkItem`]s; **timing execution happens in the
//! scheduler**, which interleaves executor threads in instruction quanta,
//! drives the cache hierarchy with each item's access pattern, and reports
//! progress to a profiler through [`sched::ExecListener`]. This mirrors
//! trace-driven architectural simulation and keeps the whole pipeline
//! deterministic.
//!
//! * [`methods`] — interned method names with operation classes (map /
//!   reduce / sort / IO / framework).
//! * [`work`] — work items, tasks, stages, jobs.
//! * [`sched`] — the quantum scheduler: round-robin executor threads pinned
//!   to cores, migration-noise polling, listener hooks, runtime fault
//!   recovery (crash re-queue, speculative twins, lost-fetch re-charging).
//! * [`faults`] — seeded runtime fault injection: the [`faults::FaultPlan`]
//!   the scheduler consults and the [`faults::FaultLog`] it returns.
//! * [`ops`] — instrumented kernels (tokenize, hash combine, quicksort,
//!   k-way merge, graph gather) that run real algorithms and emit cost items.
//! * [`hdfs`] — block-granularity distributed-filesystem cost model.
//! * [`spark`] — Spark-flavoured job assembly: long-lived executor threads,
//!   map-side combine, shuffle stages, realistic method naming.
//! * [`hadoop`] — Hadoop-flavoured job assembly: per-task executors, map →
//!   sort/spill → combine pipeline, reduce with k-way merge.

pub mod faults;
pub mod hadoop;
pub mod hdfs;
pub mod methods;
pub mod net;
pub mod ops;
pub mod sched;
pub mod spark;
pub mod work;

pub use faults::{FaultEvent, FaultLog, FaultPlan};
pub use hdfs::Hdfs;
pub use methods::{MethodId, MethodRegistry, OpClass};
pub use net::Network;
pub use sched::{ExecListener, SchedConfig, Scheduler};
pub use work::{inject_task_retries, Job, Stage, Task, WorkItem};
