//! Interned method names.
//!
//! The paper's call stacks contain JVM method names; SimProf vectorizes units
//! by method frequency and later reports "the method with the highest weight
//! in a phase center" to help architects interpret phases. The registry
//! interns fully qualified names (e.g.
//! `org.apache.spark.Aggregator.combineValuesByKey`) into dense [`MethodId`]s
//! and carries each method's operation class, which is the ground-truth label
//! used when reproducing the paper's phase-type breakdown (Fig. 10).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of an interned method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MethodId(pub u32);

impl MethodId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The paper's phase-type categories (§IV-D): map, reduce, sort, and IO
/// operations, plus framework plumbing (executor startup, task dispatch)
/// which the regression-based feature selection eliminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Per-record transformation work (map, filter, tokenize, project).
    Map,
    /// Combining values by key (combine, reduce, aggregate).
    Reduce,
    /// Key ordering (quicksort, merges used for ordering).
    Sort,
    /// Disk / HDFS / shuffle-network transfer.
    Io,
    /// Engine plumbing that appears in every stack.
    Framework,
}

impl OpClass {
    /// Short lowercase label used in reports ("map", "reduce", …).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Map => "map",
            OpClass::Reduce => "reduce",
            OpClass::Sort => "sort",
            OpClass::Io => "io",
            OpClass::Framework => "framework",
        }
    }

    /// All classes, in report order.
    pub const ALL: [OpClass; 5] =
        [OpClass::Map, OpClass::Reduce, OpClass::Sort, OpClass::Io, OpClass::Framework];
}

/// Interner mapping method names to dense ids with operation classes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MethodRegistry {
    names: Vec<String>,
    classes: Vec<OpClass>,
    index: HashMap<String, MethodId>,
}

impl MethodRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` with the given class; re-interning an existing name
    /// returns the original id (the class of the first interning wins).
    pub fn intern(&mut self, name: &str, class: OpClass) -> MethodId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = MethodId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.classes.push(class);
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already interned name.
    pub fn lookup(&self, name: &str) -> Option<MethodId> {
        self.index.get(name).copied()
    }

    /// The fully qualified name of `id`.
    pub fn name(&self, id: MethodId) -> &str {
        &self.names[id.index()]
    }

    /// The operation class of `id`.
    pub fn class(&self, id: MethodId) -> OpClass {
        self.classes[id.index()]
    }

    /// Number of interned methods.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = MethodRegistry::new();
        let a = r.intern("Foo.bar", OpClass::Map);
        let b = r.intern("Foo.bar", OpClass::Sort);
        assert_eq!(a, b);
        assert_eq!(r.class(a), OpClass::Map, "first class wins");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut r = MethodRegistry::new();
        let a = r.intern("A", OpClass::Map);
        let b = r.intern("B", OpClass::Io);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(r.name(b), "B");
    }

    #[test]
    fn lookup_misses_unknown() {
        let mut r = MethodRegistry::new();
        r.intern("A", OpClass::Map);
        assert!(r.lookup("A").is_some());
        assert!(r.lookup("Z").is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(OpClass::Map.label(), "map");
        assert_eq!(OpClass::Io.label(), "io");
        assert_eq!(OpClass::ALL.len(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = MethodRegistry::new();
        r.intern("Spark.run", OpClass::Framework);
        r.intern("Agg.combine", OpClass::Reduce);
        let json = serde_json::to_string(&r).unwrap();
        let back: MethodRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup("Agg.combine"), r.lookup("Agg.combine"));
        assert_eq!(back.class(back.lookup("Agg.combine").unwrap()), OpClass::Reduce);
    }
}
