//! Cluster network cost model.
//!
//! Data-analytic frameworks "scale out to multiple nodes" (paper §I); when a
//! job spans nodes, the shuffle moves most of its data across the network
//! instead of the local disk. Like [`crate::hdfs::Hdfs`], only the *cost*
//! behaviour matters to phase formation: a per-transfer round-trip plus a
//! per-byte streaming cost.

use serde::{Deserialize, Serialize};

/// Network latency/bandwidth model. Defaults approximate 10 GbE behind a
/// ~3.7 GHz core: ~1 GB/s effective per stream (≈ 3.5 cycles/byte) and a
/// ~25 µs round-trip (≈ 90 K cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// Fixed cycles per transfer (connection + round-trip).
    pub rtt_cycles: u64,
    /// Milli-cycles per byte transferred.
    pub mcycles_per_byte: u64,
}

impl Default for Network {
    fn default() -> Self {
        Self { rtt_cycles: 90_000, mcycles_per_byte: 3_500 }
    }
}

impl Network {
    /// Stall cycles to move `bytes` across the network (zero bytes → zero:
    /// no transfer happens at all). Saturates at `u64::MAX` instead of
    /// overflowing for pathological byte counts or rates.
    pub fn transfer_stall(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            let streaming = (bytes as u128 * self.mcycles_per_byte as u128) / 1000;
            self.rtt_cycles.saturating_add(u64::try_from(streaming).unwrap_or(u64::MAX))
        }
    }

    /// Stall cycles for a shuffle fetch of `bytes` of which `remote_fraction`
    /// crosses the network (the rest is a local-disk read handled by the
    /// HDFS model). With `remote_fraction = 0` this is free — single-node
    /// shuffles never touch the network.
    pub fn shuffle_stall(&self, bytes: u64, remote_fraction: f64) -> u64 {
        let remote = (bytes as f64 * remote_fraction.clamp(0.0, 1.0)) as u64;
        self.transfer_stall(remote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let n = Network::default();
        assert_eq!(n.transfer_stall(0), 0);
        assert_eq!(n.shuffle_stall(1 << 20, 0.0), 0);
    }

    #[test]
    fn cost_scales_with_bytes() {
        let n = Network::default();
        let one = n.transfer_stall(1 << 20);
        let two = n.transfer_stall(2 << 20);
        assert!(two > one);
        assert!(two < 2 * one + n.rtt_cycles, "rtt paid once per transfer");
    }

    #[test]
    fn extreme_inputs_saturate_instead_of_overflowing() {
        let n = Network::default();
        // u64::MAX bytes × 3500 mcycles/byte overflows u64 ~200×; the widened
        // path must saturate, not wrap to a tiny stall.
        assert_eq!(n.transfer_stall(u64::MAX), u64::MAX);
        let hostile = Network { rtt_cycles: u64::MAX, mcycles_per_byte: u64::MAX };
        assert_eq!(hostile.transfer_stall(1), u64::MAX);
        assert_eq!(hostile.shuffle_stall(u64::MAX, 1.0), u64::MAX);
        // Just below the old overflow boundary the exact value still holds.
        let bytes = u64::MAX / n.mcycles_per_byte;
        let exact = n.rtt_cycles + (bytes as u128 * n.mcycles_per_byte as u128 / 1000) as u64;
        assert_eq!(n.transfer_stall(bytes), exact);
    }

    #[test]
    fn remote_fraction_scales_shuffle() {
        let n = Network::default();
        let half = n.shuffle_stall(1 << 20, 0.5);
        let full = n.shuffle_stall(1 << 20, 1.0);
        assert!(half > 0 && half < full);
        // Out-of-range fractions clamp.
        assert_eq!(n.shuffle_stall(1 << 20, 2.0), full);
    }
}
