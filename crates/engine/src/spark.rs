//! Spark-flavoured job assembly.
//!
//! Provides the interned method catalog matching the call stacks the paper
//! shows for Spark (Fig. 5: `Executor$TaskRunner.run` → task routine → IO
//! methods; Fig. 14: `Aggregator.combineValuesByKey` map-side reduce), plus
//! helpers for the stack prefixes of Spark's two task types. In Spark an
//! executor thread lives for the whole job, so the same core runs tasks of
//! every stage — which is why a single profiled thread covers all stages
//! (§III-A).

use serde::{Deserialize, Serialize};

use crate::methods::{MethodId, MethodRegistry, OpClass};

/// Interned Spark framework + library methods.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SparkMethods {
    /// `org.apache.spark.executor.Executor$TaskRunner.run`
    pub task_runner_run: MethodId,
    /// `org.apache.spark.scheduler.ResultTask.runTask`
    pub result_task_run: MethodId,
    /// `org.apache.spark.scheduler.ShuffleMapTask.runTask`
    pub shuffle_map_task_run: MethodId,
    /// `org.apache.spark.rdd.HadoopRDD.compute` (HDFS input scan)
    pub hadoop_rdd_compute: MethodId,
    /// `org.apache.spark.rdd.RDD.mapPartitionsWithIndex`
    pub map_partitions_with_index: MethodId,
    /// `org.apache.spark.Aggregator.combineValuesByKey` (map-side reduce)
    pub combine_values_by_key: MethodId,
    /// `org.apache.spark.util.collection.AppendOnlyMap.changeValue`
    pub append_only_map_change_value: MethodId,
    /// `org.apache.spark.Aggregator.combineCombinersByKey` (reduce side)
    pub combine_combiners_by_key: MethodId,
    /// `org.apache.spark.util.collection.ExternalSorter.insertAll`
    pub external_sorter_insert_all: MethodId,
    /// `org.apache.spark.util.collection.TimSort.sort` (key ordering)
    pub timsort_sort: MethodId,
    /// `org.apache.spark.shuffle.sort.SortShuffleWriter.write`
    pub shuffle_writer_write: MethodId,
    /// `org.apache.spark.storage.ShuffleBlockFetcherIterator.next`
    pub shuffle_fetcher_next: MethodId,
    /// `org.apache.spark.serializer.JavaSerializationStream.writeObject`
    pub serialize_object: MethodId,
    /// `org.apache.hadoop.hdfs.DFSInputStream.read`
    pub dfs_read: MethodId,
    /// `org.apache.hadoop.hdfs.DFSOutputStream.write`
    pub dfs_write: MethodId,
    /// `org.apache.spark.graphx.impl.VertexRDDImpl.aggregateUsingIndex`
    pub aggregate_using_index: MethodId,
    /// `org.apache.spark.graphx.impl.EdgeRDDImpl.mapEdgePartitions`
    pub map_edge_partitions: MethodId,
    /// `org.apache.spark.graphx.impl.GraphImpl.aggregateMessages`
    pub aggregate_messages: MethodId,
    /// `org.apache.spark.graphx.VertexRDD.innerJoin`
    pub vertex_inner_join: MethodId,
    /// `org.apache.spark.graphx.impl.ReplicatedVertexView.updateVertices`
    /// (shipping updated vertex attributes to edge partitions)
    pub ship_vertex_attrs: MethodId,
    /// `org.apache.spark.graphx.GraphOps.outDegrees` (Pregel initialization)
    pub out_degrees: MethodId,
}

impl SparkMethods {
    /// Interns the whole catalog.
    pub fn intern(reg: &mut MethodRegistry) -> Self {
        Self {
            task_runner_run: reg
                .intern("org.apache.spark.executor.Executor$TaskRunner.run", OpClass::Framework),
            result_task_run: reg
                .intern("org.apache.spark.scheduler.ResultTask.runTask", OpClass::Framework),
            shuffle_map_task_run: reg
                .intern("org.apache.spark.scheduler.ShuffleMapTask.runTask", OpClass::Framework),
            hadoop_rdd_compute: reg.intern("org.apache.spark.rdd.HadoopRDD.compute", OpClass::Io),
            map_partitions_with_index: reg
                .intern("org.apache.spark.rdd.RDD.mapPartitionsWithIndex", OpClass::Map),
            combine_values_by_key: reg
                .intern("org.apache.spark.Aggregator.combineValuesByKey", OpClass::Reduce),
            append_only_map_change_value: reg.intern(
                "org.apache.spark.util.collection.AppendOnlyMap.changeValue",
                OpClass::Reduce,
            ),
            combine_combiners_by_key: reg
                .intern("org.apache.spark.Aggregator.combineCombinersByKey", OpClass::Reduce),
            external_sorter_insert_all: reg
                .intern("org.apache.spark.util.collection.ExternalSorter.insertAll", OpClass::Sort),
            timsort_sort: reg
                .intern("org.apache.spark.util.collection.TimSort.sort", OpClass::Sort),
            shuffle_writer_write: reg
                .intern("org.apache.spark.shuffle.sort.SortShuffleWriter.write", OpClass::Io),
            shuffle_fetcher_next: reg
                .intern("org.apache.spark.storage.ShuffleBlockFetcherIterator.next", OpClass::Io),
            serialize_object: reg.intern(
                "org.apache.spark.serializer.JavaSerializationStream.writeObject",
                OpClass::Io,
            ),
            dfs_read: reg.intern("org.apache.hadoop.hdfs.DFSInputStream.read", OpClass::Io),
            dfs_write: reg.intern("org.apache.hadoop.hdfs.DFSOutputStream.write", OpClass::Io),
            aggregate_using_index: reg.intern(
                "org.apache.spark.graphx.impl.VertexRDDImpl.aggregateUsingIndex",
                OpClass::Reduce,
            ),
            map_edge_partitions: reg
                .intern("org.apache.spark.graphx.impl.EdgeRDDImpl.mapEdgePartitions", OpClass::Map),
            aggregate_messages: reg.intern(
                "org.apache.spark.graphx.impl.GraphImpl.aggregateMessages",
                OpClass::Reduce,
            ),
            vertex_inner_join: reg
                .intern("org.apache.spark.graphx.VertexRDD.innerJoin", OpClass::Map),
            ship_vertex_attrs: reg.intern(
                "org.apache.spark.graphx.impl.ReplicatedVertexView.updateVertices",
                OpClass::Io,
            ),
            out_degrees: reg.intern("org.apache.spark.graphx.GraphOps.outDegrees", OpClass::Map),
        }
    }

    /// Stack prefix of a task in a shuffle-producing stage.
    pub fn shuffle_map_base(&self) -> Vec<MethodId> {
        vec![self.task_runner_run, self.shuffle_map_task_run]
    }

    /// Stack prefix of a task in a final (result) stage.
    pub fn result_base(&self) -> Vec<MethodId> {
        vec![self.task_runner_run, self.result_task_run]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_interns_distinct_methods() {
        let mut reg = MethodRegistry::new();
        let m = SparkMethods::intern(&mut reg);
        assert!(reg.len() >= 19);
        assert_ne!(m.task_runner_run, m.result_task_run);
        assert_eq!(reg.class(m.combine_values_by_key), OpClass::Reduce);
        assert_eq!(reg.class(m.timsort_sort), OpClass::Sort);
        assert_eq!(reg.class(m.dfs_read), OpClass::Io);
    }

    #[test]
    fn base_paths_share_task_runner() {
        let mut reg = MethodRegistry::new();
        let m = SparkMethods::intern(&mut reg);
        assert_eq!(m.shuffle_map_base()[0], m.result_base()[0]);
        assert_ne!(m.shuffle_map_base()[1], m.result_base()[1]);
    }

    #[test]
    fn reintern_is_stable() {
        let mut reg = MethodRegistry::new();
        let a = SparkMethods::intern(&mut reg);
        let b = SparkMethods::intern(&mut reg);
        assert_eq!(a.combine_values_by_key, b.combine_values_by_key);
    }
}
