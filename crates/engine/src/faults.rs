//! Deterministic runtime fault injection and the failure log.
//!
//! Data-analytic frameworks are built to "tolerate node failures" (paper
//! §I): executors crash and their tasks are re-queued, slow nodes are
//! raced by speculative copies, shuffle fetches fail and are re-issued,
//! and profiler snapshots get dropped under load. This module models those
//! runtime faults as a seeded [`FaultPlan`] the scheduler consults while a
//! job runs — unlike [`crate::work::inject_task_retries`], which rewrites
//! the job statically before execution.
//!
//! Every decision is a pure SplitMix64 hash of `(seed, salt, coordinates)`,
//! so a given plan replays bit-identically, and a plan whose rates are all
//! zero leaves the schedule byte-for-byte identical to a fault-free run.

use serde::{Deserialize, Serialize};

use crate::hdfs::Hdfs;
use crate::net::Network;

/// Domain-separation salts for the per-decision hash streams.
const SALT_CRASH: u64 = 0xC4A5_11ED_0000_0001;
const SALT_CRASH_POINT: u64 = 0xC4A5_11ED_0000_0002;

/// Seeded description of the runtime faults to inject into one run.
///
/// All rates are in parts per million of the relevant decision population
/// (task attempts for crashes/stragglers, shuffle-fetch items for losses,
/// profiler snapshots for drops). The default plan is *quiet*: every rate
/// is zero and execution is byte-identical to a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every fault decision stream.
    pub seed: u64,
    /// Probability (ppm) that a task attempt's executor crashes mid-task.
    pub crash_ppm: u32,
    /// Retry budget per task: a task is re-queued after a crash at most
    /// this many times before being abandoned.
    pub max_retries: u32,
    /// Probability (ppm) that a task attempt runs on a straggling executor.
    pub straggler_ppm: u32,
    /// Slowdown multiple of a straggling executor (≥ 2 to have any effect).
    pub straggler_factor: u32,
    /// Launch a speculative copy of each straggling task and take the
    /// first finisher (Hadoop/Spark speculative execution).
    pub speculative: bool,
    /// Probability (ppm) that a shuffle-fetch work item loses its fetch
    /// and pays a full re-fetch through the network + disk models.
    pub shuffle_loss_ppm: u32,
    /// Probability (ppm) that the profiler drops any given stack snapshot
    /// (consumed by the profiler crate, not the scheduler).
    pub snapshot_drop_ppm: u32,
    /// Network cost model used to price lost-fetch recoveries.
    pub network: Network,
    /// Disk cost model used to price lost-fetch recoveries.
    pub hdfs: Hdfs,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            crash_ppm: 0,
            max_retries: 3,
            straggler_ppm: 0,
            straggler_factor: 4,
            speculative: true,
            shuffle_loss_ppm: 0,
            snapshot_drop_ppm: 0,
            network: Network::default(),
            hdfs: Hdfs::default(),
        }
    }
}

impl FaultPlan {
    /// A quiet plan (no faults) — identical to `Default`.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan injecting all engine fault classes at `ppm` each.
    pub fn uniform(ppm: u32, seed: u64) -> Self {
        Self {
            seed,
            crash_ppm: ppm,
            straggler_ppm: ppm,
            shuffle_loss_ppm: ppm,
            snapshot_drop_ppm: ppm,
            ..Self::default()
        }
    }

    /// True when no engine-side fault can ever fire (the scheduler takes
    /// its exact fault-free fast path).
    pub fn is_quiet(&self) -> bool {
        self.crash_ppm == 0 && self.straggler_ppm == 0 && self.shuffle_loss_ppm == 0
    }

    /// If this `(stage, task, attempt)` crashes, the task-relative retired
    /// instruction count at which the executor dies (in `1..=total_instrs`).
    pub fn crash_point(
        &self,
        stage: u64,
        task: u64,
        attempt: u32,
        total_instrs: u64,
    ) -> Option<u64> {
        if self.crash_ppm == 0 || total_instrs == 0 {
            return None;
        }
        let h = mix(self.seed, SALT_CRASH, stage, task, attempt as u64);
        if h % 1_000_000 < self.crash_ppm as u64 {
            let p = mix(self.seed, SALT_CRASH_POINT, stage, task, attempt as u64);
            Some(1 + p % total_instrs)
        } else {
            None
        }
    }

    /// Slowdown factor for this `(stage, task, attempt)`: 1 for a healthy
    /// executor, `straggler_factor` for a straggler.
    pub fn straggler_factor_for(&self, stage: u64, task: u64, attempt: u32) -> u32 {
        if self.straggler_ppm == 0 {
            return 1;
        }
        let h = mix(self.seed, SALT_STRAGGLER, stage, task, attempt as u64);
        if h % 1_000_000 < self.straggler_ppm as u64 {
            self.straggler_factor.max(1)
        } else {
            1
        }
    }

    /// Does this `(stage, task, item, attempt)` shuffle fetch get lost?
    pub fn fetch_lost(&self, stage: u64, task: u64, item: u64, attempt: u32) -> bool {
        if self.shuffle_loss_ppm == 0 {
            return false;
        }
        let h = mix(self.seed, SALT_FETCH, stage ^ item.rotate_left(17), task, attempt as u64);
        h % 1_000_000 < self.shuffle_loss_ppm as u64
    }

    /// Does the profiler drop snapshot `snapshot` of sampling unit `unit`?
    pub fn snapshot_dropped(&self, unit: u64, snapshot: u64) -> bool {
        if self.snapshot_drop_ppm == 0 {
            return false;
        }
        let h = mix(self.seed, SALT_SNAPSHOT, unit, snapshot, 0);
        h % 1_000_000 < self.snapshot_drop_ppm as u64
    }

    /// Stall cycles to recover one lost shuffle fetch of `bytes`: the map
    /// side re-serves the partition from disk and the bytes cross the
    /// network again, fully remote this time.
    pub fn refetch_stall(&self, bytes: u64) -> u64 {
        (self.hdfs.read_stall(bytes) / 2).saturating_add(self.network.shuffle_stall(bytes, 1.0))
    }
}

const SALT_STRAGGLER: u64 = 0x57A6_617E_0000_0003;
const SALT_FETCH: u64 = 0xFE7C_4105_0000_0004;
const SALT_SNAPSHOT: u64 = 0x5A40_D0F0_0000_0005;

/// SplitMix64-style mix over the decision coordinates.
fn mix(seed: u64, salt: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        ^ salt
        ^ a.wrapping_mul(0xA24B_AED4_963E_E407)
        ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One recovered (or absorbed) runtime fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// An executor died mid-task; `lost_instrs` of progress were discarded
    /// (their machine cost stays charged — lost work is still work).
    ExecutorCrash {
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// Which attempt of the task crashed (0 = original).
        attempt: u32,
        /// Core the executor was pinned to.
        core: usize,
        /// Task-relative instructions completed when the crash hit.
        lost_instrs: u64,
    },
    /// A task burned its whole retry budget and was abandoned.
    RetriesExhausted {
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// Total attempts made (original + retries).
        attempts: u32,
    },
    /// A task attempt landed on a straggling executor.
    Straggler {
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// The straggling attempt.
        attempt: u32,
        /// Core the attempt runs on.
        core: usize,
        /// Slowdown multiple applied.
        factor: u32,
    },
    /// A speculative copy of a straggling task was enqueued.
    SpeculativeClone {
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// The straggling attempt being raced.
        original_attempt: u32,
    },
    /// The first finisher of a speculated task won; any still-running
    /// twin was killed.
    SpeculativeWin {
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// The attempt that finished first.
        winner_attempt: u32,
    },
    /// A shuffle fetch was lost and re-issued; the re-fetch stall was
    /// charged to the fetching core.
    ShuffleFetchLost {
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// Item index within the task.
        item: usize,
        /// Core that paid the re-fetch.
        core: usize,
        /// Shuffle bytes re-fetched.
        bytes: u64,
        /// Stall cycles charged for the recovery.
        penalty_cycles: u64,
    },
}

impl FaultEvent {
    /// The metrics-registry counter this event kind tallies under.
    pub fn metric_name(&self) -> &'static str {
        match self {
            FaultEvent::ExecutorCrash { .. } => "engine.faults.executor_crash",
            FaultEvent::RetriesExhausted { .. } => "engine.faults.retries_exhausted",
            FaultEvent::Straggler { .. } => "engine.faults.straggler",
            FaultEvent::SpeculativeClone { .. } => "engine.faults.speculative_clone",
            FaultEvent::SpeculativeWin { .. } => "engine.faults.speculative_win",
            FaultEvent::ShuffleFetchLost { .. } => "engine.faults.shuffle_fetch_lost",
        }
    }
}

/// Everything that went wrong (and was recovered) during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    /// Events in the order the scheduler observed them.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event, tallying it under `engine.faults.<kind>` in the
    /// observability metrics registry (a no-op without an active session)
    /// and, when an event sink is streaming, emitting the full typed
    /// payload to the event log.
    pub fn push(&mut self, event: FaultEvent) {
        simprof_obs::counter_add(event.metric_name(), 1);
        if simprof_obs::event_streaming() {
            let detail = serde_json::to_value(&event);
            simprof_obs::fault_event(event.metric_name(), detail);
        }
        self.events.push(event);
    }

    /// True when nothing went wrong.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of executor crashes.
    pub fn crashes(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::ExecutorCrash { .. }))
    }

    /// Number of straggling attempts.
    pub fn stragglers(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::Straggler { .. }))
    }

    /// Number of lost shuffle fetches.
    pub fn lost_fetches(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::ShuffleFetchLost { .. }))
    }

    /// Number of tasks abandoned after exhausting their retry budget.
    pub fn abandoned_tasks(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::RetriesExhausted { .. }))
    }

    /// Number of speculative races won (= speculated tasks that finished).
    pub fn speculative_wins(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::SpeculativeWin { .. }))
    }

    fn count(&self, pred: impl Fn(&FaultEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_quiet());
        for i in 0..1000 {
            assert_eq!(p.crash_point(0, i, 0, 10_000), None);
            assert_eq!(p.straggler_factor_for(0, i, 0), 1);
            assert!(!p.fetch_lost(0, i, 0, 0));
            assert!(!p.snapshot_dropped(i, 0));
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let p = FaultPlan::uniform(200_000, 42); // 20 %
        let crashes = (0..5000).filter(|&t| p.crash_point(0, t, 0, 1000).is_some()).count();
        assert!((700..1300).contains(&crashes), "~20% of 5000: {crashes}");
        let strag = (0..5000).filter(|&t| p.straggler_factor_for(0, t, 0) > 1).count();
        assert!((700..1300).contains(&strag), "{strag}");
        let lost = (0..5000).filter(|&t| p.fetch_lost(0, t, 0, 0)).count();
        assert!((700..1300).contains(&lost), "{lost}");
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::uniform(300_000, 1);
        let b = FaultPlan::uniform(300_000, 2);
        let pattern =
            |p: &FaultPlan| (0..200).map(|t| p.crash_point(1, t, 2, 5000)).collect::<Vec<_>>();
        assert_eq!(pattern(&a), pattern(&a));
        assert_ne!(pattern(&a), pattern(&b));
    }

    #[test]
    fn crash_point_is_in_range() {
        let p = FaultPlan::uniform(1_000_000, 9); // always crashes
        for t in 0..500 {
            let at = p.crash_point(0, t, 0, 777).expect("certain crash");
            assert!((1..=777).contains(&at));
        }
    }

    #[test]
    fn attempts_decide_independently() {
        let p = FaultPlan::uniform(500_000, 3);
        // Over many tasks, some crash on attempt 0 but not attempt 1.
        let differs = (0..500).any(|t| {
            p.crash_point(0, t, 0, 100).is_some() != p.crash_point(0, t, 1, 100).is_some()
        });
        assert!(differs);
    }

    #[test]
    fn refetch_stall_scales_and_saturates() {
        let p = FaultPlan::none();
        assert!(p.refetch_stall(1 << 20) > p.refetch_stall(1 << 10));
        // Absurd sizes must not overflow.
        let _ = p.refetch_stall(u64::MAX);
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        log.push(FaultEvent::ExecutorCrash {
            stage: 0,
            task: 1,
            attempt: 0,
            core: 0,
            lost_instrs: 10,
        });
        log.push(FaultEvent::Straggler { stage: 0, task: 2, attempt: 0, core: 1, factor: 4 });
        log.push(FaultEvent::ShuffleFetchLost {
            stage: 1,
            task: 0,
            item: 3,
            core: 0,
            bytes: 4096,
            penalty_cycles: 99,
        });
        log.push(FaultEvent::RetriesExhausted { stage: 0, task: 1, attempts: 4 });
        assert_eq!(log.len(), 4);
        assert_eq!(log.crashes(), 1);
        assert_eq!(log.stragglers(), 1);
        assert_eq!(log.lost_fetches(), 1);
        assert_eq!(log.abandoned_tasks(), 1);
        assert_eq!(log.speculative_wins(), 0);
    }

    #[test]
    fn log_serde_roundtrips() {
        let mut log = FaultLog::new();
        log.push(FaultEvent::SpeculativeClone { stage: 2, task: 7, original_attempt: 1 });
        log.push(FaultEvent::SpeculativeWin { stage: 2, task: 7, winner_attempt: 2 });
        let json = serde_json::to_string(&log).unwrap();
        let back: FaultLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}
