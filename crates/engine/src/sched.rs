//! The quantum scheduler.
//!
//! Executor threads are pinned one per core (the engine's analog of Spark's
//! executor threads / Hadoop's task JVMs). Within a stage, tasks are handed
//! to idle threads in order; threads execute in strict round-robin quanta of
//! `quantum` instructions, which deterministically interleaves their memory
//! traffic through the shared LLC — the paper's "phase interleaving" source
//! of intra-phase heterogeneity. A barrier separates stages, exactly like
//! Spark stage boundaries and the Hadoop map→reduce wave.
//!
//! After every quantum the scheduler reports progress to an
//! [`ExecListener`] with the running thread's current call stack; the
//! profiler crate implements the listener to cut sampling units and take
//! stack snapshots (the JVMTI + `perf_event` analog).

use std::collections::VecDeque;

use simprof_sim::perturb::MigrationClock;
use simprof_sim::{AccessCursor, CoreId, Machine, Perturbations};

use crate::faults::{FaultEvent, FaultLog, FaultPlan};
use crate::methods::MethodId;
use crate::work::{Job, Stage, Task};

/// Observer of scheduler progress. Implemented by the profiler.
pub trait ExecListener {
    /// Called after each executed quantum on `core`. `core_instrs` is the
    /// core's cumulative retired-instruction count, `stack` the call stack
    /// that was active during the quantum.
    fn on_progress(
        &mut self,
        core: CoreId,
        core_instrs: u64,
        stack: &[MethodId],
        machine: &Machine,
    );

    /// Called when a stage's barrier is reached.
    fn on_stage_end(&mut self, _stage: &str, _machine: &Machine) {}

    /// Called when a runtime fault fires or is recovered (executor crash,
    /// straggler detection, lost shuffle fetch, …), before the event is
    /// appended to the run's [`FaultLog`]. Default: ignore.
    fn on_fault(&mut self, _event: &FaultEvent, _machine: &Machine) {}
}

/// A listener that ignores everything (for cost-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullListener;

impl ExecListener for NullListener {
    fn on_progress(&mut self, _: CoreId, _: u64, _: &[MethodId], _: &Machine) {}
}

/// JVM runtime-noise model: garbage-collection / JIT bursts that steal
/// occasional turns from executor threads.
///
/// Real JVMTI profiles are never perfectly clean — some snapshots catch the
/// thread during GC safepoints or JIT compilation. Modelling this matters
/// beyond realism: it gives every sampling unit's feature vector natural
/// jitter, exactly like production profiles, instead of large sets of
/// bit-identical vectors.
#[derive(Debug, Clone, Copy)]
pub struct GcModel {
    /// The method reported while a GC burst runs (intern e.g.
    /// `jvm.GCTaskThread.run`).
    pub method: MethodId,
    /// Probability (parts per million) that any given turn is stolen by GC.
    pub probability_ppm: u32,
    /// Extra cycles a stolen turn costs (allocation stalls, safepoint).
    pub pause_cycles: u64,
    /// Seed for the per-turn decision stream.
    pub seed: u64,
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Instructions executed per thread turn. Smaller quanta give finer
    /// interleaving and finer snapshot alignment at more scheduling overhead.
    pub quantum: u64,
    /// OS-noise model applied while the job runs.
    pub perturbations: Perturbations,
    /// JVM GC/JIT noise (None disables).
    pub gc: Option<GcModel>,
    /// Cold-restart point: when the given core's instruction counter crosses
    /// the given count, its private caches and its LLC domain are fully
    /// flushed — modelling a detailed simulator that fast-forwards to an
    /// arbitrary simulation point and starts with cold microarchitectural
    /// state. Used by the cold-start/warm-up validation experiment.
    pub cold_restart: Option<(usize, u64)>,
    /// Runtime fault-injection plan. The default ([`FaultPlan::none`]) is
    /// quiet: execution is byte-identical to a fault-free run.
    pub faults: FaultPlan,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            quantum: 2_500,
            perturbations: Perturbations::default(),
            gc: None,
            cold_restart: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Executes [`Job`]s on a [`Machine`].
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: SchedConfig,
}

/// One task attempt waiting for an executor.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    task: usize,
    attempt: u32,
}

struct Running<'a> {
    task: &'a Task,
    /// Index of the task within its stage.
    task_idx: usize,
    /// Attempt number (0 = original; crashes and speculation bump it).
    attempt: u32,
    item_idx: usize,
    done_in_item: u64,
    /// Task-relative retired instructions across this attempt.
    done_in_task: u64,
    /// If set, the executor crashes when `done_in_task` reaches this.
    crash_at: Option<u64>,
    /// Straggler slowdown multiple (1 = healthy).
    factor: u32,
    cursor: AccessCursor,
    access_credit: u64,
    stall_charged: u64,
    stack: Vec<MethodId>,
}

impl<'a> Running<'a> {
    fn new(
        task: &'a Task,
        task_idx: usize,
        attempt: u32,
        crash_at: Option<u64>,
        factor: u32,
    ) -> Self {
        let mut r = Self {
            task,
            task_idx,
            attempt,
            item_idx: 0,
            done_in_item: 0,
            done_in_task: 0,
            crash_at,
            factor,
            cursor: AccessCursor::new(
                task.items[0].region,
                task.items[0].pattern,
                task.items[0].seed,
            ),
            access_credit: 0,
            stall_charged: 0,
            stack: Vec::new(),
        };
        r.enter_item();
        r
    }

    fn enter_item(&mut self) {
        let item = &self.task.items[self.item_idx];
        self.cursor = AccessCursor::new(item.region, item.pattern, item.seed);
        self.done_in_item = 0;
        self.stall_charged = 0;
        self.stack.clear();
        self.stack.extend_from_slice(&self.task.base_path);
        self.stack.extend_from_slice(&item.path);
    }

    /// Advances to the next item; returns `false` when the task is finished.
    fn advance(&mut self) -> bool {
        if self.item_idx + 1 >= self.task.items.len() {
            return false;
        }
        self.item_idx += 1;
        self.enter_item();
        true
    }
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedConfig) -> Self {
        assert!(config.quantum > 0, "quantum must be positive");
        Self { config }
    }

    /// Runs `job` to completion on `machine`, reporting to `listener`, and
    /// returns the log of every runtime fault injected and recovered.
    ///
    /// Tasks that contain no items are skipped. Stages execute in order with
    /// a barrier between them; within a stage, task `i` goes to the first
    /// thread that becomes idle, in deterministic round-robin order.
    ///
    /// Fault recovery (driven by [`SchedConfig::faults`]):
    /// * **Executor crashes** discard the attempt's progress (its machine
    ///   cost stays charged — lost work is still work) and re-queue the task
    ///   at the back of the stage, up to `max_retries` times.
    /// * **Stragglers** run with a reduced per-turn budget and pay extra
    ///   stall cycles; if speculation is on, a twin attempt races them and
    ///   the first finisher wins, killing the other copy.
    /// * **Lost shuffle fetches** re-charge the fetch through the plan's
    ///   network + disk cost models.
    pub fn run(
        &self,
        machine: &mut Machine,
        job: &Job,
        listener: &mut dyn ExecListener,
    ) -> FaultLog {
        let _span = simprof_obs::span!("engine.run");
        let cores = machine.core_count();
        let plan = self.config.faults;
        let mut log = FaultLog::new();
        let mut migration = MigrationClock::new(self.config.perturbations, cores);
        let mut turn_counter = 0u64;
        let mut cold_restart = self.config.cold_restart;

        for (stage_idx, stage) in job.stages.iter().enumerate() {
            let _stage_span = simprof_obs::span!(&stage.name);
            let mut state = StageState {
                pending: stage
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.items.is_empty())
                    .map(|(i, _)| Attempt { task: i, attempt: 0 })
                    .collect(),
                completed: vec![false; stage.tasks.len()],
                speculated: vec![false; stage.tasks.len()],
            };
            let mut running: Vec<Option<Running>> = (0..cores).map(|_| None).collect();
            loop {
                let mut idle = true;
                for core in 0..cores {
                    if running[core].is_none() {
                        running[core] = self.dispatch(
                            &mut state, stage, stage_idx, core, machine, listener, &mut log,
                        );
                    }
                    if running[core].is_none() {
                        continue;
                    }
                    idle = false;

                    // One turn: consume a full quantum of instructions, even
                    // if that spans several (small) work items — keeping
                    // threads fair in virtual time regardless of item
                    // granularity. The stack reported to the listener is the
                    // one active at the end of the turn, which is exactly
                    // what a sampling profiler would observe. Stragglers get
                    // a proportionally smaller budget: they fall behind
                    // their peers in virtual time.
                    let factor = running[core].as_ref().map_or(1, |r| r.factor).max(1) as u64;
                    let mut budget = (self.config.quantum / factor).max(1);
                    let mut turn_stack: Vec<MethodId> = Vec::new();
                    while budget > 0 {
                        let Some(run) = running[core].as_mut() else {
                            break;
                        };
                        let item = &run.task.items[run.item_idx];

                        // Lost shuffle fetch: decided once, as the item
                        // starts; the recovery re-fetch stalls this core.
                        if run.done_in_item == 0
                            && item.shuffle_bytes > 0
                            && plan.fetch_lost(
                                stage_idx as u64,
                                run.task_idx as u64,
                                run.item_idx as u64,
                                run.attempt,
                            )
                        {
                            let penalty = plan.refetch_stall(item.shuffle_bytes);
                            machine.io_stall(core, penalty);
                            let ev = FaultEvent::ShuffleFetchLost {
                                stage: stage_idx,
                                task: run.task_idx,
                                item: run.item_idx,
                                core,
                                bytes: item.shuffle_bytes,
                                penalty_cycles: penalty,
                            };
                            listener.on_fault(&ev, machine);
                            log.push(ev);
                        }

                        let mut chunk = budget.min(item.instrs - run.done_in_item);
                        if let Some(at) = run.crash_at {
                            chunk = chunk.min(at - run.done_in_task);
                        }
                        machine.charge_instrs(core, chunk);
                        let streaming = matches!(
                            item.pattern,
                            simprof_sim::AccessPattern::Sequential
                                | simprof_sim::AccessPattern::Strided { stride_bytes: 0..=128 }
                        );

                        // Memory accesses, with sub-access credit carried
                        // across chunks so low-intensity items still touch
                        // memory.
                        run.access_credit += chunk * item.accesses_per_kinstr as u64;
                        let n_acc = run.access_credit / 1000;
                        run.access_credit %= 1000;
                        for _ in 0..n_acc {
                            let addr = run.cursor.next_addr();
                            machine.access_hinted(core, addr, streaming);
                        }

                        // IO stall charged proportionally to item progress.
                        if item.io_stall_cycles > 0 {
                            let due =
                                item.io_stall_cycles * (run.done_in_item + chunk) / item.instrs;
                            machine.io_stall(core, due - run.stall_charged);
                            run.stall_charged = due;
                        }

                        // A straggling executor retires the same instructions
                        // but at a fraction of the speed; the lost cycles
                        // surface as stall time, like iowait or contention.
                        if run.factor > 1 {
                            machine.io_stall(core, chunk * (run.factor as u64 - 1));
                        }

                        run.done_in_item += chunk;
                        run.done_in_task += chunk;
                        budget -= chunk;
                        turn_stack.clear();
                        turn_stack.extend_from_slice(&run.stack);

                        // Executor crash: progress is lost, the task goes
                        // back in the queue (bounded by the retry budget),
                        // and the rest of this turn dies with the executor.
                        if run.crash_at == Some(run.done_in_task) {
                            let (t, a, lost) = (run.task_idx, run.attempt, run.done_in_task);
                            running[core] = None;
                            let ev = FaultEvent::ExecutorCrash {
                                stage: stage_idx,
                                task: t,
                                attempt: a,
                                core,
                                lost_instrs: lost,
                            };
                            listener.on_fault(&ev, machine);
                            log.push(ev);
                            if !state.completed[t] {
                                if a < plan.max_retries {
                                    state.pending.push_back(Attempt { task: t, attempt: a + 1 });
                                } else {
                                    let ev = FaultEvent::RetriesExhausted {
                                        stage: stage_idx,
                                        task: t,
                                        attempts: a + 1,
                                    };
                                    listener.on_fault(&ev, machine);
                                    log.push(ev);
                                }
                            }
                            break;
                        }

                        if run.done_in_item >= item.instrs && !run.advance() {
                            // Attempt finished. First finisher completes the
                            // task; a losing speculative twin is killed on
                            // the spot. A fresh task (if any) continues
                            // within the same turn budget.
                            let (t, a) = (run.task_idx, run.attempt);
                            running[core] = None;
                            if !state.completed[t] {
                                state.completed[t] = true;
                                if state.speculated[t] {
                                    let ev = FaultEvent::SpeculativeWin {
                                        stage: stage_idx,
                                        task: t,
                                        winner_attempt: a,
                                    };
                                    listener.on_fault(&ev, machine);
                                    log.push(ev);
                                    for slot in running.iter_mut() {
                                        if slot.as_ref().is_some_and(|r| r.task_idx == t) {
                                            *slot = None;
                                        }
                                    }
                                }
                            }
                            running[core] = self.dispatch(
                                &mut state, stage, stage_idx, core, machine, listener, &mut log,
                            );
                        }
                    }

                    // GC/JIT noise: occasionally a turn is observed inside
                    // the JVM runtime instead of the executor's own stack.
                    turn_counter += 1;
                    if let Some(gc) = self.config.gc {
                        let h = gc_hash(gc.seed, core as u64, turn_counter);
                        if (h % 1_000_000) < gc.probability_ppm as u64 {
                            machine.io_stall(core, gc.pause_cycles);
                            turn_stack.clear();
                            turn_stack.push(gc.method);
                        }
                    }

                    let total = machine.counters(core).instructions;
                    if let Some((target_core, at)) = cold_restart {
                        if core == target_core && total >= at {
                            machine.flush_core_fraction(core, 1.0, 0xC01D);
                            // Only the restarted core's node goes cold; other
                            // nodes' LLCs are unaffected by a local restart.
                            machine.flush_domain_llc(core, 1.0, 0xC01D);
                            cold_restart = None;
                        }
                    }
                    migration.poll(machine, core, total);
                    listener.on_progress(core, total, &turn_stack, machine);
                }
                if idle {
                    break;
                }
            }
            listener.on_stage_end(&stage.name, machine);
            // One trajectory sample per stage: cumulative quanta so far
            // (no-op without an active obs session).
            simprof_obs::timeseries_push("engine.quanta_total", turn_counter as f64);
        }
        // Aggregated locally, recorded once: hot-loop turns never touch the
        // registry.
        simprof_obs::counter_add("engine.quanta", turn_counter);
        simprof_obs::counter_add("engine.fault_events", log.len() as u64);
        log
    }

    /// Starts the next runnable attempt for `core`: pops pending attempts
    /// (skipping tasks a twin already completed), rolls the attempt's crash
    /// point and straggler factor, and — for a fresh straggler — enqueues a
    /// speculative twin when the plan allows one.
    #[allow(clippy::too_many_arguments)]
    fn dispatch<'a>(
        &self,
        state: &mut StageState,
        stage: &'a Stage,
        stage_idx: usize,
        core: usize,
        machine: &Machine,
        listener: &mut dyn ExecListener,
        log: &mut FaultLog,
    ) -> Option<Running<'a>> {
        let plan = &self.config.faults;
        while let Some(att) = state.pending.pop_front() {
            if state.completed[att.task] {
                continue;
            }
            let task = &stage.tasks[att.task];
            let crash_at = plan.crash_point(
                stage_idx as u64,
                att.task as u64,
                att.attempt,
                task.total_instrs(),
            );
            let factor = plan.straggler_factor_for(stage_idx as u64, att.task as u64, att.attempt);
            if factor > 1 {
                let ev = FaultEvent::Straggler {
                    stage: stage_idx,
                    task: att.task,
                    attempt: att.attempt,
                    core,
                    factor,
                };
                listener.on_fault(&ev, machine);
                log.push(ev);
                if plan.speculative && !state.speculated[att.task] {
                    state.speculated[att.task] = true;
                    state.pending.push_back(Attempt { task: att.task, attempt: att.attempt + 1 });
                    let ev = FaultEvent::SpeculativeClone {
                        stage: stage_idx,
                        task: att.task,
                        original_attempt: att.attempt,
                    };
                    listener.on_fault(&ev, machine);
                    log.push(ev);
                }
            }
            simprof_obs::counter_add("engine.attempts_dispatched", 1);
            return Some(Running::new(task, att.task, att.attempt, crash_at, factor));
        }
        None
    }
}

/// Per-stage recovery bookkeeping.
struct StageState {
    /// Attempts waiting for an executor, in dispatch order.
    pending: VecDeque<Attempt>,
    /// Tasks whose work is done (first finisher wins under speculation).
    completed: Vec<bool>,
    /// Tasks that already have a speculative twin (at most one each).
    speculated: Vec<bool>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new(SchedConfig::default())
    }
}

/// SplitMix64-style mix for the per-turn GC decision.
fn gc_hash(seed: u64, core: u64, turn: u64) -> u64 {
    let mut z =
        seed ^ core.wrapping_mul(0xA24B_AED4_963E_E407) ^ turn.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{MethodRegistry, OpClass};
    use crate::work::{Stage, WorkItem};
    use simprof_sim::{AccessPattern, MachineConfig, Region};

    struct Recorder {
        progress: Vec<(CoreId, u64, Vec<MethodId>)>,
        stages: Vec<String>,
    }

    impl ExecListener for Recorder {
        fn on_progress(&mut self, core: CoreId, instrs: u64, stack: &[MethodId], _: &Machine) {
            self.progress.push((core, instrs, stack.to_vec()));
        }
        fn on_stage_end(&mut self, stage: &str, _: &Machine) {
            self.stages.push(stage.to_owned());
        }
    }

    fn setup() -> (Machine, MethodRegistry) {
        (Machine::new(MachineConfig::scaled(2)), MethodRegistry::new())
    }

    fn item(path: Vec<MethodId>, instrs: u64) -> WorkItem {
        WorkItem::compute(path, instrs, 50, AccessPattern::Sequential, Region::new(0x1000, 4096), 1)
    }

    #[test]
    fn executes_all_instructions() {
        let (mut m, _r) = setup();
        let job = Job::new(vec![Stage::new(
            "s0",
            vec![
                Task::new(vec![], vec![item(vec![], 10_000)]),
                Task::new(vec![], vec![item(vec![], 6_000)]),
                Task::new(vec![], vec![item(vec![], 4_000)]),
            ],
        )]);
        Scheduler::default().run(&mut m, &job, &mut NullListener);
        let total: u64 = (0..2).map(|c| m.counters(c).instructions).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn stacks_follow_items_and_tasks() {
        let (mut m, mut r) = setup();
        let base = r.intern("Executor.run", OpClass::Framework);
        let map = r.intern("Mapper.map", OpClass::Map);
        let sort = r.intern("Sorter.sort", OpClass::Sort);
        let job = Job::new(vec![Stage::new(
            "s0",
            vec![Task::new(vec![base], vec![item(vec![map], 5_000), item(vec![sort], 5_000)])],
        )]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::new(SchedConfig { quantum: 1_000, ..Default::default() })
            .run(&mut m, &job, &mut rec);
        let stacks: Vec<&Vec<MethodId>> = rec.progress.iter().map(|(_, _, s)| s).collect();
        assert!(stacks.iter().any(|s| **s == vec![base, map]));
        assert!(stacks.iter().any(|s| **s == vec![base, sort]));
        // Map quanta come strictly before sort quanta.
        let first_sort = stacks.iter().position(|s| **s == vec![base, sort]).unwrap();
        assert!(stacks[..first_sort].iter().all(|s| **s == vec![base, map]));
        assert_eq!(rec.stages, vec!["s0"]);
    }

    #[test]
    fn tasks_interleave_round_robin_across_cores() {
        let (mut m, _r) = setup();
        let job = Job::new(vec![Stage::new(
            "s0",
            vec![
                Task::new(vec![], vec![item(vec![], 4_000)]),
                Task::new(vec![], vec![item(vec![], 4_000)]),
            ],
        )]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::new(SchedConfig { quantum: 1_000, ..Default::default() })
            .run(&mut m, &job, &mut rec);
        let cores: Vec<CoreId> = rec.progress.iter().map(|&(c, _, _)| c).collect();
        assert_eq!(cores, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn stage_barrier_orders_stages() {
        let (mut m, mut r) = setup();
        let a = r.intern("A", OpClass::Map);
        let b = r.intern("B", OpClass::Reduce);
        let job = Job::new(vec![
            Stage::new("map", vec![Task::new(vec![], vec![item(vec![a], 3_000)])]),
            Stage::new("reduce", vec![Task::new(vec![], vec![item(vec![b], 3_000)])]),
        ]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::new(SchedConfig { quantum: 1_000, ..Default::default() })
            .run(&mut m, &job, &mut rec);
        let first_b = rec.progress.iter().position(|(_, _, s)| s.contains(&b)).unwrap();
        assert!(rec.progress[..first_b].iter().all(|(_, _, s)| s.contains(&a)));
        assert_eq!(rec.stages, vec!["map", "reduce"]);
    }

    #[test]
    fn io_stalls_charged_fully() {
        let (mut m, _r) = setup();
        let mut it = item(vec![], 10_000);
        it.io_stall_cycles = 55_555;
        let job = Job::new(vec![Stage::new("io", vec![Task::new(vec![], vec![it])])]);
        Scheduler::default().run(&mut m, &job, &mut NullListener);
        assert_eq!(m.counters(0).io_stall_cycles, 55_555);
    }

    #[test]
    fn empty_tasks_and_stages_are_safe() {
        let (mut m, _r) = setup();
        let job = Job::new(vec![
            Stage::new("empty", vec![]),
            Stage::new("hollow", vec![Task::new(vec![], vec![])]),
        ]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::default().run(&mut m, &job, &mut rec);
        assert!(rec.progress.is_empty());
        assert_eq!(rec.stages, vec!["empty", "hollow"]);
    }

    #[test]
    fn more_tasks_than_cores_all_complete() {
        let (mut m, _r) = setup();
        let tasks: Vec<Task> =
            (0..7).map(|_| Task::new(vec![], vec![item(vec![], 2_000)])).collect();
        let job = Job::new(vec![Stage::new("s", tasks)]);
        Scheduler::default().run(&mut m, &job, &mut NullListener);
        let total: u64 = (0..2).map(|c| m.counters(c).instructions).sum();
        assert_eq!(total, 14_000);
    }

    #[test]
    fn gc_noise_reports_gc_stacks_and_costs_cycles() {
        let (mut m, mut r) = setup();
        let gc_m = r.intern("jvm.GCTaskThread.run", OpClass::Framework);
        let job =
            Job::new(vec![Stage::new("s", vec![Task::new(vec![], vec![item(vec![], 400_000)])])]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        let cfg = SchedConfig {
            quantum: 1_000,
            gc: Some(GcModel { method: gc_m, probability_ppm: 50_000, pause_cycles: 500, seed: 3 }),
            ..Default::default()
        };
        Scheduler::new(cfg).run(&mut m, &job, &mut rec);
        let gc_turns = rec.progress.iter().filter(|(_, _, s)| s == &vec![gc_m]).count();
        // ~5% of 400 turns.
        assert!(gc_turns > 5 && gc_turns < 60, "{gc_turns}");
        assert!(m.counters(0).io_stall_cycles >= gc_turns as u64 * 500);
    }

    #[test]
    fn cold_restart_flushes_caches_once() {
        let (mut m, _r) = setup();
        // One long streaming task: after warm-up, hits; at the restart point
        // the caches go cold and misses spike again.
        let job =
            Job::new(vec![Stage::new("s", vec![Task::new(vec![], vec![item(vec![], 100_000)])])]);
        struct MissWatch {
            at: u64,
            before: Option<u64>,
            after: Option<u64>,
        }
        impl ExecListener for MissWatch {
            fn on_progress(&mut self, core: CoreId, instrs: u64, _: &[MethodId], m: &Machine) {
                if core != 0 {
                    return;
                }
                if instrs < self.at {
                    self.before = Some(m.counters(0).l1_misses);
                } else if self.after.is_none() {
                    self.after = Some(m.counters(0).l1_misses);
                }
            }
        }
        let mut watch = MissWatch { at: 50_000, before: None, after: None };
        let cfg =
            SchedConfig { quantum: 1_000, cold_restart: Some((0, 50_000)), ..Default::default() };
        Scheduler::new(cfg).run(&mut m, &job, &mut watch);
        let before = watch.before.unwrap();
        let final_misses = m.counters(0).l1_misses;
        // The region is 4 KiB = 64 lines; warm traffic would add ~0 misses
        // after the first pass, so the post-restart delta must show a fresh
        // cold pass.
        assert!(
            final_misses >= before + 32,
            "cold restart must re-miss: before {before}, final {final_misses}"
        );
    }

    #[test]
    fn deterministic_end_state() {
        let run_once = || {
            let (mut m, _r) = setup();
            let tasks: Vec<Task> = (0..5)
                .map(|i| {
                    let mut it = item(vec![], 3_000 + i * 500);
                    it.pattern = AccessPattern::Random;
                    Task::new(vec![], vec![it])
                })
                .collect();
            let job = Job::new(vec![Stage::new("s", tasks)]);
            Scheduler::default().run(&mut m, &job, &mut NullListener);
            (m.counters(0), m.counters(1))
        };
        assert_eq!(run_once(), run_once());
    }
}
