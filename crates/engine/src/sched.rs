//! The quantum scheduler.
//!
//! Executor threads are pinned one per core (the engine's analog of Spark's
//! executor threads / Hadoop's task JVMs). Within a stage, tasks are handed
//! to idle threads in order; threads execute in strict round-robin quanta of
//! `quantum` instructions, which deterministically interleaves their memory
//! traffic through the shared LLC — the paper's "phase interleaving" source
//! of intra-phase heterogeneity. A barrier separates stages, exactly like
//! Spark stage boundaries and the Hadoop map→reduce wave.
//!
//! After every quantum the scheduler reports progress to an
//! [`ExecListener`] with the running thread's current call stack; the
//! profiler crate implements the listener to cut sampling units and take
//! stack snapshots (the JVMTI + `perf_event` analog).
//!
//! # Parallel simulation
//!
//! With more than one worker thread ([`rayon::set_threads`]), the scheduler
//! simulates the machine/cache work of a turn's running task slots
//! concurrently and merges the results back in slot order, so the produced
//! counter stream, listener callbacks, and fault log are **byte-identical to
//! the serial path at any thread count**. The decomposition rests on the
//! split access walk ([`CoreSim`]): private L1/L2 state and the set of
//! addresses that reach the LLC depend only on the owning core's access
//! stream, so each slot scripts a batch of turns privately (recording
//! counter deltas, LLC requests, and fault events per segment) and the merge
//! replays LLC requests, deltas, and events at their exact serial position.
//! Turn-level bookkeeping that observes global order — dispatch, crash
//! requeue, task completion, GC rolls, cold restarts, and listener
//! callbacks — always runs on the merge thread in round-robin slot order.
//! Features that couple cores mid-turn (speculative twins, migration noise,
//! a pending cold restart) force the serial path; the result is the same
//! either way.

use std::collections::VecDeque;

use rayon::prelude::*;
use simprof_sim::perturb::MigrationClock;
use simprof_sim::{AccessCursor, CoreId, CoreSim, Counters, Machine, Perturbations};

use crate::faults::{FaultEvent, FaultLog, FaultPlan};
use crate::methods::MethodId;
use crate::work::{Job, Stage, Task};

/// Observer of scheduler progress. Implemented by the profiler.
pub trait ExecListener {
    /// Called after each executed quantum on `core`. `core_instrs` is the
    /// core's cumulative retired-instruction count, `stack` the call stack
    /// that was active during the quantum.
    fn on_progress(
        &mut self,
        core: CoreId,
        core_instrs: u64,
        stack: &[MethodId],
        machine: &Machine,
    );

    /// Called when a stage's barrier is reached.
    fn on_stage_end(&mut self, _stage: &str, _machine: &Machine) {}

    /// Called when a runtime fault fires or is recovered (executor crash,
    /// straggler detection, lost shuffle fetch, …), before the event is
    /// appended to the run's [`FaultLog`]. Default: ignore.
    fn on_fault(&mut self, _event: &FaultEvent, _machine: &Machine) {}
}

/// A listener that ignores everything (for cost-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullListener;

impl ExecListener for NullListener {
    fn on_progress(&mut self, _: CoreId, _: u64, _: &[MethodId], _: &Machine) {}
}

/// JVM runtime-noise model: garbage-collection / JIT bursts that steal
/// occasional turns from executor threads.
///
/// Real JVMTI profiles are never perfectly clean — some snapshots catch the
/// thread during GC safepoints or JIT compilation. Modelling this matters
/// beyond realism: it gives every sampling unit's feature vector natural
/// jitter, exactly like production profiles, instead of large sets of
/// bit-identical vectors.
#[derive(Debug, Clone, Copy)]
pub struct GcModel {
    /// The method reported while a GC burst runs (intern e.g.
    /// `jvm.GCTaskThread.run`).
    pub method: MethodId,
    /// Probability (parts per million) that any given turn is stolen by GC.
    pub probability_ppm: u32,
    /// Extra cycles a stolen turn costs (allocation stalls, safepoint).
    pub pause_cycles: u64,
    /// Seed for the per-turn decision stream.
    pub seed: u64,
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Instructions executed per thread turn. Smaller quanta give finer
    /// interleaving and finer snapshot alignment at more scheduling overhead.
    pub quantum: u64,
    /// OS-noise model applied while the job runs.
    pub perturbations: Perturbations,
    /// JVM GC/JIT noise (None disables).
    pub gc: Option<GcModel>,
    /// Cold-restart point: when the given core's instruction counter crosses
    /// the given count, its private caches and its LLC domain are fully
    /// flushed — modelling a detailed simulator that fast-forwards to an
    /// arbitrary simulation point and starts with cold microarchitectural
    /// state. Used by the cold-start/warm-up validation experiment.
    pub cold_restart: Option<(usize, u64)>,
    /// Runtime fault-injection plan. The default ([`FaultPlan::none`]) is
    /// quiet: execution is byte-identical to a fault-free run.
    pub faults: FaultPlan,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            quantum: 2_500,
            perturbations: Perturbations::default(),
            gc: None,
            cold_restart: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Executes [`Job`]s on a [`Machine`].
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: SchedConfig,
}

/// One task attempt waiting for an executor.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    task: usize,
    attempt: u32,
}

struct Running<'a> {
    task: &'a Task,
    /// Index of the task within its stage.
    task_idx: usize,
    /// Attempt number (0 = original; crashes and speculation bump it).
    attempt: u32,
    item_idx: usize,
    done_in_item: u64,
    /// Task-relative retired instructions across this attempt.
    done_in_task: u64,
    /// If set, the executor crashes when `done_in_task` reaches this.
    crash_at: Option<u64>,
    /// Straggler slowdown multiple (1 = healthy).
    factor: u32,
    cursor: AccessCursor,
    access_credit: u64,
    stall_charged: u64,
    stack: Vec<MethodId>,
}

impl<'a> Running<'a> {
    fn new(
        task: &'a Task,
        task_idx: usize,
        attempt: u32,
        crash_at: Option<u64>,
        factor: u32,
    ) -> Self {
        let mut r = Self {
            task,
            task_idx,
            attempt,
            item_idx: 0,
            done_in_item: 0,
            done_in_task: 0,
            crash_at,
            factor,
            cursor: AccessCursor::new(
                task.items[0].region,
                task.items[0].pattern,
                task.items[0].seed,
            ),
            access_credit: 0,
            stall_charged: 0,
            stack: Vec::new(),
        };
        r.enter_item();
        r
    }

    fn enter_item(&mut self) {
        let item = &self.task.items[self.item_idx];
        self.cursor = AccessCursor::new(item.region, item.pattern, item.seed);
        self.done_in_item = 0;
        self.stall_charged = 0;
        self.stack.clear();
        self.stack.extend_from_slice(&self.task.base_path);
        self.stack.extend_from_slice(&item.path);
    }

    /// Advances to the next item; returns `false` when the task is finished.
    fn advance(&mut self) -> bool {
        if self.item_idx + 1 >= self.task.items.len() {
            return false;
        }
        self.item_idx += 1;
        self.enter_item();
        true
    }
}

/// Turns scripted per slot before each merge. Bounds how far a slot can run
/// ahead of global bookkeeping (dispatch, GC, completion) between barriers;
/// large enough to amortize the scatter/gather, small enough that a slot
/// finishing early doesn't leave the others' scripts mostly unusable.
const BATCH_ROUNDS: usize = 32;

/// Sink for the turn physics in [`step_attempt`]: either the live machine
/// (serial path) or a per-core recording script (parallel path). Keeping the
/// hot loop generic over the host is what lets both paths share one body —
/// any divergence would break the bit-identity contract.
trait TurnHost {
    /// Retire `n` instructions on the turn's core.
    fn charge_instrs(&mut self, n: u64);
    /// Issue one memory access.
    fn access(&mut self, addr: u64, streaming: bool);
    /// Charge an IO stall.
    fn io_stall(&mut self, cycles: u64);
    /// Deliver (serial) or record (scripted) a fault event at this exact
    /// point in the turn's cost stream.
    fn fault(&mut self, ev: FaultEvent);
}

/// Serial host: charges the live machine and delivers events immediately.
struct LiveHost<'h> {
    machine: &'h mut Machine,
    core: CoreId,
    listener: &'h mut dyn ExecListener,
    log: &'h mut FaultLog,
}

impl TurnHost for LiveHost<'_> {
    fn charge_instrs(&mut self, n: u64) {
        self.machine.charge_instrs(self.core, n);
    }

    fn access(&mut self, addr: u64, streaming: bool) {
        self.machine.access_hinted(self.core, addr, streaming);
    }

    fn io_stall(&mut self, cycles: u64) {
        self.machine.io_stall(self.core, cycles);
    }

    fn fault(&mut self, ev: FaultEvent) {
        self.listener.on_fault(&ev, self.machine);
        self.log.push(ev);
    }
}

/// A slice of one scripted turn between fault events: the private-side
/// counter delta, the addresses that missed both private levels (to be
/// replayed against the shared LLC in order), and the event that closed the
/// segment. Segment boundaries sit at every event so the merge can show the
/// listener exactly the counters a serial run would have had at that point.
struct Segment {
    delta: Counters,
    requests: Vec<(u64, bool)>,
    event: Option<FaultEvent>,
}

/// How a scripted turn ended.
enum ScriptEnd {
    /// Budget exhausted; the attempt keeps running next turn.
    Running,
    /// The executor crashed; merge-time requeue decides the retry.
    Crashed { task: usize, attempt: u32 },
    /// The attempt finished with `leftover` budget; the merge thread
    /// dispatches the next attempt and continues the turn live.
    Finished { task: usize, leftover: u64 },
}

/// One scripted turn: its segments, the call stack active at turn end, and
/// the terminal state.
struct TurnScript {
    segments: Vec<Segment>,
    stack: Vec<MethodId>,
    end: ScriptEnd,
}

/// Parallel host: runs the private half of the access walk on a detached
/// [`CoreSim`] and records everything the merge needs to replay the turn.
struct ScriptHost<'s> {
    sim: &'s mut CoreSim,
    delta: Counters,
    requests: Vec<(u64, bool)>,
    segments: Vec<Segment>,
}

impl<'s> ScriptHost<'s> {
    fn new(sim: &'s mut CoreSim) -> Self {
        Self { sim, delta: Counters::default(), requests: Vec::new(), segments: Vec::new() }
    }

    /// Closes the trailing event-less segment and returns the turn's script.
    fn into_segments(mut self) -> Vec<Segment> {
        if self.delta != Counters::default() || !self.requests.is_empty() {
            let delta = self.delta;
            let requests = std::mem::take(&mut self.requests);
            self.segments.push(Segment { delta, requests, event: None });
        }
        self.segments
    }
}

impl TurnHost for ScriptHost<'_> {
    fn charge_instrs(&mut self, n: u64) {
        self.sim.charge_instrs(&mut self.delta, n);
    }

    fn access(&mut self, addr: u64, streaming: bool) {
        if self.sim.access_private(&mut self.delta, addr, streaming) {
            self.requests.push((addr, streaming));
        }
    }

    fn io_stall(&mut self, cycles: u64) {
        self.sim.io_stall(&mut self.delta, cycles);
    }

    fn fault(&mut self, ev: FaultEvent) {
        self.segments.push(Segment {
            delta: std::mem::take(&mut self.delta),
            requests: std::mem::take(&mut self.requests),
            event: Some(ev),
        });
    }
}

/// How one call to [`step_attempt`] ended.
enum StepEnd {
    /// The turn budget ran out; the attempt stays on its core.
    Budget,
    /// The executor crashed (the crash event has already gone to the host).
    Crashed,
    /// The attempt retired its last instruction.
    Finished,
}

/// The turn physics: runs one attempt against `host` until the budget runs
/// out, the executor crashes, or the attempt finishes. This single body is
/// the serial hot loop *and* the parallel script generator; `turn_stack` is
/// re-captured after every chunk because [`Running::advance`] resets the
/// stack while the budget may still die mid-item.
fn step_attempt<H: TurnHost>(
    run: &mut Running,
    budget: &mut u64,
    turn_stack: &mut Vec<MethodId>,
    host: &mut H,
    plan: &FaultPlan,
    stage_idx: usize,
    core: CoreId,
) -> StepEnd {
    while *budget > 0 {
        let item = &run.task.items[run.item_idx];

        // Lost shuffle fetch: decided once, as the item starts; the
        // recovery re-fetch stalls this core.
        if run.done_in_item == 0
            && item.shuffle_bytes > 0
            && plan.fetch_lost(
                stage_idx as u64,
                run.task_idx as u64,
                run.item_idx as u64,
                run.attempt,
            )
        {
            let penalty = plan.refetch_stall(item.shuffle_bytes);
            host.io_stall(penalty);
            host.fault(FaultEvent::ShuffleFetchLost {
                stage: stage_idx,
                task: run.task_idx,
                item: run.item_idx,
                core,
                bytes: item.shuffle_bytes,
                penalty_cycles: penalty,
            });
        }

        let mut chunk = (*budget).min(item.instrs - run.done_in_item);
        if let Some(at) = run.crash_at {
            chunk = chunk.min(at - run.done_in_task);
        }
        host.charge_instrs(chunk);
        let streaming = matches!(
            item.pattern,
            simprof_sim::AccessPattern::Sequential
                | simprof_sim::AccessPattern::Strided { stride_bytes: 0..=128 }
        );

        // Memory accesses, with sub-access credit carried across chunks so
        // low-intensity items still touch memory.
        run.access_credit += chunk * item.accesses_per_kinstr as u64;
        let n_acc = run.access_credit / 1000;
        run.access_credit %= 1000;
        for _ in 0..n_acc {
            let addr = run.cursor.next_addr();
            host.access(addr, streaming);
        }

        // IO stall charged proportionally to item progress.
        if item.io_stall_cycles > 0 {
            let due = item.io_stall_cycles * (run.done_in_item + chunk) / item.instrs;
            host.io_stall(due - run.stall_charged);
            run.stall_charged = due;
        }

        // A straggling executor retires the same instructions but at a
        // fraction of the speed; the lost cycles surface as stall time,
        // like iowait or contention.
        if run.factor > 1 {
            host.io_stall(chunk * (run.factor as u64 - 1));
        }

        run.done_in_item += chunk;
        run.done_in_task += chunk;
        *budget -= chunk;
        turn_stack.clear();
        turn_stack.extend_from_slice(&run.stack);

        // Executor crash: the rest of this turn dies with the executor;
        // requeue bookkeeping is the caller's (crash order: crash event
        // first, retry decision after).
        if run.crash_at == Some(run.done_in_task) {
            host.fault(FaultEvent::ExecutorCrash {
                stage: stage_idx,
                task: run.task_idx,
                attempt: run.attempt,
                core,
                lost_instrs: run.done_in_task,
            });
            return StepEnd::Crashed;
        }

        if run.done_in_item >= item.instrs && !run.advance() {
            return StepEnd::Finished;
        }
    }
    StepEnd::Budget
}

/// Scripts up to [`BATCH_ROUNDS`] turns of one slot against its detached
/// core sim. Stops early at a terminal turn (crash/finish) because anything
/// after it depends on merge-order bookkeeping (requeue, dispatch).
fn script_turns(
    sim: &mut CoreSim,
    run: &mut Running,
    quantum: u64,
    plan: &FaultPlan,
    stage_idx: usize,
    core: CoreId,
) -> VecDeque<TurnScript> {
    let mut out = VecDeque::with_capacity(BATCH_ROUNDS);
    for _ in 0..BATCH_ROUNDS {
        let factor = run.factor.max(1) as u64;
        let mut budget = (quantum / factor).max(1);
        let mut turn_stack: Vec<MethodId> = Vec::new();
        let mut host = ScriptHost::new(sim);
        let end =
            match step_attempt(run, &mut budget, &mut turn_stack, &mut host, plan, stage_idx, core)
            {
                StepEnd::Budget => ScriptEnd::Running,
                StepEnd::Crashed => ScriptEnd::Crashed { task: run.task_idx, attempt: run.attempt },
                StepEnd::Finished => ScriptEnd::Finished { task: run.task_idx, leftover: budget },
            };
        let terminal = !matches!(end, ScriptEnd::Running);
        out.push_back(TurnScript { segments: host.into_segments(), stack: turn_stack, end });
        if terminal {
            break;
        }
    }
    out
}

/// Mutable run-wide state threaded through every turn.
struct RunState<'l> {
    log: FaultLog,
    migration: MigrationClock,
    turn_counter: u64,
    cold_restart: Option<(usize, u64)>,
    listener: &'l mut dyn ExecListener,
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedConfig) -> Self {
        assert!(config.quantum > 0, "quantum must be positive");
        Self { config }
    }

    /// Runs `job` to completion on `machine`, reporting to `listener`, and
    /// returns the log of every runtime fault injected and recovered.
    ///
    /// Tasks that contain no items are skipped. Stages execute in order with
    /// a barrier between them; within a stage, task `i` goes to the first
    /// thread that becomes idle, in deterministic round-robin order.
    ///
    /// Fault recovery (driven by [`SchedConfig::faults`]):
    /// * **Executor crashes** discard the attempt's progress (its machine
    ///   cost stays charged — lost work is still work) and re-queue the task
    ///   at the back of the stage, up to `max_retries` times.
    /// * **Stragglers** run with a reduced per-turn budget and pay extra
    ///   stall cycles; if speculation is on, a twin attempt races them and
    ///   the first finisher wins, killing the other copy.
    /// * **Lost shuffle fetches** re-charge the fetch through the plan's
    ///   network + disk cost models.
    pub fn run(
        &self,
        machine: &mut Machine,
        job: &Job,
        listener: &mut dyn ExecListener,
    ) -> FaultLog {
        let _span = simprof_obs::span!("engine.run");
        let cores = machine.core_count();
        let mut rs = RunState {
            log: FaultLog::new(),
            migration: MigrationClock::new(self.config.perturbations, cores),
            turn_counter: 0,
            cold_restart: self.config.cold_restart,
            listener,
        };
        // The parallel fast path needs every feature that couples cores
        // mid-turn to be off: speculative twins can kill another slot's
        // attempt mid-batch, and migration noise flushes private caches the
        // detached sims would miss. A pending cold restart is checked per
        // round below because it disarms after firing once.
        let parallel_ok = !self.config.faults.speculative
            && self.config.perturbations.migration_period_instrs.is_none();

        for (stage_idx, stage) in job.stages.iter().enumerate() {
            let _stage_span = simprof_obs::span!(&stage.name);
            let mut state = StageState {
                pending: stage
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.items.is_empty())
                    .map(|(i, _)| Attempt { task: i, attempt: 0 })
                    .collect(),
                completed: vec![false; stage.tasks.len()],
                speculated: vec![false; stage.tasks.len()],
            };
            let mut running: Vec<Option<Running>> = (0..cores).map(|_| None).collect();
            loop {
                let n_running = running.iter().filter(|r| r.is_some()).count();
                if parallel_ok
                    && rs.cold_restart.is_none()
                    && n_running >= 2
                    && rayon::current_threads() > 1
                {
                    if self.parallel_batch(
                        &mut rs,
                        machine,
                        stage,
                        stage_idx,
                        &mut state,
                        &mut running,
                    ) {
                        break;
                    }
                    continue;
                }
                let mut idle = true;
                for core in 0..cores {
                    if self.serial_core_round(
                        &mut rs,
                        machine,
                        stage,
                        stage_idx,
                        &mut state,
                        &mut running,
                        core,
                    ) {
                        idle = false;
                    }
                }
                if idle {
                    break;
                }
            }
            rs.listener.on_stage_end(&stage.name, machine);
            // One trajectory sample per stage: cumulative quanta so far
            // (no-op without an active obs session).
            simprof_obs::timeseries_push("engine.quanta_total", rs.turn_counter as f64);
        }
        // Aggregated locally, recorded once: hot-loop turns never touch the
        // registry.
        simprof_obs::counter_add("engine.quanta", rs.turn_counter);
        simprof_obs::counter_add("engine.fault_events", rs.log.len() as u64);
        rs.log
    }

    /// One serial round-robin visit to `core`: dispatch if idle, then run a
    /// full turn (quantum, postlude, listener). Returns `false` when the
    /// core had nothing to do.
    #[allow(clippy::too_many_arguments)]
    fn serial_core_round<'a>(
        &self,
        rs: &mut RunState<'_>,
        machine: &mut Machine,
        stage: &'a Stage,
        stage_idx: usize,
        state: &mut StageState,
        running: &mut [Option<Running<'a>>],
        core: CoreId,
    ) -> bool {
        if running[core].is_none() {
            running[core] = self.dispatch(
                state,
                stage,
                stage_idx,
                core,
                machine,
                &mut *rs.listener,
                &mut rs.log,
            );
        }
        if running[core].is_none() {
            return false;
        }

        // One turn: consume a full quantum of instructions, even if that
        // spans several (small) work items — keeping threads fair in
        // virtual time regardless of item granularity. The stack reported
        // to the listener is the one active at the end of the turn, which
        // is exactly what a sampling profiler would observe. Stragglers get
        // a proportionally smaller budget: they fall behind their peers in
        // virtual time.
        let factor = running[core].as_ref().map_or(1, |r| r.factor).max(1) as u64;
        let mut budget = (self.config.quantum / factor).max(1);
        let mut turn_stack: Vec<MethodId> = Vec::new();
        self.serial_turn(
            rs,
            machine,
            stage,
            stage_idx,
            state,
            running,
            core,
            &mut budget,
            &mut turn_stack,
        );
        self.turn_postlude(rs, machine, core, turn_stack);
        true
    }

    /// Runs `core`'s turn live against the machine until the budget is
    /// spent, handling crash requeue, task completion, speculation kills,
    /// and the within-budget dispatch of follow-on attempts.
    #[allow(clippy::too_many_arguments)]
    fn serial_turn<'a>(
        &self,
        rs: &mut RunState<'_>,
        machine: &mut Machine,
        stage: &'a Stage,
        stage_idx: usize,
        state: &mut StageState,
        running: &mut [Option<Running<'a>>],
        core: CoreId,
        budget: &mut u64,
        turn_stack: &mut Vec<MethodId>,
    ) {
        let plan = self.config.faults;
        while *budget > 0 {
            if running[core].is_none() {
                break;
            }
            let end = {
                let run = running[core].as_mut().expect("slot checked above");
                let mut host =
                    LiveHost { machine, core, listener: &mut *rs.listener, log: &mut rs.log };
                step_attempt(run, budget, turn_stack, &mut host, &plan, stage_idx, core)
            };
            let (t, a) = {
                let r = running[core].as_ref().expect("slot survives the step");
                (r.task_idx, r.attempt)
            };
            match end {
                StepEnd::Budget => break,
                StepEnd::Crashed => {
                    // Progress is lost, the task goes back in the queue
                    // (bounded by the retry budget), and the rest of this
                    // turn dies with the executor.
                    running[core] = None;
                    self.handle_crash(rs, machine, state, stage_idx, t, a);
                    break;
                }
                StepEnd::Finished => {
                    // Attempt finished. First finisher completes the task;
                    // a losing speculative twin is killed on the spot. A
                    // fresh task (if any) continues within the same budget.
                    running[core] = None;
                    if !state.completed[t] {
                        state.completed[t] = true;
                        if state.speculated[t] {
                            let ev = FaultEvent::SpeculativeWin {
                                stage: stage_idx,
                                task: t,
                                winner_attempt: a,
                            };
                            rs.listener.on_fault(&ev, machine);
                            rs.log.push(ev);
                            for slot in running.iter_mut() {
                                if slot.as_ref().is_some_and(|r| r.task_idx == t) {
                                    *slot = None;
                                }
                            }
                        }
                    }
                    running[core] = self.dispatch(
                        state,
                        stage,
                        stage_idx,
                        core,
                        machine,
                        &mut *rs.listener,
                        &mut rs.log,
                    );
                }
            }
        }
    }

    /// Post-crash bookkeeping shared by the serial and merge paths: requeue
    /// the task within the retry budget, or report retries exhausted. The
    /// crash event itself has already been delivered in cost-stream order.
    fn handle_crash(
        &self,
        rs: &mut RunState<'_>,
        machine: &Machine,
        state: &mut StageState,
        stage_idx: usize,
        task: usize,
        attempt: u32,
    ) {
        if state.completed[task] {
            return;
        }
        if attempt < self.config.faults.max_retries {
            state.pending.push_back(Attempt { task, attempt: attempt + 1 });
        } else {
            let ev = FaultEvent::RetriesExhausted { stage: stage_idx, task, attempts: attempt + 1 };
            rs.listener.on_fault(&ev, machine);
            rs.log.push(ev);
        }
    }

    /// End-of-turn bookkeeping in serial order: GC/JIT noise, the one-shot
    /// cold restart, migration noise, and the listener progress callback.
    fn turn_postlude(
        &self,
        rs: &mut RunState<'_>,
        machine: &mut Machine,
        core: CoreId,
        mut turn_stack: Vec<MethodId>,
    ) {
        // GC/JIT noise: occasionally a turn is observed inside the JVM
        // runtime instead of the executor's own stack.
        rs.turn_counter += 1;
        if let Some(gc) = self.config.gc {
            let h = gc_hash(gc.seed, core as u64, rs.turn_counter);
            if (h % 1_000_000) < gc.probability_ppm as u64 {
                machine.io_stall(core, gc.pause_cycles);
                turn_stack.clear();
                turn_stack.push(gc.method);
            }
        }

        let total = machine.counters(core).instructions;
        if let Some((target_core, at)) = rs.cold_restart {
            if core == target_core && total >= at {
                machine.flush_core_fraction(core, 1.0, 0xC01D);
                // Only the restarted core's node goes cold; other nodes'
                // LLCs are unaffected by a local restart.
                machine.flush_domain_llc(core, 1.0, 0xC01D);
                rs.cold_restart = None;
            }
        }
        rs.migration.poll(machine, core, total);
        rs.listener.on_progress(core, total, &turn_stack, machine);
    }

    /// The parallel fast path: detaches every running slot's private caches,
    /// scripts up to [`BATCH_ROUNDS`] turns per slot concurrently, then
    /// replays the scripts in round-robin slot order against the live
    /// machine. A slot whose script hit a terminal turn (crash/finish)
    /// continues live within the merge, so dispatch order, completion, and
    /// every listener callback land exactly where the serial path puts
    /// them. Returns `true` when the stage reached its all-idle round.
    fn parallel_batch<'a>(
        &self,
        rs: &mut RunState<'_>,
        machine: &mut Machine,
        stage: &'a Stage,
        stage_idx: usize,
        state: &mut StageState,
        running: &mut [Option<Running<'a>>],
    ) -> bool {
        let cores = machine.core_count();
        let plan = self.config.faults;
        let quantum = self.config.quantum;

        // Scatter: move each running slot's private caches and attempt
        // state into a per-slot work unit.
        let mut sims: Vec<Option<CoreSim>> =
            machine.detach_core_sims().into_iter().map(Some).collect();
        let units: Vec<(CoreId, CoreSim, Running<'a>)> = (0..cores)
            .filter_map(|core| {
                running[core]
                    .take()
                    .map(|run| (core, sims[core].take().expect("sim for every core"), run))
            })
            .collect();

        // Simulate: the private cache walk of each slot runs concurrently;
        // nothing here touches the shared LLC or any cross-slot state.
        let scripted: Vec<(CoreId, CoreSim, Running<'a>, VecDeque<TurnScript>)> = units
            .into_par_iter()
            .map(move |(core, mut sim, mut run)| {
                let scripts = script_turns(&mut sim, &mut run, quantum, &plan, stage_idx, core);
                (core, sim, run, scripts)
            })
            .collect();

        // Gather: put caches and attempts back in core order.
        let mut scripts: Vec<Option<VecDeque<TurnScript>>> = (0..cores).map(|_| None).collect();
        for (core, sim, run, s) in scripted {
            sims[core] = Some(sim);
            running[core] = Some(run);
            scripts[core] = Some(s);
        }
        machine
            .attach_core_sims(sims.into_iter().map(|s| s.expect("sim for every core")).collect());

        // Merge: replay every scripted turn at its serial position. Slots
        // whose script ended (terminal turn) or that were idle at batch
        // start run live for the remaining rounds.
        for _round in 0..BATCH_ROUNDS {
            let mut idle = true;
            for (core, slot) in scripts.iter_mut().enumerate() {
                let next = slot.as_mut().and_then(VecDeque::pop_front);
                if let Some(turn) = next {
                    idle = false;
                    if self.merge_turn(rs, machine, stage, stage_idx, state, running, core, turn) {
                        *slot = None;
                    }
                } else {
                    *slot = None;
                    if self.serial_core_round(rs, machine, stage, stage_idx, state, running, core) {
                        idle = false;
                    }
                }
            }
            if idle {
                return true;
            }
        }
        false
    }

    /// Replays one scripted turn on the live machine: applies each segment's
    /// counter delta, resolves its LLC requests in order, delivers its fault
    /// event, then runs the terminal bookkeeping (crash requeue or
    /// completion + live continuation of the leftover budget) and the turn
    /// postlude. Returns `true` when the turn was terminal, which
    /// invalidates the rest of the slot's script.
    #[allow(clippy::too_many_arguments)]
    fn merge_turn<'a>(
        &self,
        rs: &mut RunState<'_>,
        machine: &mut Machine,
        stage: &'a Stage,
        stage_idx: usize,
        state: &mut StageState,
        running: &mut [Option<Running<'a>>],
        core: CoreId,
        turn: TurnScript,
    ) -> bool {
        for seg in turn.segments {
            machine.apply_delta(core, seg.delta);
            for (addr, streaming) in seg.requests {
                machine.resolve_llc(core, addr, streaming);
            }
            if let Some(ev) = seg.event {
                rs.listener.on_fault(&ev, machine);
                rs.log.push(ev);
            }
        }
        let mut turn_stack = turn.stack;
        match turn.end {
            ScriptEnd::Running => {
                self.turn_postlude(rs, machine, core, turn_stack);
                false
            }
            ScriptEnd::Crashed { task, attempt } => {
                running[core] = None;
                self.handle_crash(rs, machine, state, stage_idx, task, attempt);
                self.turn_postlude(rs, machine, core, turn_stack);
                true
            }
            ScriptEnd::Finished { task, leftover } => {
                running[core] = None;
                if !state.completed[task] {
                    state.completed[task] = true;
                    // Speculation forces the serial path, so no twin can
                    // exist to win or kill here.
                    debug_assert!(!state.speculated[task]);
                }
                running[core] = self.dispatch(
                    state,
                    stage,
                    stage_idx,
                    core,
                    machine,
                    &mut *rs.listener,
                    &mut rs.log,
                );
                let mut budget = leftover;
                self.serial_turn(
                    rs,
                    machine,
                    stage,
                    stage_idx,
                    state,
                    running,
                    core,
                    &mut budget,
                    &mut turn_stack,
                );
                self.turn_postlude(rs, machine, core, turn_stack);
                true
            }
        }
    }

    /// Starts the next runnable attempt for `core`: pops pending attempts
    /// (skipping tasks a twin already completed), rolls the attempt's crash
    /// point and straggler factor, and — for a fresh straggler — enqueues a
    /// speculative twin when the plan allows one.
    #[allow(clippy::too_many_arguments)]
    fn dispatch<'a>(
        &self,
        state: &mut StageState,
        stage: &'a Stage,
        stage_idx: usize,
        core: usize,
        machine: &Machine,
        listener: &mut dyn ExecListener,
        log: &mut FaultLog,
    ) -> Option<Running<'a>> {
        let plan = &self.config.faults;
        while let Some(att) = state.pending.pop_front() {
            if state.completed[att.task] {
                continue;
            }
            let task = &stage.tasks[att.task];
            let crash_at = plan.crash_point(
                stage_idx as u64,
                att.task as u64,
                att.attempt,
                task.total_instrs(),
            );
            let factor = plan.straggler_factor_for(stage_idx as u64, att.task as u64, att.attempt);
            if factor > 1 {
                let ev = FaultEvent::Straggler {
                    stage: stage_idx,
                    task: att.task,
                    attempt: att.attempt,
                    core,
                    factor,
                };
                listener.on_fault(&ev, machine);
                log.push(ev);
                if plan.speculative && !state.speculated[att.task] {
                    state.speculated[att.task] = true;
                    state.pending.push_back(Attempt { task: att.task, attempt: att.attempt + 1 });
                    let ev = FaultEvent::SpeculativeClone {
                        stage: stage_idx,
                        task: att.task,
                        original_attempt: att.attempt,
                    };
                    listener.on_fault(&ev, machine);
                    log.push(ev);
                }
            }
            simprof_obs::counter_add("engine.attempts_dispatched", 1);
            return Some(Running::new(task, att.task, att.attempt, crash_at, factor));
        }
        None
    }
}

/// Per-stage recovery bookkeeping.
struct StageState {
    /// Attempts waiting for an executor, in dispatch order.
    pending: VecDeque<Attempt>,
    /// Tasks whose work is done (first finisher wins under speculation).
    completed: Vec<bool>,
    /// Tasks that already have a speculative twin (at most one each).
    speculated: Vec<bool>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new(SchedConfig::default())
    }
}

/// SplitMix64-style mix for the per-turn GC decision.
fn gc_hash(seed: u64, core: u64, turn: u64) -> u64 {
    let mut z =
        seed ^ core.wrapping_mul(0xA24B_AED4_963E_E407) ^ turn.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{MethodRegistry, OpClass};
    use crate::work::{Stage, WorkItem};
    use simprof_sim::{AccessPattern, MachineConfig, Region};

    struct Recorder {
        progress: Vec<(CoreId, u64, Vec<MethodId>)>,
        stages: Vec<String>,
    }

    impl ExecListener for Recorder {
        fn on_progress(&mut self, core: CoreId, instrs: u64, stack: &[MethodId], _: &Machine) {
            self.progress.push((core, instrs, stack.to_vec()));
        }
        fn on_stage_end(&mut self, stage: &str, _: &Machine) {
            self.stages.push(stage.to_owned());
        }
    }

    fn setup() -> (Machine, MethodRegistry) {
        (Machine::new(MachineConfig::scaled(2)), MethodRegistry::new())
    }

    fn item(path: Vec<MethodId>, instrs: u64) -> WorkItem {
        WorkItem::compute(path, instrs, 50, AccessPattern::Sequential, Region::new(0x1000, 4096), 1)
    }

    #[test]
    fn executes_all_instructions() {
        let (mut m, _r) = setup();
        let job = Job::new(vec![Stage::new(
            "s0",
            vec![
                Task::new(vec![], vec![item(vec![], 10_000)]),
                Task::new(vec![], vec![item(vec![], 6_000)]),
                Task::new(vec![], vec![item(vec![], 4_000)]),
            ],
        )]);
        Scheduler::default().run(&mut m, &job, &mut NullListener);
        let total: u64 = (0..2).map(|c| m.counters(c).instructions).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn stacks_follow_items_and_tasks() {
        let (mut m, mut r) = setup();
        let base = r.intern("Executor.run", OpClass::Framework);
        let map = r.intern("Mapper.map", OpClass::Map);
        let sort = r.intern("Sorter.sort", OpClass::Sort);
        let job = Job::new(vec![Stage::new(
            "s0",
            vec![Task::new(vec![base], vec![item(vec![map], 5_000), item(vec![sort], 5_000)])],
        )]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::new(SchedConfig { quantum: 1_000, ..Default::default() })
            .run(&mut m, &job, &mut rec);
        let stacks: Vec<&Vec<MethodId>> = rec.progress.iter().map(|(_, _, s)| s).collect();
        assert!(stacks.iter().any(|s| **s == vec![base, map]));
        assert!(stacks.iter().any(|s| **s == vec![base, sort]));
        // Map quanta come strictly before sort quanta.
        let first_sort = stacks.iter().position(|s| **s == vec![base, sort]).unwrap();
        assert!(stacks[..first_sort].iter().all(|s| **s == vec![base, map]));
        assert_eq!(rec.stages, vec!["s0"]);
    }

    #[test]
    fn tasks_interleave_round_robin_across_cores() {
        let (mut m, _r) = setup();
        let job = Job::new(vec![Stage::new(
            "s0",
            vec![
                Task::new(vec![], vec![item(vec![], 4_000)]),
                Task::new(vec![], vec![item(vec![], 4_000)]),
            ],
        )]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::new(SchedConfig { quantum: 1_000, ..Default::default() })
            .run(&mut m, &job, &mut rec);
        let cores: Vec<CoreId> = rec.progress.iter().map(|&(c, _, _)| c).collect();
        assert_eq!(cores, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn stage_barrier_orders_stages() {
        let (mut m, mut r) = setup();
        let a = r.intern("A", OpClass::Map);
        let b = r.intern("B", OpClass::Reduce);
        let job = Job::new(vec![
            Stage::new("map", vec![Task::new(vec![], vec![item(vec![a], 3_000)])]),
            Stage::new("reduce", vec![Task::new(vec![], vec![item(vec![b], 3_000)])]),
        ]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::new(SchedConfig { quantum: 1_000, ..Default::default() })
            .run(&mut m, &job, &mut rec);
        let first_b = rec.progress.iter().position(|(_, _, s)| s.contains(&b)).unwrap();
        assert!(rec.progress[..first_b].iter().all(|(_, _, s)| s.contains(&a)));
        assert_eq!(rec.stages, vec!["map", "reduce"]);
    }

    #[test]
    fn io_stalls_charged_fully() {
        let (mut m, _r) = setup();
        let mut it = item(vec![], 10_000);
        it.io_stall_cycles = 55_555;
        let job = Job::new(vec![Stage::new("io", vec![Task::new(vec![], vec![it])])]);
        Scheduler::default().run(&mut m, &job, &mut NullListener);
        assert_eq!(m.counters(0).io_stall_cycles, 55_555);
    }

    #[test]
    fn empty_tasks_and_stages_are_safe() {
        let (mut m, _r) = setup();
        let job = Job::new(vec![
            Stage::new("empty", vec![]),
            Stage::new("hollow", vec![Task::new(vec![], vec![])]),
        ]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        Scheduler::default().run(&mut m, &job, &mut rec);
        assert!(rec.progress.is_empty());
        assert_eq!(rec.stages, vec!["empty", "hollow"]);
    }

    #[test]
    fn more_tasks_than_cores_all_complete() {
        let (mut m, _r) = setup();
        let tasks: Vec<Task> =
            (0..7).map(|_| Task::new(vec![], vec![item(vec![], 2_000)])).collect();
        let job = Job::new(vec![Stage::new("s", tasks)]);
        Scheduler::default().run(&mut m, &job, &mut NullListener);
        let total: u64 = (0..2).map(|c| m.counters(c).instructions).sum();
        assert_eq!(total, 14_000);
    }

    #[test]
    fn gc_noise_reports_gc_stacks_and_costs_cycles() {
        let (mut m, mut r) = setup();
        let gc_m = r.intern("jvm.GCTaskThread.run", OpClass::Framework);
        let job =
            Job::new(vec![Stage::new("s", vec![Task::new(vec![], vec![item(vec![], 400_000)])])]);
        let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
        let cfg = SchedConfig {
            quantum: 1_000,
            gc: Some(GcModel { method: gc_m, probability_ppm: 50_000, pause_cycles: 500, seed: 3 }),
            ..Default::default()
        };
        Scheduler::new(cfg).run(&mut m, &job, &mut rec);
        let gc_turns = rec.progress.iter().filter(|(_, _, s)| s == &vec![gc_m]).count();
        // ~5% of 400 turns.
        assert!(gc_turns > 5 && gc_turns < 60, "{gc_turns}");
        assert!(m.counters(0).io_stall_cycles >= gc_turns as u64 * 500);
    }

    #[test]
    fn cold_restart_flushes_caches_once() {
        let (mut m, _r) = setup();
        // One long streaming task: after warm-up, hits; at the restart point
        // the caches go cold and misses spike again.
        let job =
            Job::new(vec![Stage::new("s", vec![Task::new(vec![], vec![item(vec![], 100_000)])])]);
        struct MissWatch {
            at: u64,
            before: Option<u64>,
            after: Option<u64>,
        }
        impl ExecListener for MissWatch {
            fn on_progress(&mut self, core: CoreId, instrs: u64, _: &[MethodId], m: &Machine) {
                if core != 0 {
                    return;
                }
                if instrs < self.at {
                    self.before = Some(m.counters(0).l1_misses);
                } else if self.after.is_none() {
                    self.after = Some(m.counters(0).l1_misses);
                }
            }
        }
        let mut watch = MissWatch { at: 50_000, before: None, after: None };
        let cfg =
            SchedConfig { quantum: 1_000, cold_restart: Some((0, 50_000)), ..Default::default() };
        Scheduler::new(cfg).run(&mut m, &job, &mut watch);
        let before = watch.before.unwrap();
        let final_misses = m.counters(0).l1_misses;
        // The region is 4 KiB = 64 lines; warm traffic would add ~0 misses
        // after the first pass, so the post-restart delta must show a fresh
        // cold pass.
        assert!(
            final_misses >= before + 32,
            "cold restart must re-miss: before {before}, final {final_misses}"
        );
    }

    /// The tentpole contract: the parallel fast path must produce the same
    /// counter stream, progress callbacks, and fault log as the serial path,
    /// bit for bit, at any thread count — under a chaotic plan with crashes,
    /// stragglers, lost fetches, GC noise, and mixed access patterns.
    #[test]
    fn parallel_simulation_is_bit_identical_to_serial() {
        use crate::faults::FaultPlan;

        let run_with = |threads: usize| {
            rayon::set_threads(threads);
            let mut m = Machine::new(MachineConfig::scaled(4));
            let mut r = MethodRegistry::new();
            let gc_m = r.intern("jvm.GCTaskThread.run", OpClass::Framework);
            let tasks: Vec<Task> = (0..9)
                .map(|i| {
                    let mut a = item(vec![], 20_000 + i * 3_000);
                    if i % 3 == 0 {
                        a.pattern = AccessPattern::Random;
                    }
                    let b = item(vec![], 8_000).with_io_stall(9_000).with_shuffle_bytes(1 << 20);
                    Task::new(vec![], vec![a, b])
                })
                .collect();
            let job = Job::new(vec![
                Stage::new("map", tasks),
                Stage::new("reduce", vec![Task::new(vec![], vec![item(vec![], 30_000)])]),
            ]);
            let plan = FaultPlan { speculative: false, ..FaultPlan::uniform(120_000, 77) };
            let cfg = SchedConfig {
                quantum: 1_000,
                gc: Some(GcModel {
                    method: gc_m,
                    probability_ppm: 40_000,
                    pause_cycles: 700,
                    seed: 5,
                }),
                faults: plan,
                ..Default::default()
            };
            let mut rec = Recorder { progress: Vec::new(), stages: Vec::new() };
            let log = Scheduler::new(cfg).run(&mut m, &job, &mut rec);
            let counters: Vec<_> = (0..4).map(|c| m.counters(c)).collect();
            (log, counters, rec.progress, rec.stages)
        };

        let serial = run_with(1);
        for threads in [2, 8] {
            let parallel = run_with(threads);
            assert_eq!(serial.0, parallel.0, "fault log diverged at {threads} threads");
            assert_eq!(serial.1, parallel.1, "counters diverged at {threads} threads");
            assert_eq!(serial.2, parallel.2, "progress diverged at {threads} threads");
            assert_eq!(serial.3, parallel.3, "stages diverged at {threads} threads");
        }
        rayon::set_threads(1);
        assert!(!serial.0.is_empty(), "chaos plan must actually inject faults");
    }

    #[test]
    fn deterministic_end_state() {
        let run_once = || {
            let (mut m, _r) = setup();
            let tasks: Vec<Task> = (0..5)
                .map(|i| {
                    let mut it = item(vec![], 3_000 + i * 500);
                    it.pattern = AccessPattern::Random;
                    Task::new(vec![], vec![it])
                })
                .collect();
            let job = Job::new(vec![Stage::new("s", tasks)]);
            Scheduler::default().run(&mut m, &job, &mut NullListener);
            (m.counters(0), m.counters(1))
        };
        assert_eq!(run_once(), run_once());
    }
}
