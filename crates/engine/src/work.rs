//! Work items, tasks, stages, and jobs — the cost trace the scheduler
//! executes.
//!
//! A [`WorkItem`] is the atom of execution: a run of instructions attributed
//! to a call-stack path, touching one memory region with one access pattern,
//! optionally stalled on IO. A [`Task`] is the unit of scheduling (one Spark
//! task / one Hadoop map or reduce attempt): a base call-stack prefix plus a
//! sequence of items. A [`Stage`] barriers tasks (Spark stages; Hadoop map
//! wave vs reduce wave), and a [`Job`] is the ordered list of stages.

use serde::{Deserialize, Serialize};

use simprof_sim::{AccessPattern, Region};

use crate::methods::MethodId;

/// One contiguous piece of attributed work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Call-stack path appended below the owning task's base path while this
    /// item runs.
    pub path: Vec<MethodId>,
    /// Instructions this item retires (always ≥ 1).
    pub instrs: u64,
    /// Memory intensity: accesses per 1000 instructions.
    pub accesses_per_kinstr: u32,
    /// How the accesses walk `region`.
    pub pattern: AccessPattern,
    /// The region touched.
    pub region: Region,
    /// IO stall cycles spread uniformly across the item's execution.
    pub io_stall_cycles: u64,
    /// Shuffle bytes this item fetches (0 for non-fetch items). Lets the
    /// fault layer price a lost-fetch recovery for exactly this item.
    #[serde(default)]
    pub shuffle_bytes: u64,
    /// Seed for the item's access-pattern randomness.
    pub seed: u64,
}

impl WorkItem {
    /// Creates a compute item. `instrs` is clamped to at least 1 so every
    /// item makes forward progress under the quantum scheduler.
    pub fn compute(
        path: Vec<MethodId>,
        instrs: u64,
        accesses_per_kinstr: u32,
        pattern: AccessPattern,
        region: Region,
        seed: u64,
    ) -> Self {
        Self {
            path,
            instrs: instrs.max(1),
            accesses_per_kinstr,
            pattern,
            region,
            io_stall_cycles: 0,
            shuffle_bytes: 0,
            seed,
        }
    }

    /// Attaches an IO stall to this item (lazily overlapped IO, e.g. a
    /// record reader feeding a mapper), returning the modified item.
    pub fn with_io_stall(mut self, stall_cycles: u64) -> Self {
        self.io_stall_cycles += stall_cycles;
        self
    }

    /// Marks this item as a shuffle fetch of `bytes`, making it eligible
    /// for lost-fetch fault injection, returning the modified item.
    pub fn with_shuffle_bytes(mut self, bytes: u64) -> Self {
        self.shuffle_bytes = bytes;
        self
    }

    /// Creates an IO item: a few instructions of buffer management plus a
    /// stall, streaming through `region`.
    pub fn io(
        path: Vec<MethodId>,
        instrs: u64,
        stall_cycles: u64,
        region: Region,
        seed: u64,
    ) -> Self {
        Self {
            path,
            instrs: instrs.max(1),
            accesses_per_kinstr: 30,
            pattern: AccessPattern::Sequential,
            region,
            io_stall_cycles: stall_cycles,
            shuffle_bytes: 0,
            seed,
        }
    }
}

/// The unit of scheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Call-stack prefix shared by every item (executor / task-runner
    /// framework methods).
    pub base_path: Vec<MethodId>,
    /// The item sequence, executed in order.
    pub items: Vec<WorkItem>,
}

impl Task {
    /// Creates a task.
    pub fn new(base_path: Vec<MethodId>, items: Vec<WorkItem>) -> Self {
        Self { base_path, items }
    }

    /// Total instructions across all items.
    pub fn total_instrs(&self) -> u64 {
        self.items.iter().map(|i| i.instrs).sum()
    }
}

/// A barrier-separated group of tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Human-readable stage name ("map-stage-0", "reduce-stage-1").
    pub name: String,
    /// The tasks; the scheduler distributes them over executor threads.
    pub tasks: Vec<Task>,
}

impl Stage {
    /// Creates a stage.
    pub fn new(name: impl Into<String>, tasks: Vec<Task>) -> Self {
        Self { name: name.into(), tasks }
    }

    /// Total instructions across all tasks.
    pub fn total_instrs(&self) -> u64 {
        self.tasks.iter().map(Task::total_instrs).sum()
    }
}

/// An ordered list of stages — one data-analytic job.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Job {
    /// The stages, executed with a barrier between consecutive stages.
    pub stages: Vec<Stage>,
}

impl Job {
    /// Creates a job from stages.
    pub fn new(stages: Vec<Stage>) -> Self {
        Self { stages }
    }

    /// Total instructions in the job.
    pub fn total_instrs(&self) -> u64 {
        self.stages.iter().map(Stage::total_instrs).sum()
    }

    /// Total number of tasks in the job.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }
}

/// Injects task re-executions: with probability `ppm` per task, the task is
/// duplicated within its stage — the cost shape of Hadoop/Spark speculative
/// execution and failure retries (the frameworks "provide reliability to
/// tolerate node failures", paper §I). Deterministic per `seed`.
///
/// Returns the number of retries injected.
pub fn inject_task_retries(job: &mut Job, ppm: u32, seed: u64) -> usize {
    let mut injected = 0;
    let mut counter = 0u64;
    for stage in &mut job.stages {
        let mut retries = Vec::new();
        for task in &stage.tasks {
            counter += 1;
            let mut z = seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            if (z % 1_000_000) < ppm as u64 {
                retries.push(task.clone());
            }
        }
        injected += retries.len();
        stage.tasks.extend(retries);
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(0x1000, 1024)
    }

    #[test]
    fn compute_clamps_instrs() {
        let w = WorkItem::compute(vec![], 0, 10, AccessPattern::Sequential, region(), 0);
        assert_eq!(w.instrs, 1);
        assert_eq!(w.io_stall_cycles, 0);
    }

    #[test]
    fn io_item_has_stall() {
        let w = WorkItem::io(vec![], 100, 5000, region(), 0);
        assert_eq!(w.io_stall_cycles, 5000);
        assert_eq!(w.pattern, AccessPattern::Sequential);
    }

    #[test]
    fn retry_injection_is_deterministic_and_bounded() {
        let mk = |n| WorkItem::compute(vec![], n, 0, AccessPattern::Sequential, region(), 0);
        let build = || {
            Job::new(vec![Stage::new(
                "s",
                (0..200).map(|i| Task::new(vec![], vec![mk(100 + i)])).collect(),
            )])
        };
        let mut a = build();
        let mut b = build();
        let na = inject_task_retries(&mut a, 100_000, 7); // ~10 %
        let nb = inject_task_retries(&mut b, 100_000, 7);
        assert_eq!(na, nb);
        assert_eq!(a, b);
        assert!(na > 5 && na < 50, "~10% of 200: {na}");
        assert_eq!(a.total_tasks(), 200 + na);
        // ppm = 0 injects nothing.
        let mut c = build();
        assert_eq!(inject_task_retries(&mut c, 0, 7), 0);
        assert_eq!(c.total_tasks(), 200);
    }

    #[test]
    fn totals_roll_up() {
        let mk = |n| WorkItem::compute(vec![], n, 0, AccessPattern::Sequential, region(), 0);
        let t1 = Task::new(vec![], vec![mk(100), mk(200)]);
        let t2 = Task::new(vec![], vec![mk(50)]);
        assert_eq!(t1.total_instrs(), 300);
        let stage = Stage::new("s", vec![t1, t2]);
        assert_eq!(stage.total_instrs(), 350);
        let job = Job::new(vec![stage.clone(), stage]);
        assert_eq!(job.total_instrs(), 700);
        assert_eq!(job.total_tasks(), 4);
    }
}
