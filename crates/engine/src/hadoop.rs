//! Hadoop-flavoured job assembly.
//!
//! The method catalog matches the stacks the paper shows for Hadoop MapReduce
//! (Fig. 15: `TokenizerMapper.map`, `NewCombinerRunner.combine`, the
//! quicksort inside `MapOutputBuffer.sortAndSpill`). Hadoop's execution
//! model differs from Spark's in two ways the engine reproduces: the map →
//! reduce waves are separate stages with a hard barrier, and an executor
//! (task JVM) lives only as long as one task. The profiler merges per-core
//! task streams into one logical thread, exactly as §III-A describes — with
//! one executor thread pinned per core, per-core profiling performs that
//! merge by construction.

use serde::{Deserialize, Serialize};

use crate::methods::{MethodId, MethodRegistry, OpClass};

/// Interned Hadoop framework methods.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HadoopMethods {
    /// `org.apache.hadoop.mapred.YarnChild.main` (task JVM entry)
    pub yarn_child_main: MethodId,
    /// `org.apache.hadoop.mapred.MapTask.run`
    pub map_task_run: MethodId,
    /// `org.apache.hadoop.mapred.ReduceTask.run`
    pub reduce_task_run: MethodId,
    /// `org.apache.hadoop.mapreduce.lib.input.LineRecordReader.nextKeyValue`
    pub line_record_reader_next: MethodId,
    /// `org.apache.hadoop.mapred.MapTask$MapOutputBuffer.collect`
    pub map_output_buffer_collect: MethodId,
    /// `org.apache.hadoop.mapred.MapTask$MapOutputBuffer.sortAndSpill`
    pub sort_and_spill: MethodId,
    /// `org.apache.hadoop.util.QuickSort.sort`
    pub quick_sort: MethodId,
    /// `org.apache.hadoop.mapred.Task$NewCombinerRunner.combine`
    pub combiner_combine: MethodId,
    /// `org.apache.hadoop.io.compress.DefaultCodec.compress` (mapper-output
    /// compression — one of the "common optimizations" §IV-A applies)
    pub codec_compress: MethodId,
    /// `org.apache.hadoop.mapreduce.task.reduce.Fetcher.copyMapOutput`
    pub fetcher_copy: MethodId,
    /// `org.apache.hadoop.mapred.Merger$MergeQueue.merge`
    pub merger_merge: MethodId,
    /// `org.apache.hadoop.mapred.IFile$Writer.append` (spill file writes)
    pub ifile_writer_append: MethodId,
    /// `org.apache.hadoop.hdfs.DFSInputStream.read`
    pub dfs_read: MethodId,
    /// `org.apache.hadoop.hdfs.DFSOutputStream.write`
    pub dfs_write: MethodId,
}

impl HadoopMethods {
    /// Interns the whole catalog.
    pub fn intern(reg: &mut MethodRegistry) -> Self {
        Self {
            yarn_child_main: reg
                .intern("org.apache.hadoop.mapred.YarnChild.main", OpClass::Framework),
            map_task_run: reg.intern("org.apache.hadoop.mapred.MapTask.run", OpClass::Framework),
            reduce_task_run: reg
                .intern("org.apache.hadoop.mapred.ReduceTask.run", OpClass::Framework),
            line_record_reader_next: reg.intern(
                "org.apache.hadoop.mapreduce.lib.input.LineRecordReader.nextKeyValue",
                OpClass::Io,
            ),
            map_output_buffer_collect: reg
                .intern("org.apache.hadoop.mapred.MapTask$MapOutputBuffer.collect", OpClass::Map),
            sort_and_spill: reg.intern(
                "org.apache.hadoop.mapred.MapTask$MapOutputBuffer.sortAndSpill",
                OpClass::Sort,
            ),
            quick_sort: reg.intern("org.apache.hadoop.util.QuickSort.sort", OpClass::Sort),
            combiner_combine: reg
                .intern("org.apache.hadoop.mapred.Task$NewCombinerRunner.combine", OpClass::Reduce),
            codec_compress: reg
                .intern("org.apache.hadoop.io.compress.DefaultCodec.compress", OpClass::Io),
            fetcher_copy: reg.intern(
                "org.apache.hadoop.mapreduce.task.reduce.Fetcher.copyMapOutput",
                OpClass::Io,
            ),
            // Classified Io, not Sort: the reduce-side merge streams spilled
            // runs from disk; the paper's "sort" phase type is key sorting
            // (quicksort), which sort_hp and grep_hp lack (Fig. 10).
            merger_merge: reg
                .intern("org.apache.hadoop.mapred.Merger$MergeQueue.merge", OpClass::Io),
            ifile_writer_append: reg
                .intern("org.apache.hadoop.mapred.IFile$Writer.append", OpClass::Io),
            dfs_read: reg.intern("org.apache.hadoop.hdfs.DFSInputStream.read", OpClass::Io),
            dfs_write: reg.intern("org.apache.hadoop.hdfs.DFSOutputStream.write", OpClass::Io),
        }
    }

    /// Stack prefix of a map task attempt.
    pub fn map_base(&self) -> Vec<MethodId> {
        vec![self.yarn_child_main, self.map_task_run]
    }

    /// Stack prefix of a reduce task attempt.
    pub fn reduce_base(&self) -> Vec<MethodId> {
        vec![self.yarn_child_main, self.reduce_task_run]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_classes() {
        let mut reg = MethodRegistry::new();
        let m = HadoopMethods::intern(&mut reg);
        assert_eq!(reg.class(m.quick_sort), OpClass::Sort);
        assert_eq!(reg.class(m.combiner_combine), OpClass::Reduce);
        assert_eq!(reg.class(m.map_output_buffer_collect), OpClass::Map);
        assert_eq!(reg.class(m.fetcher_copy), OpClass::Io);
        assert_eq!(reg.class(m.yarn_child_main), OpClass::Framework);
    }

    #[test]
    fn map_and_reduce_bases_differ_below_main() {
        let mut reg = MethodRegistry::new();
        let m = HadoopMethods::intern(&mut reg);
        assert_eq!(m.map_base()[0], m.reduce_base()[0]);
        assert_ne!(m.map_base()[1], m.reduce_base()[1]);
    }

    #[test]
    fn shares_hdfs_methods_with_spark_names() {
        let mut reg = MethodRegistry::new();
        let h = HadoopMethods::intern(&mut reg);
        let before = reg.len();
        let s = crate::spark::SparkMethods::intern(&mut reg);
        // The DFS read/write methods are the same class in both frameworks.
        assert_eq!(h.dfs_read, s.dfs_read);
        assert_eq!(h.dfs_write, s.dfs_write);
        assert!(reg.len() > before);
    }
}
