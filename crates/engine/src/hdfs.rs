//! Block-granularity HDFS cost model.
//!
//! The paper's workloads read inputs from and write outputs to HDFS, and the
//! IO phases it reports (Fig. 10) come from exactly these operations plus
//! local spill traffic. Only the *cost* behaviour matters to phase formation,
//! so the model is a latency function: per-block seek plus per-byte streaming
//! cost, with separate read/write/local-spill rates.

use serde::{Deserialize, Serialize};

/// HDFS / local-disk latency model. All rates are in cycles; defaults model
/// a ~100 MB/s disk behind a ~3.7 GHz core with OS read-ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hdfs {
    /// Block size in bytes (HDFS default is 128 MiB; scaled runs shrink it).
    pub block_bytes: u64,
    /// Fixed cycles per block operation (metadata, seek, RPC).
    pub seek_cycles: u64,
    /// Milli-cycles per byte read (e.g. `2000` = 2 cycles/byte).
    pub read_mcycles_per_byte: u64,
    /// Milli-cycles per byte written (replication makes writes dearer).
    pub write_mcycles_per_byte: u64,
    /// Milli-cycles per byte for local spill traffic (page-cache backed).
    pub spill_mcycles_per_byte: u64,
}

impl Default for Hdfs {
    fn default() -> Self {
        Self {
            block_bytes: 1 << 20,
            seek_cycles: 10_000,
            read_mcycles_per_byte: 150,
            write_mcycles_per_byte: 350,
            spill_mcycles_per_byte: 80,
        }
    }
}

impl Hdfs {
    /// Stall cycles to read `bytes` from HDFS. Saturates at `u64::MAX`
    /// instead of overflowing for pathological byte counts or rates.
    pub fn read_stall(&self, bytes: u64) -> u64 {
        self.blocks(bytes)
            .saturating_mul(self.seek_cycles)
            .saturating_add(stream_cycles(bytes, self.read_mcycles_per_byte))
    }

    /// Stall cycles to write `bytes` to HDFS (includes replication cost).
    /// Saturates at `u64::MAX` instead of overflowing.
    pub fn write_stall(&self, bytes: u64) -> u64 {
        self.blocks(bytes)
            .saturating_mul(self.seek_cycles)
            .saturating_add(stream_cycles(bytes, self.write_mcycles_per_byte))
    }

    /// Stall cycles to spill `bytes` to local disk. Saturates at `u64::MAX`
    /// instead of overflowing.
    pub fn spill_stall(&self, bytes: u64) -> u64 {
        (self.seek_cycles / 4).saturating_add(stream_cycles(bytes, self.spill_mcycles_per_byte))
    }

    /// Number of block operations `bytes` requires (at least 1). A zero
    /// `block_bytes` is treated as one byte per block rather than dividing
    /// by zero.
    pub fn blocks(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_bytes.max(1)).max(1)
    }
}

/// Streaming cost of `bytes` at `mcycles_per_byte`, widened through `u128`
/// so the product cannot overflow, then saturated back into `u64`.
fn stream_cycles(bytes: u64, mcycles_per_byte: u64) -> u64 {
    u64::try_from(bytes as u128 * mcycles_per_byte as u128 / 1000).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_scales_with_bytes_and_blocks() {
        let h = Hdfs::default();
        let one = h.read_stall(1 << 20);
        let two = h.read_stall(2 << 20);
        assert!(two > one);
        assert_eq!(h.blocks(1), 1);
        assert_eq!(h.blocks((1 << 20) + 1), 2);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let h = Hdfs::default();
        assert!(h.write_stall(1 << 20) > h.read_stall(1 << 20));
    }

    #[test]
    fn spill_is_cheapest() {
        let h = Hdfs::default();
        assert!(h.spill_stall(1 << 20) < h.read_stall(1 << 20));
    }

    #[test]
    fn zero_bytes_still_costs_a_seek() {
        let h = Hdfs::default();
        assert_eq!(h.read_stall(0), h.seek_cycles);
    }

    #[test]
    fn extreme_inputs_saturate_instead_of_overflowing() {
        let h = Hdfs::default();
        // u64::MAX bytes overflows both the block×seek and byte×rate products
        // under plain arithmetic; every stall must saturate, not wrap.
        // Default rates shrink below u64::MAX after the ÷1000, so the
        // widened path stays exact: blocks×seek plus bytes×rate/1000.
        let exact = |rate: u64| {
            h.blocks(u64::MAX) * h.seek_cycles + (u64::MAX as u128 * rate as u128 / 1000) as u64
        };
        assert_eq!(h.read_stall(u64::MAX), exact(h.read_mcycles_per_byte));
        assert_eq!(h.write_stall(u64::MAX), exact(h.write_mcycles_per_byte));
        assert_eq!(
            h.spill_stall(u64::MAX),
            h.seek_cycles / 4 + (u64::MAX as u128 * h.spill_mcycles_per_byte as u128 / 1000) as u64
        );
        let hostile = Hdfs {
            block_bytes: 0, // would divide by zero unguarded
            seek_cycles: u64::MAX,
            read_mcycles_per_byte: u64::MAX,
            write_mcycles_per_byte: u64::MAX,
            spill_mcycles_per_byte: u64::MAX,
        };
        assert_eq!(hostile.blocks(7), 7);
        assert_eq!(hostile.read_stall(u64::MAX), u64::MAX);
        assert_eq!(hostile.spill_stall(u64::MAX), u64::MAX);
    }
}
