//! The whole modelled machine: per-core private caches and counters, one
//! shared LLC, a cost model, and a bump allocator for the simulated address
//! space.

use serde::{Deserialize, Serialize};

use crate::access::Region;
use crate::cache::{Cache, CacheConfig};
use crate::cost::CostModel;
use crate::counters::Counters;
use crate::hierarchy::{AccessOutcome, PrivateCaches, PrivateOutcome};
use crate::LINE_BYTES;

/// Index of a hardware core (one executor thread is pinned per core in the
/// engine's scheduler).
pub type CoreId = usize;

/// Machine geometry + cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores (= concurrently executing executor threads).
    pub cores: usize,
    /// L1D geometry per core.
    pub l1: CacheConfig,
    /// L2 geometry per core.
    pub l2: CacheConfig,
    /// Shared LLC geometry (one instance per LLC domain).
    pub llc: CacheConfig,
    /// Cores per LLC domain. `0` means all cores share one LLC (a single
    /// socket); a cluster of N nodes × C cores is modelled as
    /// `cores = N*C, cores_per_llc = C` — cores only contend within their
    /// own node's LLC.
    pub cores_per_llc: usize,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl MachineConfig {
    /// An i7-4820K-like machine: 4 cores, 32 KiB/8-way L1D, 256 KiB/8-way L2,
    /// 10 MiB/20-way shared LLC.
    pub fn ivy_bridge(cores: usize) -> Self {
        Self {
            cores,
            l1: CacheConfig::new(32 * 1024, 8),
            l2: CacheConfig::new(256 * 1024, 8),
            llc: CacheConfig::new(10 * 1024 * 1280, 20),
            cores_per_llc: 0,
            cost: CostModel::default(),
        }
    }

    /// A scaled-down machine for the scaled-down workloads used in tests and
    /// benches: cache capacities shrink with the data so that working-set
    /// effects (fits-in-L2, fits-in-LLC, misses-everything) still appear.
    pub fn scaled(cores: usize) -> Self {
        Self {
            cores,
            l1: CacheConfig::new(8 * 1024, 8),
            l2: CacheConfig::new(64 * 1024, 8),
            llc: CacheConfig::new(512 * 1024, 16),
            cores_per_llc: 0,
            cost: CostModel::default(),
        }
    }

    /// A scaled multi-node cluster: `nodes × cores_per_node` cores, one LLC
    /// domain per node.
    pub fn scaled_cluster(nodes: usize, cores_per_node: usize) -> Self {
        let mut cfg = Self::scaled(nodes * cores_per_node);
        cfg.cores_per_llc = cores_per_node;
        cfg
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::ivy_bridge(4)
    }
}

/// The machine model. See the crate docs for the role it plays.
///
/// # Examples
///
/// ```
/// use simprof_sim::{AccessCursor, AccessPattern, Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::scaled(1));
/// let region = machine.alloc(64 * 1024);
/// let mut cursor = AccessCursor::new(region, AccessPattern::Sequential, 7);
/// for _ in 0..10_000 {
///     machine.charge_instrs(0, 10);
///     machine.access(0, cursor.next_addr());
/// }
/// let counters = machine.counters(0);
/// assert_eq!(counters.instructions, 100_000);
/// assert!(counters.cpi() > 0.5, "memory stalls on top of base CPI");
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    cores: Vec<CoreState>,
    llcs: Vec<Cache>,
    cores_per_llc: usize,
    next_addr: u64,
}

#[derive(Debug, Clone)]
struct CoreState {
    caches: PrivateCaches,
    counters: Counters,
}

impl Machine {
    /// Builds a cold machine.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.cores > 0, "machine needs at least one core");
        let cores = (0..config.cores)
            .map(|_| CoreState {
                caches: PrivateCaches::new(config.l1, config.l2),
                counters: Counters::default(),
            })
            .collect();
        let cores_per_llc =
            if config.cores_per_llc == 0 { config.cores } else { config.cores_per_llc };
        let domains = config.cores.div_ceil(cores_per_llc);
        let llcs = (0..domains).map(|_| Cache::new(config.llc)).collect();
        // Start the heap away from 0 so "null" never aliases data.
        Self { config, cores, llcs, cores_per_llc, next_addr: 0x1_0000 }
    }

    /// Number of LLC domains (nodes in a cluster configuration).
    pub fn llc_domains(&self) -> usize {
        self.llcs.len()
    }

    /// The LLC domain (node) a core belongs to.
    pub fn domain_of(&self, core: CoreId) -> usize {
        core / self.cores_per_llc
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Allocates a line-aligned region of the simulated address space.
    /// Regions are never freed — the model tracks addresses, not data, and
    /// job footprints are bounded.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let base = self.next_addr;
        let aligned = bytes.div_ceil(LINE_BYTES) * LINE_BYTES;
        self.next_addr += aligned.max(LINE_BYTES);
        Region::new(base, bytes)
    }

    /// Retires `n` instructions on `core`, charging base cycles.
    #[inline]
    pub fn charge_instrs(&mut self, core: CoreId, n: u64) {
        let c = &mut self.cores[core];
        c.counters.instructions += n;
        c.counters.cycles += self.config.cost.base_cycles(n);
    }

    /// Issues one memory access on `core`, walking the hierarchy, charging
    /// penalty cycles and counting misses. Latency-bound (non-streaming).
    #[inline]
    pub fn access(&mut self, core: CoreId, addr: u64) -> AccessOutcome {
        self.access_hinted(core, addr, false)
    }

    /// Issues one memory access; with `streaming = true`, miss penalties
    /// are reduced by the prefetch divisor (the scheduler passes `true` for
    /// sequential / short-stride work items).
    #[inline]
    pub fn access_hinted(&mut self, core: CoreId, addr: u64, streaming: bool) -> AccessOutcome {
        let domain = core / self.cores_per_llc;
        let c = &mut self.cores[core];
        let outcome = c.caches.access(&mut self.llcs[domain], addr);
        c.counters.accesses += 1;
        match outcome {
            AccessOutcome::L1Hit => {}
            AccessOutcome::L2Hit => c.counters.l1_misses += 1,
            AccessOutcome::LlcHit => {
                c.counters.l1_misses += 1;
                c.counters.l2_misses += 1;
            }
            AccessOutcome::Memory => {
                c.counters.l1_misses += 1;
                c.counters.l2_misses += 1;
                c.counters.llc_misses += 1;
            }
        }
        c.counters.cycles += if streaming {
            self.config.cost.access_cycles_streaming(outcome)
        } else {
            self.config.cost.access_cycles(outcome)
        };
        outcome
    }

    /// Charges an IO stall (disk/HDFS/network wait) on `core`.
    #[inline]
    pub fn io_stall(&mut self, core: CoreId, cycles: u64) {
        let c = &mut self.cores[core];
        c.counters.cycles += cycles;
        c.counters.io_stall_cycles += cycles;
    }

    /// Reads `core`'s counters (a copy; the live counters keep advancing).
    pub fn counters(&self, core: CoreId) -> Counters {
        self.cores[core].counters
    }

    /// Flushes a fraction of `core`'s private caches (OS-migration model).
    pub fn flush_core_fraction(&mut self, core: CoreId, fraction: f64, seed: u64) {
        self.cores[core].caches.flush_fraction(fraction, seed);
    }

    /// Evicts a deterministic fraction of one core's LLC domain only (a
    /// node-local cold start).
    pub fn flush_domain_llc(&mut self, core: CoreId, fraction: f64, seed: u64) {
        let domain = core / self.cores_per_llc;
        self.llcs[domain].flush_fraction(fraction, seed);
    }

    /// Evicts a deterministic fraction of every LLC domain (models other
    /// processes / co-runners trashing the LLC).
    pub fn flush_llc_fraction(&mut self, fraction: f64, seed: u64) {
        for (i, llc) in self.llcs.iter_mut().enumerate() {
            llc.flush_fraction(fraction, seed.wrapping_add(i as u64));
        }
    }

    /// Detaches every core's private caches into standalone [`CoreSim`]
    /// handles (one per core, in core order) so per-core simulation can run
    /// concurrently without any lock on the access loop. The machine keeps
    /// cold placeholder caches until [`Machine::attach_core_sims`] puts the
    /// real ones back; the shared LLC never leaves the machine.
    pub fn detach_core_sims(&mut self) -> Vec<CoreSim> {
        let cost = self.config.cost;
        self.cores
            .iter_mut()
            .map(|c| CoreSim {
                caches: std::mem::replace(
                    &mut c.caches,
                    PrivateCaches::new(self.config.l1, self.config.l2),
                ),
                cost,
            })
            .collect()
    }

    /// Reattaches the private caches detached by [`Machine::detach_core_sims`]
    /// (same order).
    ///
    /// # Panics
    ///
    /// Panics if the number of handles does not match the core count.
    pub fn attach_core_sims(&mut self, sims: Vec<CoreSim>) {
        assert_eq!(sims.len(), self.cores.len(), "core sim count mismatch");
        for (c, sim) in self.cores.iter_mut().zip(sims) {
            c.caches = sim.caches;
        }
    }

    /// Resolves the LLC half of a split access recorded by
    /// [`CoreSim::access_private`]: touches the shared LLC in call order and
    /// charges the outcome's penalty cycles and (on DRAM) the LLC miss onto
    /// `core`'s live counters. Together with the private half this charges
    /// exactly what [`Machine::access_hinted`] would have.
    #[inline]
    pub fn resolve_llc(&mut self, core: CoreId, addr: u64, streaming: bool) -> AccessOutcome {
        let domain = core / self.cores_per_llc;
        let outcome = if self.llcs[domain].access(addr) {
            AccessOutcome::LlcHit
        } else {
            AccessOutcome::Memory
        };
        let c = &mut self.cores[core];
        if outcome == AccessOutcome::Memory {
            c.counters.llc_misses += 1;
        }
        c.counters.cycles += if streaming {
            self.config.cost.access_cycles_streaming(outcome)
        } else {
            self.config.cost.access_cycles(outcome)
        };
        outcome
    }

    /// Folds a detached simulation's counter delta into `core`'s live
    /// counters. All counter fields are plain sums, so applying deltas in
    /// slot order reproduces the serial counter stream bit for bit.
    #[inline]
    pub fn apply_delta(&mut self, core: CoreId, delta: Counters) {
        self.cores[core].counters += delta;
    }
}

/// A detached view of one core for the engine's parallel simulation phase:
/// it owns the core's private caches (moved out of the [`Machine`] by
/// [`Machine::detach_core_sims`]) plus a copy of the cost model, and charges
/// every cost into a caller-owned [`Counters`] delta instead of the live
/// machine counters.
///
/// The split keeps the parallel phase exact: private-cache state and the
/// addresses that reach the LLC depend only on this core's access stream
/// (the LLC outcome never feeds back into L1/L2 —
/// [`PrivateCaches::access_private`]), so concurrent per-core walks plus an
/// in-order replay of the LLC requests ([`Machine::resolve_llc`]) and delta
/// application ([`Machine::apply_delta`]) reproduce the serial simulation bit
/// for bit.
#[derive(Debug)]
pub struct CoreSim {
    caches: PrivateCaches,
    cost: CostModel,
}

impl CoreSim {
    /// Retires `n` instructions, charging base cycles into `delta`. Same
    /// per-call rounding as [`Machine::charge_instrs`], so call boundaries
    /// must mirror the serial path.
    #[inline]
    pub fn charge_instrs(&self, delta: &mut Counters, n: u64) {
        delta.instructions += n;
        delta.cycles += self.cost.base_cycles(n);
    }

    /// Charges an IO stall into `delta` (mirror of [`Machine::io_stall`]).
    #[inline]
    pub fn io_stall(&self, delta: &mut Counters, cycles: u64) {
        delta.cycles += cycles;
        delta.io_stall_cycles += cycles;
    }

    /// The private half of one memory access: walks L1 → L2, charging the
    /// access, private miss counters, and (on an L2 hit) the hit penalty
    /// into `delta`. Returns `true` when the access missed both private
    /// levels and must be replayed against the shared LLC with
    /// [`Machine::resolve_llc`] — which charges the remaining outcome
    /// penalty — at its deterministic position in the merge order.
    #[inline]
    pub fn access_private(&mut self, delta: &mut Counters, addr: u64, streaming: bool) -> bool {
        delta.accesses += 1;
        match self.caches.access_private(addr) {
            PrivateOutcome::L1Hit => false,
            PrivateOutcome::L2Hit => {
                delta.l1_misses += 1;
                delta.cycles += if streaming {
                    self.cost.access_cycles_streaming(AccessOutcome::L2Hit)
                } else {
                    self.cost.access_cycles(AccessOutcome::L2Hit)
                };
                false
            }
            PrivateOutcome::NeedsLlc => {
                delta.l1_misses += 1;
                delta.l2_misses += 1;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessCursor, AccessPattern};

    fn machine() -> Machine {
        Machine::new(MachineConfig::scaled(2))
    }

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = machine();
        let a = m.alloc(100);
        let b = m.alloc(1);
        let c = m.alloc(0);
        assert_eq!(a.base % LINE_BYTES, 0);
        assert!(b.base >= a.base + 128, "100 B rounds to 2 lines");
        assert!(c.base > b.base);
    }

    #[test]
    fn charge_instrs_accumulates() {
        let mut m = machine();
        m.charge_instrs(0, 1000);
        m.charge_instrs(0, 1000);
        let c = m.counters(0);
        assert_eq!(c.instructions, 2000);
        assert_eq!(c.cycles, 1000); // base CPI 0.5
        assert_eq!(m.counters(1).instructions, 0, "cores are independent");
    }

    #[test]
    fn sequential_small_region_is_cheap() {
        // A 4 KiB region streamed repeatedly: after warmup, all L1 hits, so
        // CPI approaches base CPI.
        let mut m = machine();
        let r = m.alloc(4096);
        let mut cur = AccessCursor::new(r, AccessPattern::Sequential, 0);
        for _ in 0..100_000 {
            m.charge_instrs(0, 4);
            m.access(0, cur.next_addr());
        }
        let c = m.counters(0);
        assert!(c.cpi() < 0.7, "cpi {}", c.cpi());
    }

    #[test]
    fn random_large_region_is_expensive() {
        // Random accesses over 4 MiB (beyond the 512 KiB scaled LLC): high
        // miss rate, CPI far above base.
        let mut m = machine();
        let r = m.alloc(4 << 20);
        let mut cur = AccessCursor::new(r, AccessPattern::Random, 7);
        for _ in 0..10_000 {
            m.charge_instrs(0, 4);
            m.access(0, cur.next_addr());
        }
        let c = m.counters(0);
        assert!(c.cpi() > 5.0, "cpi {}", c.cpi());
        assert!(c.llc_misses > 1000, "llc misses {}", c.llc_misses);
    }

    #[test]
    fn io_stall_counts_cycles() {
        let mut m = machine();
        m.charge_instrs(0, 100);
        m.io_stall(0, 10_000);
        let c = m.counters(0);
        assert_eq!(c.io_stall_cycles, 10_000);
        assert!(c.cycles >= 10_000);
    }

    #[test]
    fn llc_contention_across_cores() {
        // Core 1 trashing the LLC raises core 0's miss rate on re-access.
        let mut m = machine();
        let r0 = m.alloc(256 * 1024);
        let mut cur0 = AccessCursor::new(r0, AccessPattern::Sequential, 0);
        // Core 0 warms its data into the hierarchy.
        for _ in 0..8192 {
            m.access(0, cur0.next_addr());
        }
        let warm_misses = m.counters(0).llc_misses;
        // Core 1 streams a huge region through the shared LLC.
        let r1 = m.alloc(8 << 20);
        let mut cur1 = AccessCursor::new(r1, AccessPattern::Sequential, 0);
        for _ in 0..200_000 {
            m.access(1, cur1.next_addr());
        }
        // Core 0's private caches are untouched but its LLC lines are gone —
        // flush private caches to expose LLC state, then re-walk.
        m.flush_core_fraction(0, 1.0, 1);
        let before = m.counters(0).llc_misses;
        let mut cur0b = AccessCursor::new(r0, AccessPattern::Sequential, 0);
        for _ in 0..4096 {
            m.access(0, cur0b.next_addr());
        }
        let after = m.counters(0).llc_misses;
        assert!(after - before > warm_misses / 2, "contention should evict core 0's LLC lines");
    }

    #[test]
    fn migration_flush_raises_cpi_transiently() {
        let mut m = machine();
        let r = m.alloc(8192);
        let mut cur = AccessCursor::new(r, AccessPattern::Sequential, 0);
        for _ in 0..4096 {
            m.access(0, cur.next_addr());
        }
        let c1 = m.counters(0);
        m.flush_core_fraction(0, 1.0, 9);
        let mut cur2 = AccessCursor::new(r, AccessPattern::Sequential, 0);
        for _ in 0..128 {
            m.access(0, cur2.next_addr());
        }
        let c2 = m.counters(0) - c1;
        assert!(c2.l1_misses > 100, "cold after migration: {}", c2.l1_misses);
    }

    #[test]
    fn llc_domains_isolate_nodes() {
        // 2 nodes × 1 core: node 1's streaming must NOT evict node 0's LLC
        // lines (separate domains), unlike the single-socket case.
        let mut m = Machine::new(MachineConfig::scaled_cluster(2, 1));
        assert_eq!(m.llc_domains(), 2);
        assert_eq!(m.domain_of(0), 0);
        assert_eq!(m.domain_of(1), 1);
        let r0 = m.alloc(128 * 1024);
        let mut cur0 = AccessCursor::new(r0, AccessPattern::Sequential, 0);
        for _ in 0..4096 {
            m.access(0, cur0.next_addr());
        }
        // Node 1 streams a huge region — through ITS OWN LLC.
        let r1 = m.alloc(8 << 20);
        let mut cur1 = AccessCursor::new(r1, AccessPattern::Sequential, 0);
        for _ in 0..200_000 {
            m.access(1, cur1.next_addr());
        }
        // Node 0's LLC still holds its lines: flush private caches and
        // re-walk; everything should hit the LLC, not DRAM.
        m.flush_core_fraction(0, 1.0, 1);
        let before = m.counters(0).llc_misses;
        let mut cur0b = AccessCursor::new(r0, AccessPattern::Sequential, 0);
        for _ in 0..2048 {
            m.access(0, cur0b.next_addr());
        }
        let new_misses = m.counters(0).llc_misses - before;
        assert!(new_misses < 64, "node 0's LLC must be untouched: {new_misses} misses");
    }

    #[test]
    fn default_single_domain() {
        let m = Machine::new(MachineConfig::scaled(4));
        assert_eq!(m.llc_domains(), 1);
        assert_eq!(m.domain_of(3), 0);
    }

    #[test]
    fn split_walk_matches_serial_walk_exactly() {
        // The same interleaved two-core access stream, once through the
        // serial walk and once through detach → private walks → in-order LLC
        // replay → delta application: counters and subsequent behaviour must
        // be identical in every field.
        let stream = |m: &mut Machine| {
            let r_small = m.alloc(16 * 1024);
            let r_big = m.alloc(4 << 20);
            (
                AccessCursor::new(r_small, AccessPattern::Sequential, 3),
                AccessCursor::new(r_big, AccessPattern::Random, 5),
            )
        };

        let mut serial = machine();
        let (mut s0, mut s1) = stream(&mut serial);
        for i in 0..20_000 {
            serial.charge_instrs(0, 7);
            serial.access_hinted(0, s0.next_addr(), true);
            serial.charge_instrs(1, 7);
            serial.access_hinted(1, s1.next_addr(), false);
            if i % 1000 == 0 {
                serial.io_stall(0, 50);
            }
        }

        let mut split = machine();
        let (mut p0, mut p1) = stream(&mut split);
        let mut sims = split.detach_core_sims();
        let mut deltas = [Counters::default(), Counters::default()];
        // (core, addr, streaming) requests, recorded in serial order.
        let mut llc_requests: Vec<(CoreId, u64, bool)> = Vec::new();
        for i in 0..20_000 {
            let a0 = p0.next_addr();
            sims[0].charge_instrs(&mut deltas[0], 7);
            if sims[0].access_private(&mut deltas[0], a0, true) {
                llc_requests.push((0, a0, true));
            }
            let a1 = p1.next_addr();
            sims[1].charge_instrs(&mut deltas[1], 7);
            if sims[1].access_private(&mut deltas[1], a1, false) {
                llc_requests.push((1, a1, false));
            }
            if i % 1000 == 0 {
                sims[0].io_stall(&mut deltas[0], 50);
            }
        }
        split.attach_core_sims(sims);
        for (core, delta) in deltas.into_iter().enumerate() {
            split.apply_delta(core, delta);
        }
        for (core, addr, streaming) in llc_requests {
            split.resolve_llc(core, addr, streaming);
        }

        assert_eq!(serial.counters(0), split.counters(0));
        assert_eq!(serial.counters(1), split.counters(1));
        // Cache state must agree too: the next accesses behave identically.
        let mut check_serial =
            AccessCursor::new(Region::new(0x1_0000, 16 * 1024), AccessPattern::Sequential, 3);
        let mut check_split =
            AccessCursor::new(Region::new(0x1_0000, 16 * 1024), AccessPattern::Sequential, 3);
        for _ in 0..512 {
            let a = serial.access(0, check_serial.next_addr());
            let b = split.access(0, check_split.next_addr());
            assert_eq!(a, b);
        }
        assert_eq!(serial.counters(0), split.counters(0));
    }

    #[test]
    #[should_panic(expected = "core sim count mismatch")]
    fn attach_rejects_wrong_count() {
        let mut m = machine();
        let sims = m.detach_core_sims();
        let mut other = Machine::new(MachineConfig::scaled(3));
        other.attach_core_sims(sims);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let mut cfg = MachineConfig::scaled(1);
        cfg.cores = 0;
        let _ = Machine::new(cfg);
    }
}
