//! The private-cache walk: L1D → L2 → (shared) LLC.
//!
//! One [`PrivateCaches`] instance exists per core; the LLC is owned by the
//! [`crate::machine::Machine`] and shared across cores, which is how phase
//! interleaving between executor threads perturbs each other's performance
//! (one of the paper's four sources of intra-phase heterogeneity, §III-B-1).

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig};

/// Which level served a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// Served by the L1 data cache.
    L1Hit,
    /// Missed L1, hit L2.
    L2Hit,
    /// Missed L1+L2, hit the shared LLC.
    LlcHit,
    /// Missed the whole hierarchy; DRAM access.
    Memory,
}

/// Outcome of the private half of a split access walk
/// ([`PrivateCaches::access_private`]): either the access was served by a
/// private level, or it must still be resolved against the shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateOutcome {
    /// Served by the L1 data cache.
    L1Hit,
    /// Missed L1, hit L2.
    L2Hit,
    /// Missed both private levels; the LLC decides hit vs DRAM.
    NeedsLlc,
}

/// One core's private L1D and L2.
#[derive(Debug, Clone)]
pub struct PrivateCaches {
    /// L1 data cache.
    pub l1: Cache,
    /// Unified L2.
    pub l2: Cache,
}

impl PrivateCaches {
    /// Builds empty private caches with the given geometries.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        Self { l1: Cache::new(l1), l2: Cache::new(l2) }
    }

    /// Walks one address through L1 → L2 → `llc` and reports the serving
    /// level. All levels allocate on miss (inclusive-ish fill policy).
    pub fn access(&mut self, llc: &mut Cache, addr: u64) -> AccessOutcome {
        match self.access_private(addr) {
            PrivateOutcome::L1Hit => AccessOutcome::L1Hit,
            PrivateOutcome::L2Hit => AccessOutcome::L2Hit,
            PrivateOutcome::NeedsLlc => {
                if llc.access(addr) {
                    AccessOutcome::LlcHit
                } else {
                    AccessOutcome::Memory
                }
            }
        }
    }

    /// The private (L1 → L2) half of a split access walk.
    ///
    /// Both private levels allocate on miss *before* the LLC is consulted,
    /// so private-cache state after this call is exactly what the combined
    /// [`PrivateCaches::access`] would leave — the LLC outcome never feeds
    /// back into L1/L2. This is the decomposition the engine's parallel
    /// simulation relies on: private walks run concurrently per core, and
    /// every [`PrivateOutcome::NeedsLlc`] is replayed against the shared LLC
    /// later in deterministic order.
    #[inline]
    pub fn access_private(&mut self, addr: u64) -> PrivateOutcome {
        if self.l1.access(addr) {
            return PrivateOutcome::L1Hit;
        }
        if self.l2.access(addr) {
            return PrivateOutcome::L2Hit;
        }
        PrivateOutcome::NeedsLlc
    }

    /// Flushes a fraction of both private levels (OS-migration model).
    pub fn flush_fraction(&mut self, fraction: f64, seed: u64) {
        self.l1.flush_fraction(fraction, seed);
        self.l2.flush_fraction(fraction, seed ^ 0xA5A5_A5A5);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PrivateCaches, Cache) {
        let pc = PrivateCaches::new(CacheConfig::new(1024, 2), CacheConfig::new(4096, 4));
        let llc = Cache::new(CacheConfig::new(16 * 1024, 8));
        (pc, llc)
    }

    #[test]
    fn first_touch_goes_to_memory() {
        let (mut pc, mut llc) = setup();
        assert_eq!(pc.access(&mut llc, 0), AccessOutcome::Memory);
        assert_eq!(pc.access(&mut llc, 0), AccessOutcome::L1Hit);
    }

    #[test]
    fn l2_serves_l1_evictions() {
        let (mut pc, mut llc) = setup();
        // Fill far beyond L1 (1 KiB = 16 lines) but within L2 (4 KiB = 64 lines).
        for i in 0..64u64 {
            pc.access(&mut llc, i * 64);
        }
        // Line 0 evicted from L1 but resident in L2.
        assert_eq!(pc.access(&mut llc, 0), AccessOutcome::L2Hit);
    }

    #[test]
    fn llc_serves_l2_evictions() {
        let (mut pc, mut llc) = setup();
        // Beyond L2 (64 lines) but within LLC (256 lines).
        for i in 0..256u64 {
            pc.access(&mut llc, i * 64);
        }
        assert_eq!(pc.access(&mut llc, 0), AccessOutcome::LlcHit);
    }

    #[test]
    fn llc_shared_across_cores() {
        let (mut a, mut llc) = setup();
        let mut b = PrivateCaches::new(CacheConfig::new(1024, 2), CacheConfig::new(4096, 4));
        // Core A faults line 0 into the LLC.
        a.access(&mut llc, 0);
        // Core B misses privately but hits the shared LLC.
        assert_eq!(b.access(&mut llc, 0), AccessOutcome::LlcHit);
    }

    #[test]
    fn flush_fraction_degrades_hits() {
        let (mut pc, mut llc) = setup();
        for i in 0..16u64 {
            pc.access(&mut llc, i * 64);
        }
        pc.flush_fraction(1.0, 3);
        // L1 and L2 cold again; LLC still warm.
        assert_eq!(pc.access(&mut llc, 0), AccessOutcome::LlcHit);
    }
}
