//! Hardware-counter state.
//!
//! The analog of the paper's `perf_event` collector state: monotonically
//! increasing per-thread counts of instructions, cycles, cache misses at each
//! level, and IO stall cycles. The profiler reads *deltas* between sampling
//! unit boundaries.

use serde::{Deserialize, Serialize};
use std::ops::{AddAssign, Sub};

/// A snapshot of one hardware-thread's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles (including stalls).
    pub cycles: u64,
    /// Memory accesses issued.
    pub accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Last-level-cache misses (DRAM accesses).
    pub llc_misses: u64,
    /// Cycles stalled on (simulated) disk/network IO.
    pub io_stall_cycles: u64,
}

impl Counters {
    /// Cycles per instruction; `0` when no instructions retired.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Instructions per cycle; `0` when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per thousand instructions (MPKI); `0` without instructions.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L1 miss rate over issued accesses; `0` without accesses.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }
}

impl AddAssign for Counters {
    /// Field-wise accumulation, used to fold a detached simulation's delta
    /// (`CoreSim`) back into the live counters. All fields are `u64` sums, so
    /// accumulation order never changes the result.
    fn add_assign(&mut self, rhs: Counters) {
        self.instructions += rhs.instructions;
        self.cycles += rhs.cycles;
        self.accesses += rhs.accesses;
        self.l1_misses += rhs.l1_misses;
        self.l2_misses += rhs.l2_misses;
        self.llc_misses += rhs.llc_misses;
        self.io_stall_cycles += rhs.io_stall_cycles;
    }
}

impl Sub for Counters {
    type Output = Counters;

    /// Delta between two snapshots (`later - earlier`). Saturates rather than
    /// panicking so a torn read can never poison a whole profile.
    fn sub(self, rhs: Counters) -> Counters {
        Counters {
            instructions: self.instructions.saturating_sub(rhs.instructions),
            cycles: self.cycles.saturating_sub(rhs.cycles),
            accesses: self.accesses.saturating_sub(rhs.accesses),
            l1_misses: self.l1_misses.saturating_sub(rhs.l1_misses),
            l2_misses: self.l2_misses.saturating_sub(rhs.l2_misses),
            llc_misses: self.llc_misses.saturating_sub(rhs.llc_misses),
            io_stall_cycles: self.io_stall_cycles.saturating_sub(rhs.io_stall_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_ipc_inverse() {
        let c = Counters { instructions: 100, cycles: 250, ..Default::default() };
        assert_eq!(c.cpi(), 2.5);
        assert_eq!(c.ipc(), 0.4);
    }

    #[test]
    fn zero_guards() {
        let c = Counters::default();
        assert_eq!(c.cpi(), 0.0);
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.llc_mpki(), 0.0);
        assert_eq!(c.l1_miss_rate(), 0.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = Counters {
            instructions: 10,
            cycles: 20,
            accesses: 5,
            l1_misses: 2,
            l2_misses: 1,
            llc_misses: 1,
            io_stall_cycles: 3,
        };
        let b = Counters {
            instructions: 25,
            cycles: 60,
            accesses: 12,
            l1_misses: 6,
            l2_misses: 2,
            llc_misses: 1,
            io_stall_cycles: 10,
        };
        let d = b - a;
        assert_eq!(d.instructions, 15);
        assert_eq!(d.cycles, 40);
        assert_eq!(d.accesses, 7);
        assert_eq!(d.l1_misses, 4);
        assert_eq!(d.l2_misses, 1);
        assert_eq!(d.llc_misses, 0);
        assert_eq!(d.io_stall_cycles, 7);
    }

    #[test]
    fn delta_saturates() {
        let a = Counters { instructions: 10, ..Default::default() };
        let d = Counters::default() - a;
        assert_eq!(d.instructions, 0);
    }

    #[test]
    fn mpki() {
        let c = Counters { instructions: 2000, llc_misses: 6, ..Default::default() };
        assert_eq!(c.llc_mpki(), 3.0);
    }
}
