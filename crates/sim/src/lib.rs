//! Machine-model substrate for SimProf.
//!
//! The paper profiles jobs natively on an Intel i7-4820K and reads hardware
//! counters through `perf_event`. This crate is the substitution for that
//! hardware: a deterministic machine model that executes *cost descriptions*
//! emitted by the execution engine and exposes the same counters the paper
//! consumes (instructions, cycles, cache misses → CPI/IPC).
//!
//! The model is deliberately simple but mechanistic: every phenomenon the
//! paper attributes to the memory system (quicksort partitions that fit or
//! miss in cache, random-access reduce operations, streaming map operations,
//! IO stalls) arises here from an actual set-associative LRU cache hierarchy
//! walked address by address — not from hard-coded CPI values.
//!
//! * [`cache`] — one set-associative LRU cache level.
//! * [`hierarchy`] — the L1D → L2 → LLC walk with per-level miss counting.
//! * [`cost`] — the cycle cost model (base CPI + per-level miss penalties).
//! * [`access`] — resumable deterministic address-pattern generators.
//! * [`counters`] — per-thread hardware-counter state and deltas.
//! * [`machine`] — the whole machine: per-core private caches, shared LLC,
//!   per-core counters, address-space allocation.
//! * [`perturb`] — OS-noise models (thread migration flushes, LLC contention).

pub mod access;
pub mod cache;
pub mod cost;
pub mod counters;
pub mod hierarchy;
pub mod machine;
pub mod perturb;

pub use access::{AccessCursor, AccessPattern, Region};
pub use cache::{Cache, CacheConfig};
pub use cost::CostModel;
pub use counters::Counters;
pub use hierarchy::{AccessOutcome, PrivateOutcome};
pub use machine::{CoreId, CoreSim, Machine, MachineConfig};
pub use perturb::Perturbations;

/// Cache-line size in bytes used across the model (64 B, as on the i7-4820K).
pub const LINE_BYTES: u64 = 64;
