//! Deterministic, resumable address-pattern generators.
//!
//! The execution engine describes *what* a piece of work touches (its region
//! and pattern); the machine walks the resulting addresses through the cache
//! hierarchy. Cursors are resumable because the scheduler executes work items
//! in quanta — a pattern must continue where it stopped when its thread is
//! scheduled again.

use serde::{Deserialize, Serialize};

use crate::LINE_BYTES;

/// A contiguous address region owned by some data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Base address (line-aligned by the allocator).
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
}

impl Region {
    /// Creates a region. Zero-sized regions are legal (they generate the base
    /// address only).
    pub fn new(base: u64, bytes: u64) -> Self {
        Self { base, bytes }
    }

    /// Number of cache lines the region spans (at least 1).
    pub fn lines(&self) -> u64 {
        (self.bytes / LINE_BYTES).max(1)
    }
}

/// How a work item walks its region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Stream sequentially through the region, wrapping around — scans,
    /// tokenization, buffered writes.
    Sequential,
    /// Stride through the region in `stride_bytes` steps, wrapping — column
    /// walks, object-header touches.
    Strided {
        /// Step in bytes between consecutive accesses.
        stride_bytes: u64,
    },
    /// Uniformly random lines within the region — hash-map probes, per-key
    /// reduce combining, shuffles.
    Random,
    /// Random lines within a sliding window of `window_bytes`, the window
    /// itself advancing through the region — quicksort partitions, merge
    /// frontiers. Captures "random within a working set of size W".
    RandomWindow {
        /// Size of the randomly accessed working set in bytes.
        window_bytes: u64,
    },
    /// Zipf-distributed lines (`P(line r) ∝ 1/r`, hottest at the region
    /// base) — hash-table probes keyed by natural-language words or
    /// skewed-degree graph vertices, where a few hot keys absorb most
    /// probes and stay cache-resident.
    Zipf,
}

/// Resumable generator of addresses for `(pattern, region)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccessCursor {
    region: Region,
    pattern: AccessPattern,
    pos: u64,
    rng_state: u64,
    emitted: u64,
}

impl AccessCursor {
    /// Creates a cursor. `seed` drives the random patterns; sequential and
    /// strided patterns ignore it.
    pub fn new(region: Region, pattern: AccessPattern, seed: u64) -> Self {
        Self { region, pattern, pos: 0, rng_state: seed | 1, emitted: 0 }
    }

    /// The region this cursor walks.
    pub fn region(&self) -> Region {
        self.region
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64*: fast, deterministic, good enough for address spreading.
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Produces the next address.
    #[inline]
    pub fn next_addr(&mut self) -> u64 {
        let len = self.region.bytes.max(LINE_BYTES);
        let addr = match self.pattern {
            AccessPattern::Sequential => {
                let a = self.region.base + self.pos;
                self.pos = (self.pos + LINE_BYTES) % len;
                a
            }
            AccessPattern::Strided { stride_bytes } => {
                let a = self.region.base + self.pos;
                self.pos = (self.pos + stride_bytes.max(1)) % len;
                a
            }
            AccessPattern::Random => {
                let lines = len / LINE_BYTES;
                let line = self.next_rand() % lines.max(1);
                self.region.base + line * LINE_BYTES
            }
            AccessPattern::Zipf => {
                // Inverse-CDF sampling of P(rank ≤ r) ∝ ln r for s = 1:
                // rank = lines^u with u uniform in [0, 1).
                let lines = (len / LINE_BYTES).max(1);
                let u = self.next_rand() as f64 / (u64::MAX as f64 + 1.0);
                let line = ((lines as f64).powf(u) as u64).saturating_sub(1).min(lines - 1);
                self.region.base + line * LINE_BYTES
            }
            AccessPattern::RandomWindow { window_bytes } => {
                let window = window_bytes.clamp(LINE_BYTES, len);
                let window_lines = window / LINE_BYTES;
                let line_in_window = self.next_rand() % window_lines.max(1);
                let a = self.region.base + self.pos + line_in_window * LINE_BYTES;
                // Advance the window one line per `window_lines` emissions so
                // the working set slides through the region.
                if self.emitted % window_lines.max(1) == window_lines.max(1) - 1 {
                    self.pos = (self.pos + LINE_BYTES) % len.saturating_sub(window).max(1);
                }
                a
            }
        };
        self.emitted += 1;
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(0x1000, 4096)
    }

    #[test]
    fn sequential_walks_lines_and_wraps() {
        let mut c = AccessCursor::new(region(), AccessPattern::Sequential, 0);
        assert_eq!(c.next_addr(), 0x1000);
        assert_eq!(c.next_addr(), 0x1040);
        for _ in 0..(4096 / 64 - 2) {
            c.next_addr();
        }
        assert_eq!(c.next_addr(), 0x1000, "wraps to base");
    }

    #[test]
    fn strided_steps_by_stride() {
        let mut c = AccessCursor::new(region(), AccessPattern::Strided { stride_bytes: 256 }, 0);
        assert_eq!(c.next_addr(), 0x1000);
        assert_eq!(c.next_addr(), 0x1100);
        assert_eq!(c.next_addr(), 0x1200);
    }

    #[test]
    fn random_stays_in_region_and_spreads() {
        let r = region();
        let mut c = AccessCursor::new(r, AccessPattern::Random, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let a = c.next_addr();
            assert!(a >= r.base && a < r.base + r.bytes);
            assert_eq!(a % LINE_BYTES, 0);
            seen.insert(a);
        }
        // 64 distinct lines exist; nearly all should be touched.
        assert!(seen.len() > 50, "{}", seen.len());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = AccessCursor::new(region(), AccessPattern::Random, 3);
        let mut b = AccessCursor::new(region(), AccessPattern::Random, 3);
        let mut c = AccessCursor::new(region(), AccessPattern::Random, 4);
        let va: Vec<u64> = (0..32).map(|_| a.next_addr()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_addr()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_addr()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn random_window_confined_then_slides() {
        let r = Region::new(0, 1 << 20);
        let window = 4096u64;
        let mut c = AccessCursor::new(r, AccessPattern::RandomWindow { window_bytes: window }, 5);
        // Early accesses confined near the start.
        for _ in 0..32 {
            let a = c.next_addr();
            assert!(a < 3 * window, "early access escaped the window: {a}");
        }
        // After many emissions the window has slid forward.
        for _ in 0..100_000 {
            c.next_addr();
        }
        let late = c.next_addr();
        assert!(late > window, "window never slid: {late}");
    }

    #[test]
    fn zipf_is_skewed_toward_base() {
        let r = Region::new(0, 1 << 20); // 16384 lines
        let mut c = AccessCursor::new(r, AccessPattern::Zipf, 9);
        let mut front = 0usize;
        let mut seen_back_half = false;
        for _ in 0..10_000 {
            let a = c.next_addr();
            assert!(a < r.base + r.bytes);
            if a < r.base + (r.bytes / 64) {
                front += 1; // hottest ~1.6% of lines
            }
            if a >= r.base + r.bytes / 2 {
                seen_back_half = true;
            }
        }
        assert!(front > 5_000, "zipf mass concentrates at the base: {front}");
        assert!(seen_back_half, "but the cold tail is still touched");
    }

    #[test]
    fn zero_sized_region_safe() {
        let mut c = AccessCursor::new(Region::new(0x40, 0), AccessPattern::Sequential, 0);
        assert_eq!(c.next_addr(), 0x40);
        let mut c = AccessCursor::new(Region::new(0x40, 0), AccessPattern::Random, 1);
        let a = c.next_addr();
        assert_eq!(a, 0x40);
    }

    #[test]
    fn region_lines_minimum_one() {
        assert_eq!(Region::new(0, 0).lines(), 1);
        assert_eq!(Region::new(0, 640).lines(), 10);
    }
}
