//! The cycle cost model.
//!
//! Cycles accrue from three sources: a base CPI charged per instruction
//! (pipeline throughput for cache-resident work), per-access penalties that
//! depend on which level of the hierarchy served the access, and explicit IO
//! stalls charged by the engine for disk/HDFS/network operations.

use serde::{Deserialize, Serialize};

use crate::hierarchy::AccessOutcome;

/// Latency/throughput parameters of the modelled core.
///
/// Defaults approximate an Ivy Bridge-E class core (the paper's i7-4820K):
/// ~0.5 base CPI on cache-resident code, L2 ≈ 12 cycles, LLC ≈ 35 cycles,
/// DRAM ≈ 180 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles charged per instruction before memory penalties. Stored as
    /// milli-cycles-per-instruction so all arithmetic stays in integers
    /// (e.g. `500` = 0.5 CPI).
    pub base_mcpi: u64,
    /// Extra cycles when an access hits in L2 (missed L1).
    pub l2_hit_cycles: u64,
    /// Extra cycles when an access hits in the LLC (missed L1+L2).
    pub llc_hit_cycles: u64,
    /// Extra cycles when an access goes to DRAM (missed everything).
    pub mem_cycles: u64,
    /// Divisor applied to miss penalties of *streaming* accesses
    /// (sequential / short-stride walks): the hardware prefetcher overlaps
    /// their latency, leaving them bandwidth- rather than latency-bound.
    pub prefetch_divisor: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            base_mcpi: 500,
            l2_hit_cycles: 12,
            llc_hit_cycles: 35,
            mem_cycles: 150,
            prefetch_divisor: 4,
        }
    }
}

impl CostModel {
    /// Base (non-memory) cycles for `instrs` instructions, rounded to the
    /// nearest cycle.
    pub fn base_cycles(&self, instrs: u64) -> u64 {
        (instrs * self.base_mcpi + 500) / 1000
    }

    /// Extra cycles for one access with the given hierarchy outcome.
    pub fn access_cycles(&self, outcome: AccessOutcome) -> u64 {
        match outcome {
            AccessOutcome::L1Hit => 0,
            AccessOutcome::L2Hit => self.l2_hit_cycles,
            AccessOutcome::LlcHit => self.llc_hit_cycles,
            AccessOutcome::Memory => self.mem_cycles,
        }
    }

    /// Like [`CostModel::access_cycles`], but for an access the prefetcher
    /// can cover (streaming patterns): miss penalties are divided by
    /// [`CostModel::prefetch_divisor`].
    pub fn access_cycles_streaming(&self, outcome: AccessOutcome) -> u64 {
        self.access_cycles(outcome) / self.prefetch_divisor.max(1)
    }

    /// The best CPI achievable (all L1 hits), as f64.
    pub fn min_cpi(&self) -> f64 {
        self.base_mcpi as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cycles_rounds() {
        let m = CostModel::default();
        assert_eq!(m.base_cycles(1000), 500);
        assert_eq!(m.base_cycles(1), 1); // 0.5 rounds up
        assert_eq!(m.base_cycles(0), 0);
    }

    #[test]
    fn penalties_are_ordered() {
        let m = CostModel::default();
        assert!(m.access_cycles(AccessOutcome::L1Hit) < m.access_cycles(AccessOutcome::L2Hit));
        assert!(m.access_cycles(AccessOutcome::L2Hit) < m.access_cycles(AccessOutcome::LlcHit));
        assert!(m.access_cycles(AccessOutcome::LlcHit) < m.access_cycles(AccessOutcome::Memory));
    }

    #[test]
    fn min_cpi_matches_base() {
        assert_eq!(CostModel::default().min_cpi(), 0.5);
    }
}
