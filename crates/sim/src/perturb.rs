//! OS-noise perturbation models.
//!
//! §III-B-1 of the paper lists OS scheduling (executor threads migrated to
//! other cores, arriving with cold private caches) as a source of
//! non-homogeneous phase behaviour. This module models that as deterministic
//! periodic events: every `period_instrs` instructions on a core, a fraction
//! of its private caches is invalidated. The engine's scheduler drives
//! [`MigrationClock::poll`] as instruction counts advance.

use serde::{Deserialize, Serialize};

use crate::machine::{CoreId, Machine};

/// Perturbation configuration (disabled by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Perturbations {
    /// Instructions between simulated OS migrations of a thread
    /// (`None` disables the model).
    pub migration_period_instrs: Option<u64>,
    /// Fraction of private-cache lines lost per migration.
    pub migration_flush_fraction: f64,
    /// RNG seed for which lines each event invalidates.
    pub seed: u64,
}

impl Default for Perturbations {
    fn default() -> Self {
        Self { migration_period_instrs: None, migration_flush_fraction: 0.8, seed: 0 }
    }
}

impl Perturbations {
    /// A moderate noise level used by the experiments: a migration roughly
    /// every `period` instructions, losing 80 % of private-cache contents.
    pub fn with_period(period: u64, seed: u64) -> Self {
        Self { migration_period_instrs: Some(period), migration_flush_fraction: 0.8, seed }
    }
}

/// Per-core clock that fires migration events as instructions accumulate.
#[derive(Debug, Clone)]
pub struct MigrationClock {
    config: Perturbations,
    next_event: Vec<u64>,
    events_fired: u64,
}

impl MigrationClock {
    /// Builds a clock for `cores` cores. Events on different cores are
    /// staggered by half a period so they do not all fire simultaneously.
    pub fn new(config: Perturbations, cores: usize) -> Self {
        let next_event = match config.migration_period_instrs {
            Some(p) => (0..cores as u64).map(|c| p + c * p / 2).collect(),
            None => vec![u64::MAX; cores],
        };
        Self { config, next_event, events_fired: 0 }
    }

    /// Called after `core`'s instruction counter reached `total_instrs`;
    /// fires any due migration events against `machine`. Returns how many
    /// events fired.
    pub fn poll(&mut self, machine: &mut Machine, core: CoreId, total_instrs: u64) -> u32 {
        let Some(period) = self.config.migration_period_instrs else {
            return 0;
        };
        let mut fired = 0;
        while total_instrs >= self.next_event[core] {
            self.events_fired += 1;
            let event_seed = self
                .config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.events_fired * 0x1000_0001 + core as u64);
            machine.flush_core_fraction(core, self.config.migration_flush_fraction, event_seed);
            self.next_event[core] += period;
            fired += 1;
        }
        fired
    }

    /// Total events fired so far (diagnostics).
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn disabled_never_fires() {
        let mut m = Machine::new(MachineConfig::scaled(1));
        let mut clock = MigrationClock::new(Perturbations::default(), 1);
        assert_eq!(clock.poll(&mut m, 0, u64::MAX / 2), 0);
        assert_eq!(clock.events_fired(), 0);
    }

    #[test]
    fn fires_once_per_period() {
        let mut m = Machine::new(MachineConfig::scaled(1));
        let mut clock = MigrationClock::new(Perturbations::with_period(1000, 1), 1);
        assert_eq!(clock.poll(&mut m, 0, 999), 0);
        assert_eq!(clock.poll(&mut m, 0, 1000), 1);
        assert_eq!(clock.poll(&mut m, 0, 1001), 0);
        assert_eq!(clock.poll(&mut m, 0, 3500), 2);
        assert_eq!(clock.events_fired(), 3);
    }

    #[test]
    fn migration_actually_cools_caches() {
        let mut m = Machine::new(MachineConfig::scaled(1));
        let r = m.alloc(4096);
        for i in 0..64u64 {
            m.access(0, r.base + i * 64);
        }
        let warm = m.counters(0).l1_misses;
        let mut clock = MigrationClock::new(
            Perturbations {
                migration_period_instrs: Some(1),
                migration_flush_fraction: 1.0,
                seed: 5,
            },
            1,
        );
        clock.poll(&mut m, 0, 10);
        for i in 0..64u64 {
            m.access(0, r.base + i * 64);
        }
        let cold = m.counters(0).l1_misses - warm;
        assert!(cold > 32, "post-migration pass should re-miss: {cold}");
    }

    #[test]
    fn cores_staggered() {
        let clock = MigrationClock::new(Perturbations::with_period(1000, 1), 3);
        assert_eq!(clock.next_event, vec![1000, 1500, 2000]);
    }
}
