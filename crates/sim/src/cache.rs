//! One set-associative LRU cache level.
//!
//! Tags and LRU stamps live in flat arrays (`sets × ways`) so a lookup is a
//! short linear scan over one set — at most `ways` comparisons on contiguous
//! memory, which keeps full-job simulations fast.

use serde::{Deserialize, Serialize};

use crate::LINE_BYTES;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a config, validating that the geometry is realizable.
    ///
    /// # Panics
    ///
    /// Panics if capacity is not a positive multiple of `ways × 64 B`.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(capacity_bytes > 0, "cache needs capacity");
        assert_eq!(
            capacity_bytes % (ways as u64 * LINE_BYTES),
            0,
            "capacity must be a multiple of ways * line size"
        );
        Self { capacity_bytes, ways }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * LINE_BYTES)) as usize
    }

    /// Number of cache lines the level holds.
    pub fn lines(&self) -> usize {
        (self.capacity_bytes / LINE_BYTES) as usize
    }
}

/// A set-associative LRU cache over 64-byte lines.
///
/// Stores line tags only — the model tracks presence, not data. A global
/// access counter provides LRU ordering. `u64::MAX` marks an invalid way.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways;
        Self {
            config,
            sets,
            ways,
            tags: vec![INVALID; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Looks up the line containing `addr`, inserting it on miss (allocate-on-
    /// miss, LRU eviction). Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        let set = if self.sets.is_power_of_two() {
            (line as usize) & (self.sets - 1)
        } else {
            (line as usize) % self.sets
        };
        self.clock += 1;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        // Hit scan.
        let mut lru_idx = 0;
        let mut lru_stamp = u64::MAX;
        for (i, &t) in slots.iter().enumerate() {
            if t == line {
                self.stamps[base + i] = self.clock;
                return true;
            }
            let s = if t == INVALID { 0 } else { self.stamps[base + i] };
            if s < lru_stamp {
                lru_stamp = s;
                lru_idx = i;
            }
        }
        // Miss: fill the LRU (or an invalid) way.
        self.tags[base + lru_idx] = line;
        self.stamps[base + lru_idx] = self.clock;
        false
    }

    /// Checks for presence without updating LRU state or inserting.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        let set = if self.sets.is_power_of_two() {
            (line as usize) & (self.sets - 1)
        } else {
            (line as usize) % self.sets
        };
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Invalidates every line (e.g. context lost after an OS migration).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
    }

    /// Invalidates roughly `fraction` of all lines, deterministically chosen
    /// from `seed`. Used by the perturbation model for partial-flush events.
    pub fn flush_fraction(&mut self, fraction: f64, seed: u64) {
        let fraction = fraction.clamp(0.0, 1.0);
        if fraction >= 1.0 {
            self.flush();
            return;
        }
        let threshold = (fraction * u64::MAX as f64) as u64;
        let mut state = seed | 1;
        for t in &mut self.tags {
            // xorshift64* stream: cheap, deterministic per-slot decision.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.wrapping_mul(0x2545_F491_4F6C_DD1D) < threshold {
                *t = INVALID;
            }
        }
    }

    /// Number of currently valid lines (test/diagnostic helper).
    pub fn valid_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig::new(512, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 8);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.lines(), 512);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn rejects_bad_geometry() {
        let _ = CacheConfig::new(1000, 8);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set stride = sets * line = 4 * 64 = 256. Three lines map to set 0.
        assert!(!c.access(0));
        assert!(!c.access(256));
        assert!(c.access(0)); // refresh line 0; line 256 now LRU
        assert!(!c.access(512)); // evicts 256
        assert!(c.access(0));
        assert!(!c.access(256)); // was evicted
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = tiny();
        c.access(0);
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(!c.probe(256));
        // probing 256 must not have inserted it
        assert!(!c.access(256));
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        // 32 KiB 8-way cache, 16 KiB working set streamed twice: second pass
        // must be hit-only.
        let mut c = Cache::new(CacheConfig::new(32 * 1024, 8));
        let lines = 16 * 1024 / 64;
        for i in 0..lines {
            c.access(i * 64);
        }
        let hits = (0..lines).filter(|&i| c.access(i * 64)).count();
        assert_eq!(hits as u64, lines);
    }

    #[test]
    fn working_set_beyond_capacity_misses() {
        // Working set 4x capacity with LRU + streaming: second pass all misses.
        let mut c = Cache::new(CacheConfig::new(32 * 1024, 8));
        let lines = 4 * 32 * 1024 / 64;
        for i in 0..lines {
            c.access(i * 64);
        }
        let hits = (0..lines).filter(|&i| c.access(i * 64)).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = tiny();
        for i in 0..8 {
            c.access(i * 64);
        }
        assert!(c.valid_lines() > 0);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn flush_fraction_partial_and_deterministic() {
        let mut a = Cache::new(CacheConfig::new(32 * 1024, 8));
        for i in 0..512 {
            a.access(i * 64);
        }
        let mut b = a.clone();
        a.flush_fraction(0.5, 99);
        b.flush_fraction(0.5, 99);
        assert_eq!(a.valid_lines(), b.valid_lines());
        let remaining = a.valid_lines();
        assert!(remaining > 100 && remaining < 412, "about half should survive: {remaining}");
        a.flush_fraction(1.0, 1);
        assert_eq!(a.valid_lines(), 0);
    }
}
