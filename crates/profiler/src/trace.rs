//! The profiler's output format.
//!
//! One [`SamplingUnit`] corresponds to a fixed number of instructions on the
//! profiled executor thread and carries (a) the frequency histogram of
//! methods seen in its call-stack snapshots — the raw material of phase
//! formation — and (b) the hardware-counter deltas over the unit, from which
//! CPI/IPC are derived.

use serde::{Deserialize, Serialize};

use simprof_engine::MethodId;
use simprof_sim::Counters;

/// One sampling unit (§II-B: "a fixed number of instruction interval within
/// a thread").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingUnit {
    /// Sequential unit id within the trace; the paper uses the unit id to
    /// name simulation points.
    pub id: u64,
    /// `(method, snapshots containing it)` pairs, sorted by method id.
    pub histogram: Vec<(MethodId, u32)>,
    /// Number of call-stack snapshots taken in the unit.
    pub snapshots: u32,
    /// Hardware-counter deltas over the unit.
    pub counters: Counters,
    /// Per-snapshot-interval `(instructions, cycles)` slices within the
    /// unit. These support the paper's stated future work of combining
    /// SimProf with SMARTS-style systematic sampling *inside* each
    /// simulation point (§III-C): a simulator can run only every j-th slice
    /// of a selected unit and still estimate the unit's CPI.
    #[serde(default)]
    pub slices: Vec<(u64, u64)>,
    /// True when the profiled executor crashed inside this unit — the
    /// unit's histogram mixes pre- and post-recovery execution, so phase
    /// analyses may wish to weight it down.
    #[serde(default)]
    pub truncated: bool,
    /// Call-stack snapshots the profiler failed to capture in this unit
    /// (dropped under fault injection). The histogram covers only the
    /// `snapshots` that succeeded.
    #[serde(default)]
    pub dropped_snapshots: u32,
}

impl SamplingUnit {
    /// Cycles per instruction of the unit.
    pub fn cpi(&self) -> f64 {
        self.counters.cpi()
    }

    /// Instructions per cycle of the unit.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }

    /// CPI estimated from every `stride`-th intra-unit slice starting at
    /// `offset` — the SMARTS-style systematic sub-unit estimator. Falls back
    /// to the full-unit CPI when the unit carries no slices.
    pub fn sliced_cpi(&self, stride: usize, offset: usize) -> f64 {
        if self.slices.is_empty() || stride <= 1 {
            return self.cpi();
        }
        let mut instrs = 0u64;
        let mut cycles = 0u64;
        let mut i = offset % stride;
        while i < self.slices.len() {
            instrs += self.slices[i].0;
            cycles += self.slices[i].1;
            i += stride;
        }
        if instrs == 0 {
            self.cpi()
        } else {
            cycles as f64 / instrs as f64
        }
    }

    /// Instructions a simulator must execute for this unit when sampling
    /// every `stride`-th slice (the cost side of the hybrid trade-off).
    pub fn sliced_instrs(&self, stride: usize, offset: usize) -> u64 {
        if self.slices.is_empty() || stride <= 1 {
            return self.counters.instructions;
        }
        let mut instrs = 0u64;
        let mut i = offset % stride;
        while i < self.slices.len() {
            instrs += self.slices[i].0;
            i += stride;
        }
        instrs
    }
}

/// A whole profiled execution of one (logical) executor thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileTrace {
    /// Sampling-unit size in instructions.
    pub unit_instrs: u64,
    /// Snapshot period in instructions.
    pub snapshot_instrs: u64,
    /// The core whose executor thread was profiled.
    pub core: usize,
    /// The units, in execution order.
    pub units: Vec<SamplingUnit>,
}

impl ProfileTrace {
    /// CPI of every unit, in order.
    pub fn cpis(&self) -> Vec<f64> {
        self.units.iter().map(SamplingUnit::cpi).collect()
    }

    /// IPC of every unit, in order.
    pub fn ipcs(&self) -> Vec<f64> {
        self.units.iter().map(SamplingUnit::ipc).collect()
    }

    /// The paper's oracle: the mean CPI over all sampling units (§IV-C).
    pub fn oracle_cpi(&self) -> f64 {
        let cpis = self.cpis();
        if cpis.is_empty() {
            0.0
        } else {
            cpis.iter().sum::<f64>() / cpis.len() as f64
        }
    }

    /// Highest method id appearing anywhere in the trace, plus one — the
    /// dimensionality of full feature vectors.
    pub fn method_universe(&self) -> usize {
        self.units
            .iter()
            .flat_map(|u| u.histogram.iter())
            .map(|&(m, _)| m.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total instructions across all units.
    pub fn total_instrs(&self) -> u64 {
        self.units.iter().map(|u| u.counters.instructions).sum()
    }

    /// Total cycles across all units.
    pub fn total_cycles(&self) -> u64 {
        self.units.iter().map(|u| u.counters.cycles).sum()
    }

    /// Number of units whose profiled executor crashed mid-unit.
    pub fn truncated_units(&self) -> usize {
        self.units.iter().filter(|u| u.truncated).count()
    }

    /// Total call-stack snapshots dropped across all units.
    pub fn dropped_snapshots(&self) -> u64 {
        self.units.iter().map(|u| u.dropped_snapshots as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: u64, instrs: u64, cycles: u64) -> SamplingUnit {
        SamplingUnit {
            id,
            histogram: vec![(MethodId(0), 5), (MethodId(3), 2)],
            snapshots: 7,
            counters: Counters { instructions: instrs, cycles, ..Default::default() },
            slices: Vec::new(),
            truncated: false,
            dropped_snapshots: 0,
        }
    }

    #[test]
    fn cpi_per_unit_and_oracle() {
        let t = ProfileTrace {
            unit_instrs: 100,
            snapshot_instrs: 10,
            core: 0,
            units: vec![unit(0, 100, 100), unit(1, 100, 300)],
        };
        assert_eq!(t.cpis(), vec![1.0, 3.0]);
        assert_eq!(t.oracle_cpi(), 2.0);
        assert_eq!(t.total_instrs(), 200);
        assert_eq!(t.total_cycles(), 400);
    }

    #[test]
    fn method_universe_spans_max_id() {
        let t = ProfileTrace {
            unit_instrs: 1,
            snapshot_instrs: 1,
            core: 0,
            units: vec![unit(0, 1, 1)],
        };
        assert_eq!(t.method_universe(), 4);
        let empty = ProfileTrace { unit_instrs: 1, snapshot_instrs: 1, core: 0, units: vec![] };
        assert_eq!(empty.method_universe(), 0);
        assert_eq!(empty.oracle_cpi(), 0.0);
    }

    #[test]
    fn sliced_cpi_systematic() {
        let mut u = unit(0, 1000, 2500);
        // 4 slices with CPIs 1, 2, 3, 4.
        u.slices = vec![(250, 250), (250, 500), (250, 750), (250, 1000)];
        assert_eq!(u.sliced_cpi(1, 0), 2.5, "stride 1 = full unit");
        assert_eq!(u.sliced_cpi(2, 0), (250.0 + 750.0) / 500.0, "slices 0,2");
        assert_eq!(u.sliced_cpi(2, 1), (500.0 + 1000.0) / 500.0, "slices 1,3");
        assert_eq!(u.sliced_cpi(4, 3), 4.0, "single slice");
        assert_eq!(u.sliced_instrs(2, 0), 500);
        // No slices recorded → falls back to the unit CPI.
        let bare = unit(1, 100, 300);
        assert_eq!(bare.sliced_cpi(5, 0), 3.0);
        assert_eq!(bare.sliced_instrs(5, 0), 100);
    }

    #[test]
    fn serde_roundtrip() {
        let t = ProfileTrace {
            unit_instrs: 50_000,
            snapshot_instrs: 5_000,
            core: 0,
            units: vec![unit(0, 100, 150)],
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: ProfileTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
