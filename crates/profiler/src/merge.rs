//! Merging per-core traces.
//!
//! In Hadoop, an executor thread lives only as long as its task, so the
//! paper "merges the profiled results from the executor threads running on
//! the same core to mimic a long running executor thread in Spark" (§III-A).
//! With the engine pinning one executor thread per core, the per-core merge
//! happens by construction; this module provides the complementary multi-core
//! merge used when a whole machine's worth of cores is profiled and a single
//! logical trace is wanted.

use crate::trace::ProfileTrace;

/// Concatenates per-core traces into one logical trace, renumbering unit ids.
///
/// Units keep their within-core order; cores are concatenated in the given
/// order. All traces must share unit/snapshot geometry.
///
/// # Panics
///
/// Panics if `traces` is empty or geometries differ.
pub fn merge_core_traces(traces: Vec<ProfileTrace>) -> ProfileTrace {
    assert!(!traces.is_empty(), "need at least one trace");
    let unit_instrs = traces[0].unit_instrs;
    let snapshot_instrs = traces[0].snapshot_instrs;
    assert!(
        traces.iter().all(|t| t.unit_instrs == unit_instrs && t.snapshot_instrs == snapshot_instrs),
        "traces must share sampling geometry"
    );
    let core = traces[0].core;
    let mut units = Vec::with_capacity(traces.iter().map(|t| t.units.len()).sum());
    for t in traces {
        units.extend(t.units);
    }
    for (i, u) in units.iter_mut().enumerate() {
        u.id = i as u64;
    }
    ProfileTrace { unit_instrs, snapshot_instrs, core, units }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SamplingUnit;
    use simprof_sim::Counters;

    fn trace(core: usize, n: usize) -> ProfileTrace {
        ProfileTrace {
            unit_instrs: 100,
            snapshot_instrs: 10,
            core,
            units: (0..n as u64)
                .map(|id| SamplingUnit {
                    id,
                    histogram: vec![],
                    snapshots: 1,
                    counters: Counters {
                        instructions: 100,
                        cycles: 100 + core as u64,
                        ..Default::default()
                    },
                    slices: Vec::new(),
                    truncated: false,
                    dropped_snapshots: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn merge_concatenates_and_renumbers() {
        let merged = merge_core_traces(vec![trace(0, 3), trace(1, 2)]);
        assert_eq!(merged.units.len(), 5);
        let ids: Vec<u64> = merged.units.iter().map(|u| u.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        // Core-1 units follow core-0 units.
        assert_eq!(merged.units[3].counters.cycles, 101);
    }

    #[test]
    #[should_panic(expected = "share sampling geometry")]
    fn rejects_mismatched_geometry() {
        let mut b = trace(1, 1);
        b.unit_instrs = 999;
        let _ = merge_core_traces(vec![trace(0, 1), b]);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn rejects_empty() {
        let _ = merge_core_traces(vec![]);
    }
}
