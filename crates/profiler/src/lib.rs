//! Thread-profiling substrate for SimProf (§III-A, Figs. 3–4 of the paper).
//!
//! The paper's thread profiler attaches to a JVM and, for one executor
//! thread, cuts execution into fixed-size *sampling units* (100 M
//! instructions), takes call-stack snapshots every 10 M instructions through
//! JVMTI, and reads hardware counters through `perf_event`. This crate
//! reproduces that architecture against the [`simprof_engine`] scheduler:
//!
//! * [`collectors`] — the call-stack collector and the hardware-counter
//!   collector (the two boxes of the paper's Fig. 4).
//! * [`manager`] — the sampling manager that drives both collectors from
//!   scheduler progress events and flushes completed sampling units.
//! * [`trace`] — the output format: [`ProfileTrace`], a serializable vector
//!   of [`SamplingUnit`]s with method histograms and counter deltas.
//! * [`sink`] / [`stream`] — the streaming data path: the manager emits
//!   each closed unit to registered [`UnitSink`]s while the engine runs,
//!   and analyses consume units back through rewindable [`UnitStream`]s —
//!   so traces never have to fit in memory (the chunked on-disk format
//!   lives in the `simprof-trace` crate).
//! * [`merge`] — merging per-core traces, the paper's treatment of Hadoop's
//!   short-lived per-task executor threads.

pub mod collectors;
pub mod manager;
pub mod merge;
pub mod sink;
pub mod stream;
pub mod trace;

pub use collectors::{CallStackCollector, HwCounterCollector};
pub use manager::{ProfilerConfig, SamplingManager};
pub use merge::merge_core_traces;
pub use sink::{SharedSink, TraceCollector, UnitSink};
pub use stream::{MemStream, UnitStream};
pub use trace::{ProfileTrace, SamplingUnit};
