//! The two collectors of the paper's Fig. 4.
//!
//! The *call-stack collector* is the JVMTI analog: it receives stack
//! snapshots and accumulates a method-frequency histogram for the current
//! sampling unit, buffering in memory for speed (the paper flushes collector
//! buffers to files; we flush to the in-memory trace).
//!
//! The *hardware-counter collector* is the `perf_event` analog: it reads the
//! machine's per-core counters and produces deltas at unit boundaries.

use std::collections::HashMap;

use simprof_engine::MethodId;
use simprof_sim::{Counters, Machine};

/// Accumulates call-stack snapshots into a per-unit method histogram.
#[derive(Debug, Default, Clone)]
pub struct CallStackCollector {
    histogram: HashMap<MethodId, u32>,
    snapshots: u32,
}

impl CallStackCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one snapshot: each *distinct* method in the stack counts once
    /// (the paper counts "the frequency of the method appearing in the
    /// sampling unit" across snapshots; a method recursing within one stack
    /// still appears once in that snapshot).
    pub fn snapshot(&mut self, stack: &[MethodId]) {
        self.snapshots += 1;
        // Stacks are short (≤ ~8 frames) and built without duplicates by the
        // engine, but guard against recursion anyway with a linear dedup.
        for (i, &m) in stack.iter().enumerate() {
            if stack[..i].contains(&m) {
                continue;
            }
            *self.histogram.entry(m).or_insert(0) += 1;
        }
    }

    /// Number of snapshots recorded since the last flush.
    pub fn snapshots(&self) -> u32 {
        self.snapshots
    }

    /// Drains the collector, returning the histogram sorted by method id and
    /// the snapshot count.
    pub fn flush(&mut self) -> (Vec<(MethodId, u32)>, u32) {
        let mut hist: Vec<(MethodId, u32)> = self.histogram.drain().collect();
        hist.sort_unstable_by_key(|&(m, _)| m);
        let n = self.snapshots;
        self.snapshots = 0;
        (hist, n)
    }
}

/// Reads hardware-counter deltas at unit boundaries.
#[derive(Debug, Default, Clone, Copy)]
pub struct HwCounterCollector {
    last: Counters,
}

impl HwCounterCollector {
    /// Creates a collector with a zero baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `core`'s counters and returns the delta since the previous
    /// read, advancing the baseline.
    pub fn read_delta(&mut self, machine: &Machine, core: usize) -> Counters {
        let now = machine.counters(core);
        let delta = now - self.last;
        self.last = now;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_sim::MachineConfig;

    #[test]
    fn histogram_counts_methods_once_per_snapshot() {
        let mut c = CallStackCollector::new();
        c.snapshot(&[MethodId(0), MethodId(1)]);
        c.snapshot(&[MethodId(0), MethodId(2)]);
        c.snapshot(&[MethodId(0), MethodId(1), MethodId(1)]); // recursion deduped
        let (hist, n) = c.flush();
        assert_eq!(n, 3);
        assert_eq!(hist, vec![(MethodId(0), 3), (MethodId(1), 2), (MethodId(2), 1)]);
    }

    #[test]
    fn flush_resets() {
        let mut c = CallStackCollector::new();
        c.snapshot(&[MethodId(5)]);
        let _ = c.flush();
        let (hist, n) = c.flush();
        assert!(hist.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn hw_collector_reads_deltas() {
        let mut m = Machine::new(MachineConfig::scaled(1));
        let mut hw = HwCounterCollector::new();
        m.charge_instrs(0, 1000);
        let d1 = hw.read_delta(&m, 0);
        assert_eq!(d1.instructions, 1000);
        m.charge_instrs(0, 500);
        let d2 = hw.read_delta(&m, 0);
        assert_eq!(d2.instructions, 500, "baseline advanced");
    }
}
