//! Streaming unit sources: the read side of the sink/source pair.
//!
//! A [`UnitStream`] yields sampling units in id order without promising that
//! the whole trace is in memory. The analysis pipeline's streaming path
//! (`simprof-core`) makes exactly two passes over a stream — one to
//! accumulate feature sufficient statistics, one to build the reduced
//! matrix — so a stream must be rewindable. [`MemStream`] adapts an
//! in-memory [`ProfileTrace`]; the `simprof-trace` crate provides the
//! on-disk chunked-file implementation.

use crate::trace::{ProfileTrace, SamplingUnit};

/// A rewindable, in-order source of sampling units.
pub trait UnitStream {
    /// Sampling-unit size in instructions (the trace header's value).
    fn unit_instrs(&self) -> u64;

    /// Snapshot period in instructions.
    fn snapshot_instrs(&self) -> u64;

    /// The core whose executor thread was profiled.
    fn core(&self) -> usize;

    /// Restarts the stream at the first unit.
    fn rewind(&mut self) -> Result<(), String>;

    /// Yields the next unit, or `None` at end of stream. The returned
    /// borrow is valid until the next call on the stream.
    fn next_unit(&mut self) -> Result<Option<&SamplingUnit>, String>;
}

/// A [`UnitStream`] over a borrowed in-memory trace.
#[derive(Debug)]
pub struct MemStream<'a> {
    trace: &'a ProfileTrace,
    pos: usize,
}

impl<'a> MemStream<'a> {
    /// Streams `trace`'s units from the start.
    pub fn new(trace: &'a ProfileTrace) -> Self {
        Self { trace, pos: 0 }
    }
}

impl UnitStream for MemStream<'_> {
    fn unit_instrs(&self) -> u64 {
        self.trace.unit_instrs
    }

    fn snapshot_instrs(&self) -> u64 {
        self.trace.snapshot_instrs
    }

    fn core(&self) -> usize {
        self.trace.core
    }

    fn rewind(&mut self) -> Result<(), String> {
        self.pos = 0;
        Ok(())
    }

    fn next_unit(&mut self) -> Result<Option<&SamplingUnit>, String> {
        let unit = self.trace.units.get(self.pos);
        if unit.is_some() {
            self.pos += 1;
        }
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::MethodId;
    use simprof_sim::Counters;

    fn trace(n: u64) -> ProfileTrace {
        let units = (0..n)
            .map(|id| SamplingUnit {
                id,
                histogram: vec![(MethodId(0), 1)],
                snapshots: 1,
                counters: Counters { instructions: 10, cycles: 20, ..Default::default() },
                slices: Vec::new(),
                truncated: false,
                dropped_snapshots: 0,
            })
            .collect();
        ProfileTrace { unit_instrs: 10, snapshot_instrs: 1, core: 0, units }
    }

    #[test]
    fn mem_stream_yields_in_order_and_rewinds() {
        let t = trace(3);
        let mut s = MemStream::new(&t);
        assert_eq!(s.unit_instrs(), 10);
        let mut seen = Vec::new();
        while let Some(u) = s.next_unit().unwrap() {
            seen.push(u.id);
        }
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(s.next_unit().unwrap().is_none(), "stays exhausted");
        s.rewind().unwrap();
        assert_eq!(s.next_unit().unwrap().unwrap().id, 0);
    }
}
