//! The sampling manager (paper Fig. 4).
//!
//! Controls both collectors: as the profiled core's instruction count
//! advances, it triggers call-stack snapshots every `snapshot_instrs` and
//! closes a sampling unit every `unit_instrs`, reading the hardware-counter
//! delta at each unit boundary. It implements the engine's
//! [`ExecListener`], so profiling a job is just running the scheduler with
//! the manager attached — the analog of attaching the JVMTI agent.

use simprof_engine::{ExecListener, FaultEvent, FaultPlan, MethodId};
use simprof_sim::{CoreId, Machine};

use crate::collectors::{CallStackCollector, HwCounterCollector};
use crate::sink::{ObsTally, TraceCollector, UnitSink};
use crate::trace::{ProfileTrace, SamplingUnit};

/// Profiler configuration.
///
/// The paper uses 100 M-instruction units with snapshots every 10 M; scaled
/// runs keep the 10 : 1 ratio at smaller absolute sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilerConfig {
    /// Sampling-unit size in instructions.
    pub unit_instrs: u64,
    /// Call-stack snapshot period in instructions.
    pub snapshot_instrs: u64,
    /// Which core's executor thread to profile.
    pub core: CoreId,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self { unit_instrs: 50_000, snapshot_instrs: 5_000, core: 0 }
    }
}

impl ProfilerConfig {
    /// Scaled config preserving the paper's 10:1 unit-to-snapshot ratio.
    pub fn with_unit(unit_instrs: u64) -> Self {
        Self { unit_instrs, snapshot_instrs: (unit_instrs / 10).max(1), core: 0 }
    }
}

/// The sampling manager. Feed it to [`simprof_engine::Scheduler::run`] and
/// call [`SamplingManager::finish`] afterwards.
///
/// Each closed sampling unit is *emitted*: the built-in obs tally and every
/// registered [`UnitSink`] observe it (in registration order) the moment it
/// closes, while the engine is still running — that is what lets an on-disk
/// writer persist the trace incrementally. The default in-memory
/// [`TraceCollector`] additionally buffers the unit so
/// [`SamplingManager::finish`] can still materialize a [`ProfileTrace`];
/// memory-bounded callers disable it with
/// [`SamplingManager::without_collector`].
#[derive(Debug)]
pub struct SamplingManager {
    config: ProfilerConfig,
    stacks: CallStackCollector,
    hw: HwCounterCollector,
    slice_hw: HwCounterCollector,
    next_snapshot: u64,
    next_unit: u64,
    collector: Option<TraceCollector>,
    sinks: Vec<Box<dyn UnitSink>>,
    obs: ObsTally,
    emitted: u64,
    slices: Vec<(u64, u64)>,
    faults: FaultPlan,
    snapshot_in_unit: u64,
    dropped_in_unit: u32,
    unit_truncated: bool,
    stopped: bool,
}

impl SamplingManager {
    /// Creates a manager.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot period is zero or exceeds the unit size.
    pub fn new(config: ProfilerConfig) -> Self {
        assert!(config.snapshot_instrs > 0, "snapshot period must be positive");
        assert!(
            config.snapshot_instrs <= config.unit_instrs,
            "snapshot period cannot exceed unit size"
        );
        Self {
            config,
            stacks: CallStackCollector::new(),
            hw: HwCounterCollector::new(),
            slice_hw: HwCounterCollector::new(),
            next_snapshot: config.snapshot_instrs,
            next_unit: config.unit_instrs,
            collector: Some(TraceCollector::new()),
            sinks: Vec::new(),
            obs: ObsTally::default(),
            emitted: 0,
            slices: Vec::new(),
            faults: FaultPlan::none(),
            snapshot_in_unit: 0,
            dropped_in_unit: 0,
            unit_truncated: false,
            stopped: false,
        }
    }

    /// Registers a streaming sink; each closed unit is pushed to it while
    /// the engine runs. Sinks observe units in registration order.
    pub fn add_sink(&mut self, sink: Box<dyn UnitSink>) {
        self.sinks.push(sink);
    }

    /// Builder form of [`SamplingManager::add_sink`].
    pub fn with_sink(mut self, sink: Box<dyn UnitSink>) -> Self {
        self.add_sink(sink);
        self
    }

    /// Disables the built-in in-memory collector, making profiling
    /// memory-bounded: units flow only to the registered sinks and
    /// [`SamplingManager::finish`] returns an empty (header-only) trace.
    pub fn without_collector(mut self) -> Self {
        self.collector = None;
        self
    }

    /// Attaches a fault plan so the profiler mirrors the run's snapshot-drop
    /// decisions. Pass the same plan given to the scheduler: drops are keyed
    /// on `(unit, snapshot)` coordinates, so profiler degradation replays
    /// bit-identically with the engine's faults.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> ProfilerConfig {
        self.config
    }

    /// Finalizes profiling and returns the trace. The trailing partial unit
    /// (fewer instructions than `unit_instrs`) is discarded, as its CPI is
    /// not comparable with full units.
    ///
    /// Every registered sink's [`UnitSink::finish`] fires first (the single
    /// end-of-profiling metrics flush lives on that path; the per-quantum
    /// listener path stays registry-free). With the collector disabled the
    /// returned trace carries the header but no units.
    pub fn finish(mut self) -> ProfileTrace {
        self.obs.finish();
        for sink in &mut self.sinks {
            sink.finish();
        }
        match self.collector.take() {
            Some(collector) => collector.into_trace(
                self.config.unit_instrs,
                self.config.snapshot_instrs,
                self.config.core,
            ),
            None => ProfileTrace {
                unit_instrs: self.config.unit_instrs,
                snapshot_instrs: self.config.snapshot_instrs,
                core: self.config.core,
                units: Vec::new(),
            },
        }
    }

    /// Units emitted so far.
    pub fn units_emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether a sink's early-stop request latched: the manager closed no
    /// further units after the request (the engine keeps running; units
    /// already emitted are untouched).
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    fn close_unit(&mut self, machine: &Machine) {
        let (histogram, snapshots) = self.stacks.flush();
        let counters = self.hw.read_delta(machine, self.config.core);
        let id = self.emitted;
        self.emitted += 1;
        let slices = std::mem::take(&mut self.slices);
        let truncated = std::mem::take(&mut self.unit_truncated);
        let dropped_snapshots = std::mem::take(&mut self.dropped_in_unit);
        self.snapshot_in_unit = 0;
        let unit = SamplingUnit {
            id,
            histogram,
            snapshots,
            counters,
            slices,
            truncated,
            dropped_snapshots,
        };
        self.obs.accept(&unit);
        for sink in &mut self.sinks {
            sink.accept(&unit);
        }
        if let Some(collector) = &mut self.collector {
            // By-move fast path: the built-in collector takes ownership, so
            // the default whole-trace workflow stays clone-free.
            collector.push(unit);
        }
        // The sanctioned feedback channel (DESIGN.md §16): once any sink has
        // seen enough, latch the stop so no further unit is closed. Polled
        // only at unit boundaries — the unit just emitted is always complete.
        if !self.stopped && self.sinks.iter().any(|s| s.stop_requested()) {
            self.stopped = true;
        }
    }
}

impl ExecListener for SamplingManager {
    fn on_progress(
        &mut self,
        core: CoreId,
        core_instrs: u64,
        stack: &[MethodId],
        machine: &Machine,
    ) {
        if core != self.config.core || self.stopped {
            return;
        }
        // Snapshots due before (or at) this point. The stack observed now is
        // attributed to every boundary crossed in this quantum — quanta are
        // much smaller than the snapshot period, so at most one in practice.
        while core_instrs >= self.next_snapshot {
            let unit_id = self.emitted;
            if self.faults.snapshot_dropped(unit_id, self.snapshot_in_unit) {
                // The stack observation is lost but the counter slice still
                // exists — hardware counters keep ticking while the agent
                // misses its sample.
                self.dropped_in_unit += 1;
            } else {
                self.stacks.snapshot(stack);
            }
            self.snapshot_in_unit += 1;
            // Close the intra-unit counter slice ending at this snapshot.
            let d = self.slice_hw.read_delta(machine, self.config.core);
            self.slices.push((d.instructions, d.cycles));
            self.next_snapshot += self.config.snapshot_instrs;
        }
        while core_instrs >= self.next_unit {
            self.close_unit(machine);
            self.next_unit += self.config.unit_instrs;
            if self.stopped {
                break;
            }
        }
    }

    fn on_fault(&mut self, event: &FaultEvent, _machine: &Machine) {
        if let FaultEvent::ExecutorCrash { core, .. } = event {
            if *core == self.config.core {
                self.unit_truncated = true;
            }
        }
        for sink in &mut self.sinks {
            sink.on_fault(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::methods::{MethodRegistry, OpClass};
    use simprof_engine::{Job, Scheduler, Stage, Task, WorkItem};
    use simprof_sim::{AccessPattern, MachineConfig, Region};

    fn run_job(unit: u64, task_instrs: &[u64]) -> ProfileTrace {
        let mut machine = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let m = reg.intern("Mapper.map", OpClass::Map);
        let tasks = task_instrs
            .iter()
            .map(|&n| {
                Task::new(
                    vec![],
                    vec![WorkItem::compute(
                        vec![m],
                        n,
                        50,
                        AccessPattern::Sequential,
                        Region::new(0x1000, 8192),
                        1,
                    )],
                )
            })
            .collect();
        let job = Job::new(vec![Stage::new("s", tasks)]);
        let mut mgr = SamplingManager::new(ProfilerConfig::with_unit(unit));
        Scheduler::default().run(&mut machine, &job, &mut mgr);
        mgr.finish()
    }

    #[test]
    fn unit_count_matches_instructions() {
        // 100k instructions on core 0 (task 0 and task 2; task 1 goes to
        // core 1) with 10k units → 10 units.
        let t = run_job(10_000, &[50_000, 50_000, 50_000]);
        assert_eq!(t.units.len(), 10);
        for u in &t.units {
            // Quantum is 2500, so units land exactly on boundaries here.
            assert_eq!(u.counters.instructions, 10_000);
            assert_eq!(u.snapshots, 10);
            assert!(u.cpi() > 0.0);
        }
    }

    #[test]
    fn partial_tail_unit_dropped() {
        let t = run_job(10_000, &[15_000]);
        assert_eq!(t.units.len(), 1, "1.5 units → 1 full unit");
    }

    #[test]
    fn histograms_name_running_methods() {
        let t = run_job(10_000, &[20_000]);
        assert!(!t.units.is_empty());
        for u in &t.units {
            assert_eq!(u.histogram.len(), 1);
            assert_eq!(u.histogram[0].1, u.snapshots);
        }
    }

    #[test]
    fn unit_ids_sequential() {
        let t = run_job(5_000, &[40_000]);
        let ids: Vec<u64> = t.units.iter().map(|u| u.id).collect();
        let expect: Vec<u64> = (0..t.units.len() as u64).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    #[should_panic(expected = "snapshot period cannot exceed")]
    fn rejects_bad_config() {
        let _ =
            SamplingManager::new(ProfilerConfig { unit_instrs: 10, snapshot_instrs: 100, core: 0 });
    }

    #[test]
    fn snapshot_drops_and_crashes_degrade_gracefully() {
        use simprof_engine::{FaultPlan, SchedConfig, Scheduler};
        let run = |plan: FaultPlan| {
            let mut machine = Machine::new(MachineConfig::scaled(2));
            let mut reg = MethodRegistry::new();
            let m = reg.intern("Mapper.map", OpClass::Map);
            let tasks = (0..8)
                .map(|_| {
                    Task::new(
                        vec![],
                        vec![WorkItem::compute(
                            vec![m],
                            40_000,
                            50,
                            AccessPattern::Sequential,
                            Region::new(0x1000, 8192),
                            1,
                        )],
                    )
                })
                .collect();
            let job = Job::new(vec![Stage::new("s", tasks)]);
            let mut mgr = SamplingManager::new(ProfilerConfig::with_unit(10_000)).with_faults(plan);
            let sched = Scheduler::new(SchedConfig { faults: plan, ..SchedConfig::default() });
            let log = sched.run(&mut machine, &job, &mut mgr);
            (mgr.finish(), log)
        };

        // Heavy snapshot drops: every unit still accounts for all 10 snapshot
        // boundaries, split between captured and dropped.
        let plan = FaultPlan { snapshot_drop_ppm: 400_000, seed: 7, ..FaultPlan::none() };
        let (trace, _) = run(plan);
        assert!(trace.dropped_snapshots() > 0, "40% drop rate must drop something");
        for u in &trace.units {
            assert_eq!(u.snapshots + u.dropped_snapshots, 10);
            assert_eq!(u.slices.len(), 10, "counter slices survive dropped stacks");
        }

        // Crashes on the profiled core flag the enclosing unit truncated.
        let plan = FaultPlan { crash_ppm: 400_000, seed: 11, ..FaultPlan::none() };
        let (trace, log) = run(plan);
        let on_core0 = log
            .events
            .iter()
            .filter(|e| matches!(e, simprof_engine::FaultEvent::ExecutorCrash { core: 0, .. }))
            .count();
        assert!(on_core0 > 0, "40% crash rate over 8 tasks must hit core 0");
        assert!(trace.truncated_units() > 0);

        // A quiet plan leaves the trace pristine.
        let (trace, log) = run(FaultPlan::none());
        assert!(log.is_empty());
        assert_eq!(trace.truncated_units(), 0);
        assert_eq!(trace.dropped_snapshots(), 0);
    }

    #[test]
    fn sinks_observe_units_as_they_close() {
        use crate::sink::SharedSink;
        use crate::sink::TraceCollector;

        // A sink that records the ids it saw, in order.
        let mirror = SharedSink::new(TraceCollector::new());
        let mut machine = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let m = reg.intern("Mapper.map", OpClass::Map);
        let tasks = vec![Task::new(
            vec![],
            vec![WorkItem::compute(
                vec![m],
                40_000,
                50,
                AccessPattern::Sequential,
                Region::new(0x1000, 8192),
                1,
            )],
        )];
        let job = Job::new(vec![Stage::new("s", tasks)]);
        let mut mgr = SamplingManager::new(ProfilerConfig::with_unit(10_000))
            .with_sink(Box::new(mirror.clone()));
        Scheduler::default().run(&mut machine, &job, &mut mgr);
        assert_eq!(mgr.units_emitted(), 4);
        let trace = mgr.finish();
        // The sink saw exactly the units the collector kept, in order.
        let mirrored = mirror.lock().clone().into_trace(10_000, 1_000, 0);
        assert_eq!(mirrored.units, trace.units);
    }

    #[test]
    fn without_collector_is_memory_bounded_but_sinks_still_fed() {
        use crate::sink::SharedSink;
        use crate::sink::TraceCollector;

        let mirror = SharedSink::new(TraceCollector::new());
        let mut machine = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let m = reg.intern("Mapper.map", OpClass::Map);
        let tasks = vec![Task::new(
            vec![],
            vec![WorkItem::compute(
                vec![m],
                30_000,
                50,
                AccessPattern::Sequential,
                Region::new(0x1000, 8192),
                1,
            )],
        )];
        let job = Job::new(vec![Stage::new("s", tasks)]);
        let mut mgr = SamplingManager::new(ProfilerConfig::with_unit(10_000))
            .without_collector()
            .with_sink(Box::new(mirror.clone()));
        Scheduler::default().run(&mut machine, &job, &mut mgr);
        let trace = mgr.finish();
        assert!(trace.units.is_empty(), "collector disabled → header-only trace");
        assert_eq!(trace.unit_instrs, 10_000);
        assert_eq!(mirror.lock().len(), 3, "sinks still observed every unit");
    }

    #[test]
    fn sink_stop_request_halts_collection_at_a_unit_boundary() {
        #[derive(Debug)]
        struct StopAfter {
            seen: usize,
            limit: usize,
        }
        impl UnitSink for StopAfter {
            fn accept(&mut self, _unit: &SamplingUnit) {
                self.seen += 1;
            }
            fn stop_requested(&self) -> bool {
                self.seen >= self.limit
            }
        }

        let mut machine = Machine::new(MachineConfig::scaled(2));
        let mut reg = MethodRegistry::new();
        let m = reg.intern("Mapper.map", OpClass::Map);
        let tasks = vec![Task::new(
            vec![],
            vec![WorkItem::compute(
                vec![m],
                100_000,
                50,
                AccessPattern::Sequential,
                Region::new(0x1000, 8192),
                1,
            )],
        )];
        let job = Job::new(vec![Stage::new("s", tasks)]);
        let mut mgr = SamplingManager::new(ProfilerConfig::with_unit(10_000))
            .with_sink(Box::new(StopAfter { seen: 0, limit: 3 }));
        Scheduler::default().run(&mut machine, &job, &mut mgr);
        assert!(mgr.stopped(), "the stop request must latch");
        assert_eq!(mgr.units_emitted(), 3, "no unit closes after the request");
        let trace = mgr.finish();
        assert_eq!(trace.units.len(), 3);
        // Every collected unit is complete — stop only happens at boundaries.
        for u in &trace.units {
            assert_eq!(u.counters.instructions, 10_000);
        }
    }

    #[test]
    fn other_cores_ignored() {
        // Profile core 1. Tasks 0/1 start on cores 0/1; core 1 finishes its
        // 10k task first and picks up task 2, so core 1 executes 40k
        // instructions and core 0 only 30k.
        let mut machine = Machine::new(MachineConfig::scaled(2));
        let mk = |n| {
            Task::new(
                vec![],
                vec![WorkItem::compute(
                    vec![MethodId(0)],
                    n,
                    0,
                    AccessPattern::Sequential,
                    Region::new(0x1000, 64),
                    1,
                )],
            )
        };
        let job = Job::new(vec![Stage::new("s", vec![mk(30_000), mk(10_000), mk(30_000)])]);
        let mut mgr = SamplingManager::new(ProfilerConfig {
            unit_instrs: 5_000,
            snapshot_instrs: 500,
            core: 1,
        });
        Scheduler::default().run(&mut machine, &job, &mut mgr);
        let t = mgr.finish();
        assert_eq!(t.units.len(), 8, "40k instructions on core 1 → 8 units");
    }
}
