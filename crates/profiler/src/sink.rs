//! Streaming unit sinks: where finished sampling units go.
//!
//! The sampling manager used to buffer every closed [`SamplingUnit`] in a
//! `Vec` and hand the whole trace over at the end. That forces the profile
//! to fit in memory, which the ROADMAP's production-scale goal rules out.
//! [`UnitSink`] inverts the flow: the manager *emits* each unit as it
//! closes, and any number of registered sinks consume it — an on-disk
//! writer, a metrics tally, or the classic in-memory [`TraceCollector`]
//! (which keeps `SamplingManager::finish` → `ProfileTrace` working).
//!
//! Sinks run on the profiling path, so they must never influence sampling
//! decisions (the same contract the obs layer has, DESIGN.md §11): a sink
//! observes units, it cannot reject or reorder them. The one sanctioned
//! feedback channel is [`UnitSink::stop_requested`]: a sink that has seen
//! enough (the live analyzer's early-stopping rule, DESIGN.md §16) may ask
//! the manager to stop *collecting* — the engine still runs to completion,
//! and the units already emitted are untouched.

use std::cell::{RefCell, RefMut};
use std::rc::Rc;

use simprof_engine::FaultEvent;

use crate::trace::{ProfileTrace, SamplingUnit};

/// A consumer of finished sampling units.
///
/// The manager calls [`UnitSink::accept`] once per closed unit, in unit-id
/// order, while the engine is still running; [`UnitSink::on_fault`] forwards
/// engine fault events (so persistence layers can record degradation as it
/// happens); [`UnitSink::finish`] fires once when profiling ends.
pub trait UnitSink: std::fmt::Debug {
    /// Consumes one closed sampling unit. Units arrive in id order.
    fn accept(&mut self, unit: &SamplingUnit);

    /// Observes an engine fault event. Default: ignore.
    fn on_fault(&mut self, _event: &FaultEvent) {}

    /// Profiling ended; flush any buffered state. Default: no-op.
    fn finish(&mut self) {}

    /// Whether the sink is still persisting what it accepts. A sink that
    /// latched an unrecoverable I/O error reports `false`; accepting
    /// stays infallible either way (degraded sinks swallow units), so
    /// owners that care — e.g. the CLI's on-disk writer path — check this
    /// to fall back to memory-only collection. Default: always healthy.
    fn healthy(&self) -> bool {
        true
    }

    /// Whether the sink asks profiling to stop collecting. Polled by the
    /// manager after each closed unit; once any sink returns `true` the
    /// manager latches the stop and emits no further units (the engine
    /// itself runs on). Default: never.
    fn stop_requested(&self) -> bool {
        false
    }
}

/// The classic in-memory sink: buffers every unit and materializes a
/// [`ProfileTrace`]. This is what `SamplingManager` uses by default, so
/// whole-trace workflows are unchanged.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    units: Vec<SamplingUnit>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a unit by move (the manager's zero-copy path).
    pub fn push(&mut self, unit: SamplingUnit) {
        self.units.push(unit);
    }

    /// Number of collected units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when no unit has been collected.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Materializes the collected units into a trace.
    pub fn into_trace(self, unit_instrs: u64, snapshot_instrs: u64, core: usize) -> ProfileTrace {
        ProfileTrace { unit_instrs, snapshot_instrs, core, units: self.units }
    }
}

impl UnitSink for TraceCollector {
    fn accept(&mut self, unit: &SamplingUnit) {
        self.push(unit.clone());
    }
}

/// The manager's built-in observability sink: tallies unit/snapshot/fault
/// counts per unit and flushes them to the metrics registry once at
/// `finish`, keeping the per-quantum listener path registry-free (the same
/// single-flush timing the pre-sink manager had).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ObsTally {
    units: u64,
    snapshots: u64,
    dropped: u64,
    truncated: u64,
}

impl UnitSink for ObsTally {
    fn accept(&mut self, unit: &SamplingUnit) {
        self.units += 1;
        self.snapshots += u64::from(unit.snapshots);
        self.dropped += u64::from(unit.dropped_snapshots);
        self.truncated += u64::from(unit.truncated);
        if simprof_obs::event_streaming() {
            simprof_obs::unit_closed(
                unit.id,
                unit.counters.instructions,
                unit.counters.cycles,
                u64::from(unit.snapshots),
                unit.truncated,
            );
        }
        // Trajectory series for the timeline's counter tracks (bounded
        // ring buffers; no-ops without an active session).
        simprof_obs::timeseries_push("profiler.units_total", self.units as f64);
        simprof_obs::timeseries_push(
            "mem.current_alloc_bytes",
            simprof_obs::current_alloc_bytes() as f64,
        );
    }

    fn finish(&mut self) {
        simprof_obs::counter_add("profiler.units", self.units);
        simprof_obs::counter_add("profiler.snapshots", self.snapshots);
        simprof_obs::counter_add("profiler.snapshots_dropped", self.dropped);
        simprof_obs::counter_add("profiler.units_truncated", self.truncated);
    }
}

/// A shared handle around a sink, for callers that must keep access to the
/// sink after handing it to a manager (e.g. the CLI finalizes an on-disk
/// trace writer — with the method registry — after the run completes).
///
/// Cloning shares the underlying sink; profiling is single-threaded, so a
/// plain `Rc<RefCell<_>>` suffices.
pub struct SharedSink<S> {
    inner: Rc<RefCell<S>>,
}

impl<S> SharedSink<S> {
    /// Wraps `sink` in a shared handle.
    pub fn new(sink: S) -> Self {
        Self { inner: Rc::new(RefCell::new(sink)) }
    }

    /// Mutable access to the shared sink.
    ///
    /// # Panics
    ///
    /// Panics if the sink is already borrowed (re-entrant use).
    pub fn lock(&self) -> RefMut<'_, S> {
        self.inner.borrow_mut()
    }
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        Self { inner: Rc::clone(&self.inner) }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for SharedSink<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedSink").field(&self.inner).finish()
    }
}

impl<S: UnitSink> UnitSink for SharedSink<S> {
    fn accept(&mut self, unit: &SamplingUnit) {
        self.inner.borrow_mut().accept(unit);
    }

    fn on_fault(&mut self, event: &FaultEvent) {
        self.inner.borrow_mut().on_fault(event);
    }

    fn finish(&mut self) {
        self.inner.borrow_mut().finish();
    }

    fn healthy(&self) -> bool {
        self.inner.borrow().healthy()
    }

    fn stop_requested(&self) -> bool {
        self.inner.borrow().stop_requested()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_engine::MethodId;
    use simprof_sim::Counters;

    fn unit(id: u64) -> SamplingUnit {
        SamplingUnit {
            id,
            histogram: vec![(MethodId(0), 3)],
            snapshots: 3,
            counters: Counters { instructions: 100, cycles: 150, ..Default::default() },
            slices: Vec::new(),
            truncated: false,
            dropped_snapshots: 0,
        }
    }

    #[test]
    fn collector_materializes_trace() {
        let mut c = TraceCollector::new();
        assert!(c.is_empty());
        c.accept(&unit(0));
        c.push(unit(1));
        assert_eq!(c.len(), 2);
        let t = c.into_trace(100, 10, 0);
        assert_eq!(t.unit_instrs, 100);
        assert_eq!(t.units.len(), 2);
        assert_eq!(t.units[1].id, 1);
    }

    #[test]
    fn shared_sink_forwards_and_keeps_handle() {
        let shared = SharedSink::new(TraceCollector::new());
        let mut as_sink = shared.clone();
        as_sink.accept(&unit(0));
        as_sink.accept(&unit(1));
        as_sink.finish();
        assert_eq!(shared.lock().len(), 2);
    }
}
