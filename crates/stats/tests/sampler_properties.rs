//! Property-based tests for the samplers: systematic index generation and
//! Neyman allocation must uphold their invariants on *any* input, including
//! the degenerate and non-finite corners the bugfix sweep hardened.

use proptest::prelude::*;

use simprof_stats::{optimal_allocation, systematic_indices, StratumStats};

proptest! {
    /// Systematic picks are strictly ascending (hence distinct), in range,
    /// start inside the first period, and never leave a gap wider than one
    /// period — so the picks cover the whole span.
    #[test]
    fn systematic_invariants(n in 0usize..5000, k in 0usize..200, offset in any::<usize>()) {
        let s = systematic_indices(n, k, offset);
        if n == 0 || k == 0 {
            prop_assert!(s.is_empty());
        } else if k >= n {
            prop_assert_eq!(s, (0..n).collect::<Vec<_>>());
        } else {
            let period = n / k;
            prop_assert_eq!(s.len(), k);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
            prop_assert!(s.iter().all(|&i| i < n), "in range");
            prop_assert!(s[0] < period, "start inside the first period");
            prop_assert!(
                s.windows(2).all(|w| w[1] - w[0] <= period + 1),
                "no gap wider than one period"
            );
        }
    }

    /// Offsets only slide the start phase: shifting by a whole period
    /// reproduces the same picks exactly.
    #[test]
    fn systematic_offset_is_periodic(
        n in 1usize..3000,
        k in 1usize..100,
        offset in 0usize..1_000_000,
    ) {
        if k < n {
            let period = n / k;
            let a = systematic_indices(n, k, offset);
            let b = systematic_indices(n, k, offset + period);
            prop_assert_eq!(a, b);
        }
    }

    /// Neyman allocation never panics and keeps its budget accounting exact
    /// even when stratum stddevs are NaN, infinite, or negative.
    #[test]
    fn allocation_survives_non_finite_strata(
        shapes in proptest::collection::vec((0usize..200, 0usize..5), 1..10),
        n in 0usize..300,
    ) {
        let strata: Vec<StratumStats> = shapes
            .into_iter()
            .map(|(units, shape)| {
                let stddev = match shape {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => -1.0,
                    _ => 0.75,
                };
                StratumStats { units, stddev }
            })
            .collect();
        let alloc = optimal_allocation(n, &strata);
        prop_assert_eq!(alloc.len(), strata.len());
        for (a, s) in alloc.iter().zip(&strata) {
            prop_assert!(*a <= s.units, "allocation respects the stratum cap");
            if n > 0 {
                prop_assert!(s.units == 0 || *a >= 1, "non-empty strata keep their floor");
            }
        }
        let cap: usize = strata.iter().map(|s| s.units).sum();
        let nonempty = strata.iter().filter(|s| s.units > 0).count();
        if n >= nonempty {
            prop_assert_eq!(alloc.iter().sum::<usize>(), n.min(cap), "budget accounting exact");
        }
    }
}
