//! Index sampling: seeded simple random sampling without replacement and
//! systematic sampling.
//!
//! Simple random sampling (SRS) is used both as a paper baseline (§IV-B) and
//! within each stratum of SimProf's stratified sampler. Systematic sampling is
//! the SMARTS-style baseline the paper discusses as complementary future work.

use rand::RngExt;

use crate::rng::{seeded, SeedRng};

/// Draws `k` distinct indices uniformly at random from `0..n` using Floyd's
/// algorithm, returning them in ascending order.
///
/// When `k >= n`, returns all indices `0..n`.
pub fn srs_indices(n: usize, k: usize, rng: &mut SeedRng) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    // Floyd's algorithm: O(k) draws, no allocation proportional to n.
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// Convenience wrapper around [`srs_indices`] with an explicit seed.
pub fn srs_indices_seeded(n: usize, k: usize, seed: u64) -> Vec<usize> {
    srs_indices(n, k, &mut seeded(seed))
}

/// Systematic sampling: every `n / k`-th index starting from `offset`
/// (SMARTS-style periodic selection). Returns ascending indices.
///
/// When `k >= n`, returns all indices; when `k == 0`, returns an empty vector.
///
/// Strides are computed in pure integer arithmetic — index `i` is
/// `start + ⌊i·n/k⌋` with `start = offset % ⌊n/k⌋`. Consecutive indices
/// differ by at least `⌊n/k⌋ ≥ 1` and the last lands at
/// `start + ⌊(k−1)·n/k⌋ ≤ start + n − ⌈n/k⌉ < n`, so the output is
/// strictly ascending, duplicate-free, and in range for every
/// `(n, k, offset)` — including unit counts past 2³² where the previous
/// float formulation (`trunc(start + i·(n/k))` with a `.min(n − 1)` clamp)
/// ran out of mantissa and could collide indices near the end of the
/// range. The float version also wrapped the start at `⌈n/k⌉` instead of
/// the true period `⌊n/k⌋`, so equivalent offsets produced different,
/// unevenly distributed patterns; offsets now wrap canonically
/// (`offset` and `offset + ⌊n/k⌋` select the same indices).
pub fn systematic_indices(n: usize, k: usize, offset: usize) -> Vec<usize> {
    if k == 0 || n == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n).collect();
    }
    let start = offset % (n / k);
    // u128 intermediate: `i · n` stays exact even for unit counts that
    // would overflow 64-bit multiplication.
    (0..k).map(|i| start + (i as u128 * n as u128 / k as u128) as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srs_draws_k_distinct_in_range() {
        let mut rng = seeded(9);
        for &(n, k) in &[(10usize, 3usize), (100, 20), (5, 5), (5, 9)] {
            let s = srs_indices(n, k, &mut rng);
            assert_eq!(s.len(), k.min(n));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "ascending + distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn srs_is_deterministic_per_seed() {
        assert_eq!(srs_indices_seeded(1000, 20, 7), srs_indices_seeded(1000, 20, 7));
        assert_ne!(srs_indices_seeded(1000, 20, 7), srs_indices_seeded(1000, 20, 8));
    }

    #[test]
    fn srs_is_roughly_uniform() {
        // Every index of 0..10 should be selected a reasonable number of
        // times across many draws of k=2.
        let mut counts = [0usize; 10];
        for seed in 0..2000 {
            for i in srs_indices_seeded(10, 2, seed) {
                counts[i] += 1;
            }
        }
        let expect = 2000.0 * 2.0 / 10.0;
        for &c in &counts {
            assert!((c as f64) > expect * 0.7 && (c as f64) < expect * 1.3, "count {c}");
        }
    }

    #[test]
    fn systematic_covers_span() {
        let s = systematic_indices(100, 10, 0);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(*s.last().unwrap() >= 90);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn systematic_edge_cases() {
        assert!(systematic_indices(0, 5, 0).is_empty());
        assert!(systematic_indices(10, 0, 0).is_empty());
        assert_eq!(systematic_indices(3, 10, 0), vec![0, 1, 2]);
    }

    #[test]
    fn systematic_offset_shifts_start() {
        let a = systematic_indices(100, 10, 0);
        let b = systematic_indices(100, 10, 3);
        assert_eq!(b[0], 3);
        assert_ne!(a, b);
    }

    #[test]
    fn systematic_offset_wraps_canonically() {
        // `offset` and `offset + ⌊n/k⌋` are the same phase of the period and
        // must select identical indices. The pre-integer-arithmetic version
        // wrapped at ⌈n/k⌉, so e.g. (95, 10, offset 9) started at index 9 —
        // outside the first period [0, 9) — instead of wrapping to 0.
        assert_eq!(systematic_indices(95, 10, 9), systematic_indices(95, 10, 0));
        assert_eq!(systematic_indices(10, 3, 3), systematic_indices(10, 3, 0));
        for offset in 0..40 {
            let s = systematic_indices(95, 10, offset);
            assert!(s[0] < 95 / 10, "first index {} outside first period (offset {offset})", s[0]);
            assert_eq!(
                s,
                systematic_indices(95, 10, offset + 9),
                "period-9 wrap (offset {offset})"
            );
        }
    }

    #[test]
    fn systematic_exact_past_f64_mantissa() {
        // Unit counts beyond 2^53 would collide under float truncation; the
        // integer form must stay strictly ascending, distinct, and in range.
        let n = (1u64 << 60) as usize;
        let s = systematic_indices(n, 7, 123);
        assert_eq!(s.len(), 7);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().unwrap() < n);
    }
}
