//! Index sampling: seeded simple random sampling without replacement and
//! systematic sampling.
//!
//! Simple random sampling (SRS) is used both as a paper baseline (§IV-B) and
//! within each stratum of SimProf's stratified sampler. Systematic sampling is
//! the SMARTS-style baseline the paper discusses as complementary future work.

use rand::RngExt;

use crate::rng::{seeded, SeedRng};

/// Draws `k` distinct indices uniformly at random from `0..n` using Floyd's
/// algorithm, returning them in ascending order.
///
/// When `k >= n`, returns all indices `0..n`.
pub fn srs_indices(n: usize, k: usize, rng: &mut SeedRng) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    // Floyd's algorithm: O(k) draws, no allocation proportional to n.
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// Convenience wrapper around [`srs_indices`] with an explicit seed.
pub fn srs_indices_seeded(n: usize, k: usize, seed: u64) -> Vec<usize> {
    srs_indices(n, k, &mut seeded(seed))
}

/// Systematic sampling: every `n / k`-th index starting from `offset`
/// (SMARTS-style periodic selection). Returns ascending indices.
///
/// When `k >= n`, returns all indices; when `k == 0`, returns an empty vector.
pub fn systematic_indices(n: usize, k: usize, offset: usize) -> Vec<usize> {
    if k == 0 || n == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n).collect();
    }
    let stride = n as f64 / k as f64;
    let start = offset % stride.ceil().max(1.0) as usize;
    (0..k).map(|i| ((start as f64 + i as f64 * stride) as usize).min(n - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srs_draws_k_distinct_in_range() {
        let mut rng = seeded(9);
        for &(n, k) in &[(10usize, 3usize), (100, 20), (5, 5), (5, 9)] {
            let s = srs_indices(n, k, &mut rng);
            assert_eq!(s.len(), k.min(n));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "ascending + distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn srs_is_deterministic_per_seed() {
        assert_eq!(srs_indices_seeded(1000, 20, 7), srs_indices_seeded(1000, 20, 7));
        assert_ne!(srs_indices_seeded(1000, 20, 7), srs_indices_seeded(1000, 20, 8));
    }

    #[test]
    fn srs_is_roughly_uniform() {
        // Every index of 0..10 should be selected a reasonable number of
        // times across many draws of k=2.
        let mut counts = [0usize; 10];
        for seed in 0..2000 {
            for i in srs_indices_seeded(10, 2, seed) {
                counts[i] += 1;
            }
        }
        let expect = 2000.0 * 2.0 / 10.0;
        for &c in &counts {
            assert!((c as f64) > expect * 0.7 && (c as f64) < expect * 1.3, "count {c}");
        }
    }

    #[test]
    fn systematic_covers_span() {
        let s = systematic_indices(100, 10, 0);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(*s.last().unwrap() >= 90);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn systematic_edge_cases() {
        assert!(systematic_indices(0, 5, 0).is_empty());
        assert!(systematic_indices(10, 0, 0).is_empty());
        assert_eq!(systematic_indices(3, 10, 0), vec![0, 1, 2]);
    }

    #[test]
    fn systematic_offset_shifts_start() {
        let a = systematic_indices(100, 10, 0);
        let b = systematic_indices(100, 10, 3);
        assert_eq!(b[0], 3);
        assert_ne!(a, b);
    }
}
