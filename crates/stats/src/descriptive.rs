//! Descriptive statistics: means, variances, and the coefficient-of-variation
//! summaries behind the paper's phase-homogeneity analysis (Fig. 6).

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (divides by `n - 1`).
///
/// Returns `0.0` when fewer than two observations exist — a phase with a
/// single sampling unit has no measurable spread.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population variance (divides by `n`). Returns `0.0` for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (square root of [`sample_variance`]).
pub fn stddev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Coefficient of variation: `stddev / mean`.
///
/// Returns `0.0` when the mean is zero (CPI data is strictly positive in
/// practice, so this only guards degenerate inputs).
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    stddev(xs) / m
}

/// Summary of one group of observations (one phase's CPIs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Coefficient of variation (`stddev / mean`, `0` when mean is `0`).
    pub cov: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(xs: &[f64]) -> Self {
        let m = mean(xs);
        let s = stddev(xs);
        Self { n: xs.len(), mean: m, stddev: s, cov: if m == 0.0 { 0.0 } else { s / m } }
    }
}

/// The paper's Fig. 6 triple for a clustering of observations into groups:
/// the CoV over all observations, the size-weighted mean of per-group CoVs,
/// and the maximum per-group CoV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CovTriple {
    /// CoV of the whole population of observations.
    pub population: f64,
    /// Per-group CoV weighted by group size.
    pub weighted: f64,
    /// Largest per-group CoV.
    pub max: f64,
}

/// Computes the population / weighted / max CoV triple for `values` grouped
/// by `groups` (parallel slices; `groups[i]` is the group id of `values[i]`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cov_triple(values: &[f64], groups: &[usize]) -> CovTriple {
    assert_eq!(values.len(), groups.len(), "values/groups length mismatch");
    let population = cov(values);
    let n_groups = groups.iter().copied().max().map_or(0, |g| g + 1);
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
    for (&v, &g) in values.iter().zip(groups) {
        buckets[g].push(v);
    }
    let total = values.len() as f64;
    let mut weighted = 0.0;
    let mut max = 0.0f64;
    for b in buckets.iter().filter(|b| !b.is_empty()) {
        let c = cov(b);
        weighted += c * b.len() as f64 / total;
        max = max.max(c);
    }
    CovTriple { population, weighted, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn variances() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(close(population_variance(&xs), 4.0));
        assert!(close(sample_variance(&xs), 32.0 / 7.0));
        assert_eq!(sample_variance(&[1.0]), 0.0);
    }

    #[test]
    fn cov_zero_mean_guard() {
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
        assert_eq!(cov(&[-1.0, 1.0]), 0.0);
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 4);
        assert!(close(s.mean, 2.5));
        assert!(close(s.stddev, sample_variance(&xs).sqrt()));
        assert!(close(s.cov, s.stddev / s.mean));
    }

    #[test]
    fn cov_triple_perfect_grouping() {
        // Two internally constant groups: weighted CoV must collapse to zero
        // even though the population CoV is large.
        let values = [1.0, 1.0, 1.0, 10.0, 10.0, 10.0];
        let groups = [0, 0, 0, 1, 1, 1];
        let t = cov_triple(&values, &groups);
        assert!(t.population > 0.5);
        assert_eq!(t.weighted, 0.0);
        assert_eq!(t.max, 0.0);
    }

    #[test]
    fn cov_triple_single_group_equals_population() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let groups = [0, 0, 0, 0];
        let t = cov_triple(&values, &groups);
        assert!(close(t.population, t.weighted));
        assert!(close(t.population, t.max));
    }

    #[test]
    fn cov_triple_weighted_below_population_when_separating() {
        let values = [1.0, 1.1, 0.9, 5.0, 5.2, 4.8];
        let groups = [0, 0, 0, 1, 1, 1];
        let t = cov_triple(&values, &groups);
        assert!(t.weighted < t.population);
        assert!(t.max >= t.weighted);
    }

    #[test]
    fn cov_triple_skips_empty_group_ids() {
        // Group 1 unused: must not contribute or panic.
        let t = cov_triple(&[1.0, 2.0], &[0, 2]);
        assert_eq!(t.weighted, 0.0); // singleton groups have zero stddev
    }
}
