//! Descriptive statistics: means, variances, and the coefficient-of-variation
//! summaries behind the paper's phase-homogeneity analysis (Fig. 6).

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (divides by `n - 1`).
///
/// Returns `0.0` when fewer than two observations exist — a phase with a
/// single sampling unit has no measurable spread.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population variance (divides by `n`). Returns `0.0` for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (square root of [`sample_variance`]).
pub fn stddev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Exact `q`-quantile of an **ascending-sorted** slice, by rank selection:
/// the `ceil(q·n)`-th smallest element (1-based, clamped to `[1, n]`).
/// Returns `0.0` for an empty slice.
///
/// This is the ground truth the obs layer's log2-bucket histogram
/// quantiles are property-tested against (estimate within one bucket
/// width of this value).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let target = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[target - 1]
}

/// Coefficient of variation: `stddev / mean`.
///
/// Returns `0.0` when the mean is zero (CPI data is strictly positive in
/// practice, so this only guards degenerate inputs).
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    stddev(xs) / m
}

/// Summary of one group of observations (one phase's CPIs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Coefficient of variation (`stddev / mean`, `0` when mean is `0`).
    pub cov: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(xs: &[f64]) -> Self {
        let m = mean(xs);
        let s = stddev(xs);
        Self { n: xs.len(), mean: m, stddev: s, cov: if m == 0.0 { 0.0 } else { s / m } }
    }

    /// Summarizes `values[i]` for each `i` in `idx` without materializing
    /// the selected values.
    ///
    /// The arithmetic mirrors [`Summary::of`] term for term — same summation
    /// order, same divisors, same guards — so `of_indices(v, idx)` is
    /// bit-identical to `of(&idx.map(|i| v[i]).collect::<Vec<_>>())`. Callers
    /// that bucket observations by group (e.g. per-phase CPI stats) can sort
    /// and trim index buckets instead of cloning value buckets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `values`.
    pub fn of_indices(values: &[f64], idx: &[usize]) -> Self {
        let n = idx.len();
        let m = if n == 0 { 0.0 } else { idx.iter().map(|&i| values[i]).sum::<f64>() / n as f64 };
        let var = if n < 2 {
            0.0
        } else {
            idx.iter().map(|&i| (values[i] - m) * (values[i] - m)).sum::<f64>() / (n - 1) as f64
        };
        let s = var.sqrt();
        Self { n, mean: m, stddev: s, cov: if m == 0.0 { 0.0 } else { s / m } }
    }
}

/// The paper's Fig. 6 triple for a clustering of observations into groups:
/// the CoV over all observations, the size-weighted mean of per-group CoVs,
/// and the maximum per-group CoV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CovTriple {
    /// CoV of the whole population of observations.
    pub population: f64,
    /// Per-group CoV weighted by group size.
    pub weighted: f64,
    /// Largest per-group CoV.
    pub max: f64,
}

/// Parallel slices passed to [`try_cov_triple`] had different lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthMismatch {
    /// Length of the `values` slice.
    pub values: usize,
    /// Length of the `groups` slice.
    pub groups: usize,
}

impl std::fmt::Display for LengthMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "values/groups length mismatch: {} values vs {} group ids",
            self.values, self.groups
        )
    }
}

impl std::error::Error for LengthMismatch {}

/// Computes the population / weighted / max CoV triple for `values` grouped
/// by `groups` (parallel slices; `groups[i]` is the group id of `values[i]`).
///
/// Group ids are arbitrary labels: they need not be dense or start at zero.
/// Buckets are keyed by id in a map, so a sparse id like `usize::MAX` costs
/// one map entry instead of a `max(id) + 1`-element table (which would
/// attempt to allocate the entire address space).
///
/// Returns [`LengthMismatch`] when the slices have different lengths.
pub fn try_cov_triple(values: &[f64], groups: &[usize]) -> Result<CovTriple, LengthMismatch> {
    if values.len() != groups.len() {
        return Err(LengthMismatch { values: values.len(), groups: groups.len() });
    }
    let population = cov(values);
    let mut buckets: std::collections::BTreeMap<usize, Vec<f64>> =
        std::collections::BTreeMap::new();
    for (&v, &g) in values.iter().zip(groups) {
        buckets.entry(g).or_default().push(v);
    }
    let total = values.len() as f64;
    let mut weighted = 0.0;
    let mut max = 0.0f64;
    for b in buckets.values() {
        let c = cov(b);
        weighted += c * b.len() as f64 / total;
        max = max.max(c);
    }
    Ok(CovTriple { population, weighted, max })
}

/// Panicking convenience wrapper around [`try_cov_triple`] for callers that
/// construct the slices together and know the lengths agree.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cov_triple(values: &[f64], groups: &[usize]) -> CovTriple {
    match try_cov_triple(values, groups) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn variances() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(close(population_variance(&xs), 4.0));
        assert!(close(sample_variance(&xs), 32.0 / 7.0));
        assert_eq!(sample_variance(&[1.0]), 0.0);
    }

    #[test]
    fn cov_zero_mean_guard() {
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
        assert_eq!(cov(&[-1.0, 1.0]), 0.0);
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 4);
        assert!(close(s.mean, 2.5));
        assert!(close(s.stddev, sample_variance(&xs).sqrt()));
        assert!(close(s.cov, s.stddev / s.mean));
    }

    #[test]
    fn of_indices_is_bit_identical_to_of() {
        let values = [3.25, 1.5, 9.75, 0.125, 4.5, 2.0625, 7.875];
        let idx = [4usize, 0, 6, 2];
        let picked: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        assert_eq!(Summary::of_indices(&values, &idx), Summary::of(&picked));
        assert_eq!(Summary::of_indices(&values, &[]), Summary::of(&[]));
        assert_eq!(Summary::of_indices(&values, &[3]), Summary::of(&[0.125]));
    }

    #[test]
    fn cov_triple_perfect_grouping() {
        // Two internally constant groups: weighted CoV must collapse to zero
        // even though the population CoV is large.
        let values = [1.0, 1.0, 1.0, 10.0, 10.0, 10.0];
        let groups = [0, 0, 0, 1, 1, 1];
        let t = cov_triple(&values, &groups);
        assert!(t.population > 0.5);
        assert_eq!(t.weighted, 0.0);
        assert_eq!(t.max, 0.0);
    }

    #[test]
    fn cov_triple_single_group_equals_population() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let groups = [0, 0, 0, 0];
        let t = cov_triple(&values, &groups);
        assert!(close(t.population, t.weighted));
        assert!(close(t.population, t.max));
    }

    #[test]
    fn cov_triple_weighted_below_population_when_separating() {
        let values = [1.0, 1.1, 0.9, 5.0, 5.2, 4.8];
        let groups = [0, 0, 0, 1, 1, 1];
        let t = cov_triple(&values, &groups);
        assert!(t.weighted < t.population);
        assert!(t.max >= t.weighted);
    }

    #[test]
    fn cov_triple_skips_empty_group_ids() {
        // Group 1 unused: must not contribute or panic.
        let t = cov_triple(&[1.0, 2.0], &[0, 2]);
        assert_eq!(t.weighted, 0.0); // singleton groups have zero stddev
    }

    #[test]
    fn cov_triple_sparse_group_ids_do_not_allocate_a_table() {
        // Ids are labels, not indices: `usize::MAX` used to size a
        // `max(id) + 1` bucket table, i.e. an attempt to allocate the whole
        // address space. Map bucketing makes it one entry.
        let values = [1.0, 1.0, 10.0, 10.0];
        let groups = [7, 7, usize::MAX, usize::MAX];
        let t = cov_triple(&values, &groups);
        assert!(t.population > 0.5);
        assert_eq!(t.weighted, 0.0, "both groups internally constant");
        assert_eq!(t.max, 0.0);
    }

    #[test]
    fn try_cov_triple_reports_length_mismatch() {
        let err = try_cov_triple(&[1.0, 2.0], &[0]).unwrap_err();
        assert_eq!(err, LengthMismatch { values: 2, groups: 1 });
        assert!(err.to_string().contains("length mismatch"));
        assert_eq!(try_cov_triple(&[1.0, 2.0], &[0, 1]).unwrap(), cov_triple(&[1.0, 2.0], &[0, 1]));
    }
}
