//! A minimal flat, row-major `f64` matrix.
//!
//! Feature vectors flow through the whole SimProf pipeline (vectorization →
//! feature selection → clustering → classification), so they are stored in a
//! single contiguous allocation for cache-friendly row scans rather than as a
//! `Vec<Vec<f64>>`.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
///
/// Rows are observations (sampling units), columns are features (methods).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer does not match rows*cols");
        Self { data, rows, cols }
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Self { data, rows: n, cols }
    }

    /// Number of rows (observations).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Extracts column `j` into a new vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Builds a new matrix keeping only the given columns, in the given order.
    ///
    /// This is how the pipeline projects full method-frequency vectors down to
    /// the top-K regression-selected features.
    pub fn select_columns(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, keep.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (d, &j) in dst.iter_mut().zip(keep) {
                *d = src[j];
            }
        }
        out
    }

    /// Squared Euclidean distance between two equally sized slices.
    #[inline]
    pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // Same 16-lane chunked shape as [`Matrix::dot`]: independent lane
        // accumulators the compiler can vectorize (a naive `.sum()` is a
        // serial dependency chain), reduced in a fixed tree order plus a
        // scalar tail so the result is deterministic for a given length.
        const LANES: usize = 16;
        let split = a.len() - a.len() % LANES;
        let mut acc = [0.0f64; LANES];
        for (xa, xb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for l in 0..LANES {
                let d = xa[l] - xb[l];
                acc[l] += d * d;
            }
        }
        let mut tail = 0.0;
        for (x, y) in a[split..].iter().zip(&b[split..]) {
            let d = x - y;
            tail += d * d;
        }
        let q0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let q1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        let q2 = (acc[8] + acc[9]) + (acc[10] + acc[11]);
        let q3 = (acc[12] + acc[13]) + (acc[14] + acc[15]);
        (q0 + q1) + (q2 + q3) + tail
    }

    /// Dot product of two equally sized slices, computed with a fixed
    /// 16-lane chunked kernel.
    ///
    /// The independent lane accumulators let the compiler auto-vectorize the
    /// inner loop and keep enough FMA chains in flight to hide latency; the
    /// lanes are reduced in a fixed tree order plus a scalar tail, so the
    /// result is deterministic for a given input length.
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        const LANES: usize = 16;
        let split = a.len() - a.len() % LANES;
        let mut acc = [0.0f64; LANES];
        for (xa, xb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for l in 0..LANES {
                acc[l] += xa[l] * xb[l];
            }
        }
        let mut tail = 0.0;
        for (x, y) in a[split..].iter().zip(&b[split..]) {
            tail += x * y;
        }
        let q0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let q1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        let q2 = (acc[8] + acc[9]) + (acc[10] + acc[11]);
        let q3 = (acc[12] + acc[13]) + (acc[14] + acc[15]);
        (q0 + q1) + (q2 + q3) + tail
    }

    /// Fused distance kernel: squared Euclidean distances from `point` to
    /// every row of `rows`, written into `out`, via the norm identity
    /// `‖x − y‖² = ‖x‖² + ‖y‖² − 2·x·y`.
    ///
    /// One pass per row through the [`Matrix::dot`] kernel with the norm
    /// combination fused into the same loop — no intermediate dot vector is
    /// materialized. Cancellation can drive the identity slightly negative
    /// for near-coincident points; results are clamped at `0`. Callers
    /// supply `point_sq_norm = dot(point, point)` and
    /// `row_norms = rows.row_sq_norms()` so the norms are paid once across
    /// many kernel calls.
    ///
    /// # Panics
    ///
    /// Panics (debug) on any length mismatch.
    pub fn sq_dists_to_rows(
        point: &[f64],
        point_sq_norm: f64,
        rows: &Matrix,
        row_norms: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(point.len(), rows.cols());
        debug_assert_eq!(row_norms.len(), rows.rows());
        debug_assert_eq!(out.len(), rows.rows());
        for ((o, r), &nr) in out.iter_mut().zip(rows.iter_rows()).zip(row_norms) {
            let sq = point_sq_norm + nr - 2.0 * Self::dot(point, r);
            *o = if sq > 0.0 { sq } else { 0.0 };
        }
    }

    /// Squared Euclidean norm of every row (`‖x_i‖²`), via [`Matrix::dot`].
    ///
    /// Cached by [`crate::DistCache`] so pairwise distances reduce to
    /// `‖x‖² + ‖y‖² − 2·x·y` — one dot product instead of a subtract-square
    /// pass per pair.
    pub fn row_sq_norms(&self) -> Vec<f64> {
        (0..self.rows).map(|i| Self::dot(self.row(i), self.row(i))).collect()
    }

    /// Euclidean distance between two equally sized slices.
    #[inline]
    pub fn dist(a: &[f64], b: &[f64]) -> f64 {
        Self::sq_dist(a, b).sqrt()
    }

    /// Index of the row in `centers` closest (squared Euclidean) to `point`.
    ///
    /// Ties break toward the lower index, which keeps classification
    /// deterministic. Returns `None` when `centers` is empty.
    pub fn nearest_row(centers: &Matrix, point: &[f64]) -> Option<usize> {
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (idx, c) in centers.iter_rows().enumerate() {
            let d = Self::sq_dist(c, point);
            if d < best_d {
                best_d = d;
                best = Some(idx);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.iter_rows().all(|r| r.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn select_columns_projects() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let p = m.select_columns(&[2, 0]);
        assert_eq!(p.row(0), &[3.0, 1.0]);
        assert_eq!(p.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(Matrix::sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(Matrix::dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dot_kernel_matches_naive_at_every_length() {
        // Cover the tail path (len % 16 ≠ 0) and multi-chunk lengths.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.71).cos()).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let kernel = Matrix::dot(&a, &b);
            assert!((kernel - naive).abs() <= 1e-12 * naive.abs().max(1.0), "len {len}");
        }
    }

    #[test]
    fn dot_is_bitwise_symmetric() {
        let a: Vec<f64> = (0..23).map(|i| (i as f64 * 0.9).tan()).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64 * 1.3).sin()).collect();
        assert_eq!(Matrix::dot(&a, &b).to_bits(), Matrix::dot(&b, &a).to_bits());
    }

    #[test]
    fn fused_sq_dists_match_sq_dist_and_clamp_nonnegative() {
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..21).map(|j| ((i * 13 + j * 5) as f64 * 0.29).sin() * 3.0).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let norms = m.row_sq_norms();
        let mut out = vec![0.0; m.rows()];
        for p in 0..m.rows() {
            let point = m.row(p).to_vec();
            Matrix::sq_dists_to_rows(&point, Matrix::dot(&point, &point), &m, &norms, &mut out);
            for (j, &sq) in out.iter().enumerate() {
                let naive = Matrix::sq_dist(&point, m.row(j));
                assert!(sq >= 0.0, "fused kernel must clamp at zero");
                assert!(
                    (sq - naive).abs() <= 1e-9 * naive.max(1.0),
                    "p {p} j {j}: {sq} vs {naive}"
                );
            }
        }
    }

    #[test]
    fn row_sq_norms_match_sq_dist_to_origin() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0], vec![1.0, 1.0], vec![0.0, 0.0]]);
        let norms = m.row_sq_norms();
        assert_eq!(norms, vec![25.0, 2.0, 0.0]);
    }

    #[test]
    fn nearest_row_breaks_ties_low() {
        let centers = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![5.0]]);
        assert_eq!(Matrix::nearest_row(&centers, &[1.0]), Some(0));
        assert_eq!(Matrix::nearest_row(&centers, &[4.5]), Some(2));
        assert_eq!(Matrix::nearest_row(&Matrix::zeros(0, 1), &[1.0]), None);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(1, 0), 7.0);
        m.set(0, 1, 2.0);
        assert_eq!(m.row(0), &[0.0, 2.0]);
    }
}
