//! Silhouette-coefficient model selection.
//!
//! The paper (§III-B) scores each candidate phase count `k ∈ 1..=20` with the
//! silhouette coefficient and picks "the smallest k which has at least 90 % of
//! the highest score among all k". The silhouette of point `i` is
//! `(b_i - a_i) / max(a_i, b_i)` where `a_i` is the mean distance to points in
//! its own cluster and `b_i` the smallest mean distance to another cluster.
//!
//! The silhouette is undefined at `k = 1`; SimProf needs `k = 1` to be
//! selectable (grep on Spark forms a single phase). We define structure as
//! present only when the best silhouette over `k ≥ 2` reaches a minimum
//! (`min_structure`, default 0.25). Below that — or when the data has no
//! variance at all — the selector returns `k = 1`.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::kmeans::{kmeans, KMeans, KMeansResult};
use crate::matrix::Matrix;

/// Mean silhouette coefficient of a clustering.
///
/// Returns `0.0` when the clustering has fewer than 2 non-empty clusters or
/// fewer than 2 points. Singleton clusters contribute a silhouette of `0` for
/// their point, per the standard convention.
pub fn silhouette_score(data: &Matrix, assignments: &[usize]) -> f64 {
    let n = data.rows();
    assert_eq!(assignments.len(), n, "assignment length mismatch");
    if n < 2 {
        return 0.0;
    }
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }

    let total: f64 = (0..n)
        .into_par_iter()
        .map(|i| {
            if sizes[assignments[i]] <= 1 {
                return 0.0;
            }
            // Mean distance from i to every cluster.
            let mut dist_sum = vec![0.0f64; k];
            for j in 0..n {
                if i == j {
                    continue;
                }
                dist_sum[assignments[j]] += Matrix::dist(data.row(i), data.row(j));
            }
            let own = assignments[i];
            let a = dist_sum[own] / (sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| dist_sum[c] / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            let denom = a.max(b);
            if denom == 0.0 {
                0.0
            } else {
                (b - a) / denom
            }
        })
        .sum();
    total / n as f64
}

/// Outcome of the k-selection sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KSelection {
    /// Chosen number of clusters.
    pub k: usize,
    /// Clustering result for the chosen `k`.
    pub result: KMeansResult,
    /// `(k, silhouette)` pairs for every candidate evaluated (`k ≥ 2`).
    pub scores: Vec<(usize, f64)>,
}

/// Sweeps `k ∈ 2..=k_max`, scores each clustering with the silhouette
/// coefficient, and applies the paper's rule: the smallest `k` whose score is
/// at least `threshold` (e.g. 0.9) times the best score.
///
/// Falls back to `k = 1` when the data shows no cluster structure (best
/// silhouette below `min_structure`) or has fewer than 3 rows.
pub fn choose_k(
    data: &Matrix,
    k_max: usize,
    threshold: f64,
    min_structure: f64,
    seed: u64,
) -> KSelection {
    let n = data.rows();
    let k_max = k_max.min(n);
    if n < 3 || k_max < 2 {
        return KSelection { k: 1, result: kmeans(data, KMeans::new(1, seed)), scores: Vec::new() };
    }

    let candidates: Vec<(usize, KMeansResult, f64)> = (2..=k_max)
        .map(|k| {
            let r = kmeans(data, KMeans::new(k, seed));
            let s = silhouette_score(data, &r.assignments);
            (k, r, s)
        })
        .collect();

    let best = candidates.iter().map(|&(_, _, s)| s).fold(f64::NEG_INFINITY, f64::max);
    let scores: Vec<(usize, f64)> = candidates.iter().map(|&(k, _, s)| (k, s)).collect();

    if best < min_structure {
        return KSelection { k: 1, result: kmeans(data, KMeans::new(1, seed)), scores };
    }

    let chosen = candidates
        .into_iter()
        .find(|&(_, _, s)| s >= threshold * best)
        .expect("at least the best-scoring k satisfies the threshold");
    KSelection { k: chosen.0, result: chosen.1, scores }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Matrix {
        let mut rows = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..per {
                let jitter = (i as f64 * 0.017 + ci as f64 * 0.005) % 0.1;
                rows.push(vec![cx + jitter, cy - jitter]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 15);
        let assignments: Vec<usize> = (0..30).map(|i| i / 15).collect();
        let s = silhouette_score(&data, &assignments);
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn silhouette_poor_for_bad_split() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 15);
        // Split orthogonally to the real structure.
        let assignments: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let s = silhouette_score(&data, &assignments);
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn silhouette_single_cluster_is_zero() {
        let data = blobs(&[(0.0, 0.0)], 10);
        let assignments = vec![0usize; 10];
        assert_eq!(silhouette_score(&data, &assignments), 0.0);
    }

    #[test]
    fn silhouette_handles_singletons() {
        let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0]]);
        let assignments = vec![0, 0, 1];
        let s = silhouette_score(&data, &assignments);
        assert!(s > 0.0 && s.is_finite());
    }

    #[test]
    fn choose_k_finds_three_blobs() {
        let data = blobs(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 12);
        let sel = choose_k(&data, 8, 0.9, 0.25, 42);
        assert_eq!(sel.k, 3, "scores: {:?}", sel.scores);
    }

    #[test]
    fn choose_k_collapses_to_one_without_structure() {
        // A single tight blob: no k >= 2 split is meaningfully better.
        let data = Matrix::from_rows(&vec![vec![5.0, 5.0]; 20]);
        let sel = choose_k(&data, 6, 0.9, 0.25, 42);
        assert_eq!(sel.k, 1);
        assert_eq!(sel.result.centers.rows(), 1);
    }

    #[test]
    fn choose_k_prefers_smallest_within_threshold() {
        // Two well separated blobs; k=2 scores near-best so the rule must not
        // return a larger k even if it scores marginally higher.
        let data = blobs(&[(0.0, 0.0), (50.0, 50.0)], 20);
        let sel = choose_k(&data, 10, 0.9, 0.25, 7);
        assert_eq!(sel.k, 2, "scores: {:?}", sel.scores);
    }

    #[test]
    fn choose_k_tiny_input() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let sel = choose_k(&data, 20, 0.9, 0.25, 1);
        assert_eq!(sel.k, 1);
    }

    #[test]
    fn scores_are_recorded_for_all_candidates() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 10);
        let sel = choose_k(&data, 5, 0.9, 0.25, 3);
        let ks: Vec<usize> = sel.scores.iter().map(|&(k, _)| k).collect();
        assert_eq!(ks, vec![2, 3, 4, 5]);
    }
}
