//! Silhouette-coefficient model selection.
//!
//! The paper (§III-B) scores each candidate phase count `k ∈ 1..=20` with the
//! silhouette coefficient and picks "the smallest k which has at least 90 % of
//! the highest score among all k". The silhouette of point `i` is
//! `(b_i - a_i) / max(a_i, b_i)` where `a_i` is the mean distance to points in
//! its own cluster and `b_i` the smallest mean distance to another cluster.
//!
//! The silhouette is undefined at `k = 1`; SimProf needs `k = 1` to be
//! selectable (grep on Spark forms a single phase). We define structure as
//! present only when the best silhouette over `k ≥ 2` reaches a minimum
//! (`min_structure`, default 0.25). Below that — or when the data has no
//! variance at all — the selector returns `k = 1`.
//!
//! # Performance
//!
//! `choose_k` builds one [`DistCache`] (the `O(n²·d)` part) and shares it
//! across all candidate scorings ([`silhouette_score_cached`], `O(n²)` per
//! candidate), and warm-starts each k's Lloyd run from the previous k's
//! centers plus one ++-seeded center. Scoring walks the points in fixed
//! [`SIL_CHUNK`]-sized chunks with one reused per-cluster buffer per chunk
//! (not one allocation per point) and folds the per-chunk partial sums in
//! chunk order, so the score is bit-identical at every worker count.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::distcache::DistCache;
use crate::kmeans::{kmeans, kmeans_from_centers, KMeans, KMeansResult};
use crate::matrix::Matrix;
use crate::rng::{seeded, split_seed};

/// Points per silhouette chunk: fixed (never derived from the worker count)
/// so the partial-sum association — and therefore the score bits — is the
/// same at every thread count.
const SIL_CHUNK: usize = 64;

/// Cold k-means++ restarts per candidate k when a warm start is also
/// available; the first k of the sweep (no warm start yet) uses the full
/// [`KMeans::new`] default. One cold restart racing the warm start keeps
/// the sweep deterministic while halving the Lloyd work per k — on the
/// reference benchmarks the warm start wins or ties the extra cold
/// restart's inertia, so the chosen k is unchanged.
const SWEEP_COLD_RESTARTS: usize = 1;

/// Per-cluster point counts, sized by the largest label in `assignments`.
fn cluster_sizes(assignments: &[usize]) -> Vec<usize> {
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    sizes
}

/// The silhouette of point `i` given its row of distances to all points.
/// `dist_sum` is the caller's scratch buffer (one per chunk, reused).
#[inline]
fn point_silhouette(
    row: impl Fn(usize) -> f64,
    i: usize,
    n: usize,
    assignments: &[usize],
    sizes: &[usize],
    dist_sum: &mut [f64],
) -> f64 {
    let own = assignments[i];
    if sizes[own] <= 1 {
        return 0.0; // singleton convention
    }
    dist_sum.fill(0.0);
    for j in 0..n {
        if i == j {
            continue;
        }
        dist_sum[assignments[j]] += row(j);
    }
    let a = dist_sum[own] / (sizes[own] - 1) as f64;
    let b = (0..sizes.len())
        .filter(|&c| c != own && sizes[c] > 0)
        .map(|c| dist_sum[c] / sizes[c] as f64)
        .fold(f64::INFINITY, f64::min);
    let denom = a.max(b);
    if denom == 0.0 {
        0.0
    } else {
        (b - a) / denom
    }
}

/// Mean silhouette over all points, parallel over fixed-size point chunks.
/// `row_of(i)(j)` yields the distance from `i` to `j`.
fn silhouette_chunked<R, D>(n: usize, assignments: &[usize], sizes: &[usize], row_of: R) -> f64
where
    R: Fn(usize) -> D + Sync,
    D: Fn(usize) -> f64,
{
    let k = sizes.len();
    let partials: Vec<f64> = (0..n.div_ceil(SIL_CHUNK))
        .into_par_iter()
        .map(|c| {
            let mut dist_sum = vec![0.0f64; k];
            let mut partial = 0.0;
            for i in c * SIL_CHUNK..((c + 1) * SIL_CHUNK).min(n) {
                partial += point_silhouette(row_of(i), i, n, assignments, sizes, &mut dist_sum);
            }
            partial
        })
        .collect();
    partials.iter().sum::<f64>() / n as f64
}

/// Mean silhouette coefficient of a clustering, computing distances on the
/// fly.
///
/// Returns `0.0` when the clustering has fewer than 2 non-empty clusters or
/// fewer than 2 points. Singleton clusters contribute a silhouette of `0` for
/// their point, per the standard convention.
///
/// This is the reference implementation (`O(n²·d)` per call); the `choose_k`
/// sweep scores through a shared [`DistCache`] with
/// [`silhouette_score_cached`] instead.
pub fn silhouette_score(data: &Matrix, assignments: &[usize]) -> f64 {
    let n = data.rows();
    assert_eq!(assignments.len(), n, "assignment length mismatch");
    if n < 2 {
        return 0.0;
    }
    let sizes = cluster_sizes(assignments);
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }
    silhouette_chunked(n, assignments, &sizes, |i| {
        let xi = data.row(i);
        move |j| Matrix::dist(xi, data.row(j))
    })
}

/// Mean silhouette coefficient read from a prebuilt [`DistCache`] —
/// `O(n²)` instead of `O(n²·d)`.
///
/// Same conventions as [`silhouette_score`]; the two agree to floating-point
/// noise (the cache computes distances via the norm identity).
pub fn silhouette_score_cached(cache: &DistCache, assignments: &[usize]) -> f64 {
    let n = cache.n();
    assert_eq!(assignments.len(), n, "assignment length mismatch");
    if n < 2 {
        return 0.0;
    }
    let sizes = cluster_sizes(assignments);
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }
    silhouette_chunked(n, assignments, &sizes, |i| {
        let row = cache.row(i);
        move |j| row[j]
    })
}

/// Outcome of the k-selection sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KSelection {
    /// Chosen number of clusters.
    pub k: usize,
    /// Clustering result for the chosen `k`.
    pub result: KMeansResult,
    /// `(k, silhouette)` pairs for every candidate evaluated (`k ≥ 2`).
    pub scores: Vec<(usize, f64)>,
}

/// Extends a converged `(k−1)`-center solution to `k` centers with one
/// ++-seeded addition: the new center is drawn with probability proportional
/// to squared distance from the nearest existing center.
fn extend_centers(data: &Matrix, prev: &Matrix, seed: u64) -> Matrix {
    use rand::RngExt;
    let n = data.rows();
    let d2: Vec<f64> = (0..n)
        .map(|i| {
            (0..prev.rows())
                .map(|c| Matrix::sq_dist(data.row(i), prev.row(c)))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mut rng = seeded(seed);
    let total: f64 = d2.iter().sum();
    let pick = if total <= 0.0 {
        rng.random_range(0..n)
    } else {
        let mut target = rng.random::<f64>() * total;
        let mut chosen = n - 1;
        for (i, &d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        chosen
    };
    let mut centers = Matrix::zeros(prev.rows() + 1, prev.cols());
    for c in 0..prev.rows() {
        centers.row_mut(c).copy_from_slice(prev.row(c));
    }
    centers.row_mut(prev.rows()).copy_from_slice(data.row(pick));
    centers
}

/// Sweeps `k ∈ 2..=k_max`, scores each clustering with the silhouette
/// coefficient, and applies the paper's rule: the smallest `k` whose score is
/// at least `threshold` (e.g. 0.9) times the best score.
///
/// Falls back to `k = 1` when the data shows no cluster structure (best
/// silhouette below `min_structure`) or has fewer than 3 rows.
///
/// Pairwise distances are computed once into a [`DistCache`] shared by every
/// candidate's scoring, and each `k > 2` runs both a warm start (previous
/// centers + one ++-seeded center) and [`SWEEP_COLD_RESTARTS`] cold
/// restarts, keeping whichever converges to the lower inertia. Everything is
/// deterministic in `seed` and bit-identical at every worker count.
pub fn choose_k(
    data: &Matrix,
    k_max: usize,
    threshold: f64,
    min_structure: f64,
    seed: u64,
) -> KSelection {
    let n = data.rows();
    if n < 3 || k_max.min(n) < 2 {
        let _span = simprof_obs::span!("stats.choose_k");
        simprof_obs::gauge_set("stats.chosen_k", 1.0);
        return KSelection { k: 1, result: kmeans(data, KMeans::new(1, seed)), scores: Vec::new() };
    }
    let cache = {
        let _span = simprof_obs::span!("stats.dist_cache");
        DistCache::build(data)
    };
    choose_k_with_cache(data, &cache, k_max, threshold, min_structure, seed)
}

/// [`choose_k`] against a caller-supplied [`DistCache`].
///
/// Repeated sweeps over the same data — sensitivity/coverage harnesses, or
/// thread-count equivalence runs — pay the `O(n²·d)` cache build once and
/// share it across every call; the selection itself is bit-identical to
/// [`choose_k`] (which merely builds the cache and delegates here).
///
/// # Panics
///
/// Panics if the cache was built for a different number of rows.
pub fn choose_k_with_cache(
    data: &Matrix,
    cache: &DistCache,
    k_max: usize,
    threshold: f64,
    min_structure: f64,
    seed: u64,
) -> KSelection {
    assert_eq!(cache.n(), data.rows(), "distance cache built for different data");
    let _span = simprof_obs::span!("stats.choose_k");
    let n = data.rows();
    let k_max = k_max.min(n);
    if n < 3 || k_max < 2 {
        simprof_obs::gauge_set("stats.chosen_k", 1.0);
        return KSelection { k: 1, result: kmeans(data, KMeans::new(1, seed)), scores: Vec::new() };
    }

    let mut candidates: Vec<(usize, KMeansResult, f64)> = Vec::with_capacity(k_max - 1);
    let mut prev_centers: Option<Matrix> = None;
    for k in 2..=k_max {
        let mut config = KMeans::new(k, seed);
        let result = match &prev_centers {
            None => kmeans(data, config),
            Some(prev) => {
                config.n_init = SWEEP_COLD_RESTARTS;
                let cold = kmeans(data, config);
                let init = extend_centers(data, prev, split_seed(seed, 0x3A9E ^ k as u64));
                let warm = kmeans_from_centers(data, init, config.max_iter);
                if warm.inertia < cold.inertia {
                    warm
                } else {
                    cold
                }
            }
        };
        simprof_obs::histogram_observe("stats.kmeans.iterations", result.iterations as f64);
        let s = silhouette_score_cached(cache, &result.assignments);
        prev_centers = Some(result.centers.clone());
        candidates.push((k, result, s));
    }

    let best = candidates.iter().map(|&(_, _, s)| s).fold(f64::NEG_INFINITY, f64::max);
    let scores: Vec<(usize, f64)> = candidates.iter().map(|&(k, _, s)| (k, s)).collect();

    if best < min_structure {
        simprof_obs::gauge_set("stats.chosen_k", 1.0);
        return KSelection { k: 1, result: kmeans(data, KMeans::new(1, seed)), scores };
    }

    let chosen = candidates
        .into_iter()
        .find(|&(_, _, s)| s >= threshold * best)
        .expect("at least the best-scoring k satisfies the threshold");
    simprof_obs::gauge_set("stats.chosen_k", chosen.0 as f64);
    KSelection { k: chosen.0, result: chosen.1, scores }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Matrix {
        let mut rows = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..per {
                let jitter = (i as f64 * 0.017 + ci as f64 * 0.005) % 0.1;
                rows.push(vec![cx + jitter, cy - jitter]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 15);
        let assignments: Vec<usize> = (0..30).map(|i| i / 15).collect();
        let s = silhouette_score(&data, &assignments);
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn silhouette_poor_for_bad_split() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 15);
        // Split orthogonally to the real structure.
        let assignments: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let s = silhouette_score(&data, &assignments);
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn silhouette_single_cluster_is_zero() {
        let data = blobs(&[(0.0, 0.0)], 10);
        let assignments = vec![0usize; 10];
        assert_eq!(silhouette_score(&data, &assignments), 0.0);
    }

    #[test]
    fn silhouette_handles_singletons() {
        let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0]]);
        let assignments = vec![0, 0, 1];
        let s = silhouette_score(&data, &assignments);
        assert!(s > 0.0 && s.is_finite());
    }

    #[test]
    fn choose_k_finds_three_blobs() {
        let data = blobs(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 12);
        let sel = choose_k(&data, 8, 0.9, 0.25, 42);
        assert_eq!(sel.k, 3, "scores: {:?}", sel.scores);
    }

    #[test]
    fn choose_k_collapses_to_one_without_structure() {
        // A single tight blob: no k >= 2 split is meaningfully better.
        let data = Matrix::from_rows(&vec![vec![5.0, 5.0]; 20]);
        let sel = choose_k(&data, 6, 0.9, 0.25, 42);
        assert_eq!(sel.k, 1);
        assert_eq!(sel.result.centers.rows(), 1);
    }

    #[test]
    fn choose_k_prefers_smallest_within_threshold() {
        // Two well separated blobs; k=2 scores near-best so the rule must not
        // return a larger k even if it scores marginally higher.
        let data = blobs(&[(0.0, 0.0), (50.0, 50.0)], 20);
        let sel = choose_k(&data, 10, 0.9, 0.25, 7);
        assert_eq!(sel.k, 2, "scores: {:?}", sel.scores);
    }

    #[test]
    fn choose_k_tiny_input() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let sel = choose_k(&data, 20, 0.9, 0.25, 1);
        assert_eq!(sel.k, 1);
    }

    #[test]
    fn scores_are_recorded_for_all_candidates() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 10);
        let sel = choose_k(&data, 5, 0.9, 0.25, 3);
        let ks: Vec<usize> = sel.scores.iter().map(|&(k, _)| k).collect();
        assert_eq!(ks, vec![2, 3, 4, 5]);
    }

    /// Regression: the distance-cache scoring path must match the naive
    /// implementation to 1e-12 (the cache computes distances via the norm
    /// identity, so exact bit equality is not expected).
    #[test]
    fn cached_silhouette_matches_naive_to_1e12() {
        for (centers, per, k) in [
            (vec![(0.0, 0.0), (10.0, 10.0)], 15usize, 2usize),
            (vec![(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)], 11, 3),
            (vec![(1.0, 2.0), (1.5, 2.5), (9.0, -4.0), (20.0, 20.0)], 7, 4),
        ] {
            let data = blobs(&centers, per);
            let n = data.rows();
            let assignments: Vec<usize> = (0..n).map(|i| i % k).collect();
            let naive = silhouette_score(&data, &assignments);
            let cached = silhouette_score_cached(&DistCache::build(&data), &assignments);
            assert!((naive - cached).abs() <= 1e-12, "naive {naive} vs cached {cached} (k = {k})");
        }
    }

    #[test]
    fn cached_silhouette_degenerate_cases_match_naive() {
        let data = blobs(&[(0.0, 0.0)], 10);
        let cache = DistCache::build(&data);
        assert_eq!(silhouette_score_cached(&cache, &[0usize; 10]), 0.0);
        let tiny = Matrix::from_rows(&[vec![1.0]]);
        assert_eq!(silhouette_score_cached(&DistCache::build(&tiny), &[0]), 0.0);
    }

    #[test]
    fn choose_k_with_prebuilt_cache_is_bit_identical() {
        let data = blobs(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 12);
        let cache = DistCache::build(&data);
        let direct = choose_k(&data, 8, 0.9, 0.25, 42);
        // Two sweeps off the same cache: both must match the build-per-call
        // path exactly.
        for _ in 0..2 {
            let shared = choose_k_with_cache(&data, &cache, 8, 0.9, 0.25, 42);
            assert_eq!(shared.k, direct.k);
            assert_eq!(shared.result.assignments, direct.result.assignments);
            assert_eq!(shared.result.centers, direct.result.centers);
            assert_eq!(shared.result.inertia.to_bits(), direct.result.inertia.to_bits());
            for (&(ka, sa), &(kb, sb)) in shared.scores.iter().zip(&direct.scores) {
                assert_eq!(ka, kb);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "distance cache built for different data")]
    fn choose_k_with_cache_rejects_mismatched_cache() {
        let data = blobs(&[(0.0, 0.0), (10.0, 0.0)], 8);
        let other = blobs(&[(0.0, 0.0)], 5);
        let cache = DistCache::build(&other);
        let _ = choose_k_with_cache(&data, &cache, 4, 0.9, 0.25, 1);
    }

    #[test]
    fn warm_started_sweep_still_finds_structure() {
        // A sweep deep enough that warm starts kick in for most candidates.
        let data = blobs(&[(0.0, 0.0), (12.0, 0.0), (0.0, 12.0), (12.0, 12.0)], 9);
        let sel = choose_k(&data, 10, 0.9, 0.25, 13);
        assert_eq!(sel.k, 4, "scores: {:?}", sel.scores);
        assert_eq!(sel.result.assignments.len(), 36);
    }
}
