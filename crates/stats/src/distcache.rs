//! Shared pairwise-distance cache for the k-selection sweep.
//!
//! `choose_k` scores up to 19 candidate clusterings of the *same* data with
//! the silhouette coefficient, and every score needs all `n·(n−1)/2`
//! pairwise distances. Recomputing them per candidate costs
//! `O(k_max · n² · d)`; building the matrix once turns the sweep into one
//! `O(n² · d)` build plus `O(k_max · n²)` cache scans.
//!
//! The build uses the fused distance kernel [`Matrix::sq_dists_to_rows`]
//! (the identity `‖x − y‖² = ‖x‖² + ‖y‖² − 2·x·y` with the row-norm cache
//! from [`Matrix::row_sq_norms`]). Rows are computed independently (each
//! row does its own full `n`-column pass), so the parallel build is
//! deterministic at any worker count, and — because `dot` and `+` are
//! bitwise commutative — the matrix is exactly symmetric.
//!
//! Memory is `n² × 8` bytes (a 2,000-unit trace caches 32 MB); the sweep in
//! [`crate::choose_k`] is the intended scope, building once per call and
//! dropping the cache with it.

use rayon::prelude::*;

use crate::matrix::Matrix;

/// A dense `n × n` matrix of Euclidean distances between the rows of one
/// [`Matrix`].
#[derive(Debug, Clone)]
pub struct DistCache {
    d: Vec<f64>,
    n: usize,
}

impl DistCache {
    /// Builds the full pairwise-distance matrix for `data`'s rows
    /// (parallel over rows; deterministic at any worker count).
    pub fn build(data: &Matrix) -> Self {
        let n = data.rows();
        let norms = data.row_sq_norms();
        let rows: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut row = vec![0.0f64; n];
                Matrix::sq_dists_to_rows(data.row(i), norms[i], data, &norms, &mut row);
                for (j, out) in row.iter_mut().enumerate() {
                    *out = if j == i { 0.0 } else { out.sqrt() };
                }
                row
            })
            .collect();
        let mut d = Vec::with_capacity(n * n);
        for row in rows {
            d.extend_from_slice(&row);
        }
        Self { d, n }
    }

    /// Number of rows (= points) the cache covers.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// All distances from point `i`, as a slice of length `n`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.n);
        &self.d[i * self.n..(i + 1) * self.n]
    }

    /// Distance between points `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(n: usize, d: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| ((i * d + j) as f64 * 0.13).sin() * 3.0).collect())
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn matches_naive_distance() {
        let m = wavy(17, 5);
        let c = DistCache::build(&m);
        for i in 0..17 {
            for j in 0..17 {
                let naive = Matrix::dist(m.row(i), m.row(j));
                assert!(
                    (c.dist(i, j) - naive).abs() <= 1e-12 * naive.max(1.0),
                    "({i},{j}): {} vs {naive}",
                    c.dist(i, j)
                );
            }
        }
    }

    #[test]
    fn symmetric_with_zero_diagonal() {
        let m = wavy(11, 7);
        let c = DistCache::build(&m);
        for i in 0..11 {
            assert_eq!(c.dist(i, i), 0.0);
            for j in 0..11 {
                assert_eq!(c.dist(i, j).to_bits(), c.dist(j, i).to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn coincident_points_clamp_to_zero() {
        let m = Matrix::from_rows(&vec![vec![1e8, -1e8, 3.0]; 4]);
        let c = DistCache::build(&m);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.dist(i, j), 0.0);
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let c = DistCache::build(&Matrix::zeros(0, 3));
        assert_eq!(c.n(), 0);
    }
}
