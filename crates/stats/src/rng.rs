//! Deterministic seeding helpers.
//!
//! Every stochastic routine in the workspace (k-means++ seeding, simple random
//! sampling, data synthesis, Kronecker edge placement, perturbation models)
//! takes an explicit `u64` seed so that whole experiments reproduce
//! bit-for-bit. This module centralizes RNG construction and seed derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used across the workspace.
pub type SeedRng = StdRng;

/// Builds a deterministic RNG from a `u64` seed.
pub fn seeded(seed: u64) -> SeedRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a new seed from a base seed and a salt.
///
/// Used to give independent deterministic streams to sub-components (e.g.
/// per-partition data generation, per-repetition sampling draws) without the
/// streams being trivially correlated. Uses the SplitMix64 finalizer, which
/// mixes every input bit into every output bit.
pub fn split_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u64> = (0..8).map(|_| seeded(42).random()).collect();
        let b: Vec<u64> = (0..8).map(|_| seeded(42).random()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = seeded(1);
        let mut r2 = seeded(2);
        let a: u64 = r1.random();
        let b: u64 = r2.random();
        assert_ne!(a, b);
    }

    #[test]
    fn split_seed_varies_by_salt() {
        let s0 = split_seed(7, 0);
        let s1 = split_seed(7, 1);
        let s2 = split_seed(7, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
    }

    #[test]
    fn split_seed_is_pure() {
        assert_eq!(split_seed(123, 456), split_seed(123, 456));
    }
}
