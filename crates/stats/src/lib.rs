//! Statistics substrate for SimProf.
//!
//! This crate contains every statistical primitive the SimProf pipeline is
//! built on, implemented from scratch:
//!
//! * [`matrix`] — a flat, row-major `f64` matrix used as the feature-vector
//!   container throughout the pipeline.
//! * [`descriptive`] — means, variances, coefficient of variation (CoV) and
//!   the weighted-CoV summary used by the paper's Fig. 6.
//! * [`kmeans`] — k-means clustering with k-means++ seeding (phase formation,
//!   §III-B of the paper).
//! * [`silhouette`] — silhouette-coefficient model selection implementing the
//!   paper's "smallest k with at least 90 % of the best score" rule, with a
//!   distance-cached scoring path and a warm-started sweep.
//! * [`distcache`] — the pairwise-distance matrix built once per `choose_k`
//!   sweep and shared across all candidate scorings.
//! * [`bic`] — SimPoint/X-means BIC model selection, the related-work
//!   alternative the ablations compare against.
//! * [`regression`] — univariate linear-regression (F-test) feature scoring
//!   used to select the top-K methods most correlated with IPC.
//! * [`stratified`] — stratified random sampling: Neyman optimal allocation
//!   (Eq. 1), the stratified standard error (Eq. 4) and confidence intervals
//!   (Eqs. 2–3), plus the required-sample-size solver behind Fig. 8.
//! * [`sampling`] — seeded simple-random and systematic index sampling.
//! * [`rng`] — deterministic seeding helpers; every stochastic routine in the
//!   workspace takes an explicit `u64` seed.

pub mod bic;
pub mod descriptive;
pub mod distcache;
pub mod kmeans;
pub mod matrix;
pub mod regression;
pub mod rng;
pub mod sampling;
pub mod silhouette;
pub mod stratified;

pub use bic::{bic_score, choose_k_bic, BicSelection};
pub use descriptive::{
    cov, cov_triple, mean, population_variance, quantile_sorted, sample_variance, stddev,
    try_cov_triple, CovTriple, LengthMismatch, Summary,
};
pub use distcache::DistCache;
pub use kmeans::{
    kmeans, kmeans_from_centers, kmeans_from_centers_reference, kmeans_minibatch, KMeans,
    KMeansResult,
};
pub use matrix::Matrix;
pub use regression::{
    f_regression, f_score_from_moments, select_top_k, top_k_features, ColumnMoments,
};
pub use rng::{seeded, split_seed, SeedRng};
pub use sampling::{srs_indices, srs_indices_seeded, systematic_indices};
pub use silhouette::{
    choose_k, choose_k_with_cache, silhouette_score, silhouette_score_cached, KSelection,
};
pub use stratified::{
    confidence_interval, optimal_allocation, proportional_allocation, required_sample_size,
    stratified_se, StratumStats,
};
