//! Stratified random sampling: Neyman optimal allocation, the stratified
//! standard error, confidence intervals, and the required-sample-size solver.
//!
//! These implement Eqs. 1–5 of the paper (§III-C). Strata are phases; the
//! measurement is CPI. Optimal allocation gives phases with more sampling
//! units and higher CPI variance a larger share of the simulation points:
//!
//! ```text
//! n_h = n · (N_h σ_h) / Σ_i (N_i σ_i)                            (Eq. 1)
//! SE  = (1/N) √( Σ_h N_h² (N_h − n_h)/(N_h − 1) s_h² / n_h )     (Eq. 4)
//! CI  = mean ± z · SE                                            (Eqs. 2–3)
//! ```
//!
//! The finite-population correction is the standard without-replacement
//! form `(N_h − n_h)/(N_h − 1)`, not the simplified `1 − n_h/N_h`; the
//! simplified form understates the error for tiny strata (exactly the
//! regime live early-stopping operates in) by up to a factor of
//! `N_h/(N_h − 1)` inside the square root.

use serde::{Deserialize, Serialize};

/// Population statistics of one stratum (phase).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratumStats {
    /// Total number of sampling units in the stratum (`N_h`).
    pub units: usize,
    /// Standard deviation of the measurement within the stratum (`σ_h`).
    pub stddev: f64,
}

/// Neyman optimal allocation (Eq. 1) of `n` sample slots across strata.
///
/// # Examples
///
/// ```
/// use simprof_stats::{optimal_allocation, StratumStats};
///
/// // A large noisy phase and a small quiet one: the noisy phase gets
/// // nearly the whole budget.
/// let strata = [
///     StratumStats { units: 100, stddev: 2.0 },
///     StratumStats { units: 50, stddev: 0.1 },
/// ];
/// let alloc = optimal_allocation(10, &strata);
/// assert_eq!(alloc.iter().sum::<usize>(), 10);
/// assert!(alloc[0] >= 8);
/// assert!(alloc[1] >= 1, "every non-empty stratum keeps one slot");
/// ```
///
/// Deviations from the raw formula, needed to make the allocation usable:
///
/// * every non-empty stratum receives at least one slot (a phase mean cannot
///   be estimated from zero points),
/// * no stratum receives more slots than it has units (`n_h ≤ N_h`),
/// * leftover slots after rounding go to the strata with the largest
///   fractional remainders (largest-remainder rounding), keeping `Σ n_h`
///   as close to `n` as the caps allow.
///
/// Returns one sample size per stratum.
pub fn optimal_allocation(n: usize, strata: &[StratumStats]) -> Vec<usize> {
    allocate(n, strata, |s| s.units as f64 * s.stddev)
}

/// Proportional allocation: `n_h ∝ N_h`, ignoring variance. Used as an
/// ablation against Neyman allocation.
pub fn proportional_allocation(n: usize, strata: &[StratumStats]) -> Vec<usize> {
    allocate(n, strata, |s| s.units as f64)
}

fn allocate(
    n: usize,
    strata: &[StratumStats],
    weight: impl Fn(&StratumStats) -> f64,
) -> Vec<usize> {
    let m = strata.len();
    if m == 0 || n == 0 {
        return vec![0; m];
    }
    let nonempty: Vec<usize> = (0..m).filter(|&h| strata[h].units > 0).collect();
    if nonempty.is_empty() {
        return vec![0; m];
    }

    // A non-finite or negative weight (NaN/∞ stddev from degenerate phase
    // measurements) would poison every share through `total_w`; treat it as
    // "no usable variance signal" — weight zero — so the stratum still gets
    // its ≥1 floor but no variance-driven share.
    let weight = |s: &StratumStats| -> f64 {
        let w = weight(s);
        if w.is_finite() && w > 0.0 {
            w
        } else {
            0.0
        }
    };
    let total_w: f64 = nonempty.iter().map(|&h| weight(&strata[h])).sum();
    let mut alloc = vec![0usize; m];
    let mut frac = vec![0.0f64; m];

    if total_w <= 0.0 {
        // All weights zero (e.g. every stratum has zero variance under Neyman):
        // fall back to proportional by unit count.
        let total_units: f64 = nonempty.iter().map(|&h| strata[h].units as f64).sum();
        for &h in &nonempty {
            let share = n as f64 * strata[h].units as f64 / total_units;
            alloc[h] = share.floor() as usize;
            frac[h] = share - share.floor();
        }
    } else {
        for &h in &nonempty {
            let share = n as f64 * weight(&strata[h]) / total_w;
            alloc[h] = share.floor() as usize;
            frac[h] = share - share.floor();
        }
    }

    // Floor at 1 for non-empty strata, cap at N_h.
    for &h in &nonempty {
        alloc[h] = alloc[h].clamp(1, strata[h].units);
    }

    // Largest-remainder redistribution toward the target total n (bounded by
    // the sum of caps).
    let cap_total: usize = nonempty.iter().map(|&h| strata[h].units).sum();
    let target = n.min(cap_total);
    let mut current: usize = alloc.iter().sum();

    if current < target {
        let mut order: Vec<usize> = nonempty.clone();
        order.sort_by(|&a, &b| frac[b].total_cmp(&frac[a]).then(a.cmp(&b)));
        let mut i = 0;
        while current < target {
            let h = order[i % order.len()];
            if alloc[h] < strata[h].units {
                alloc[h] += 1;
                current += 1;
            }
            i += 1;
            if i > order.len() * (target + 1) {
                break; // safety: all caps hit
            }
        }
    } else if current > target {
        // Over-allocation only happens via the ≥1 floors; shrink the largest
        // allocations (smallest fractional remainder first) but never below 1.
        let mut order: Vec<usize> = nonempty.clone();
        order.sort_by(|&a, &b| frac[a].total_cmp(&frac[b]).then(a.cmp(&b)));
        let mut i = 0;
        while current > target && i < order.len() * (current + 1) {
            let h = order[i % order.len()];
            if alloc[h] > 1 {
                alloc[h] -= 1;
                current -= 1;
            }
            i += 1;
            // If every stratum is at 1 and we still exceed target, stop: the
            // ≥1 floor takes precedence over the exact total.
            if alloc.iter().zip(strata).all(|(&a, s)| s.units == 0 || a <= 1) {
                break;
            }
        }
    }
    alloc
}

/// Standard error of the stratified estimator (Eq. 4).
///
/// `strata[h]` carries the population size `N_h` and the *sample* standard
/// deviation `s_h`; `sample_sizes[h]` is `n_h`. Strata with `n_h == 0`
/// contribute nothing (their mean is assumed known/skipped); strata with
/// `n_h == N_h` are fully enumerated and contribute nothing either (the
/// finite-population correction `(N_h − n_h)/(N_h − 1)` vanishes).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn stratified_se(strata: &[StratumStats], sample_sizes: &[usize]) -> f64 {
    assert_eq!(strata.len(), sample_sizes.len(), "strata/sample_sizes length mismatch");
    let total_units: usize = strata.iter().map(|s| s.units).sum();
    if total_units == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (s, &nh) in strata.iter().zip(sample_sizes) {
        if nh == 0 || s.units == 0 || nh >= s.units {
            continue;
        }
        let big_n = s.units as f64;
        // Standard without-replacement fpc. `nh < s.units` here, so
        // `s.units ≥ 2` and the denominator is positive.
        let fpc = (big_n - nh as f64) / (big_n - 1.0);
        acc += big_n * big_n * fpc * (s.stddev * s.stddev) / nh as f64;
    }
    acc.sqrt() / total_units as f64
}

/// Confidence interval `mean ± z · SE` (Eqs. 2–3). Returns `(low, high)`.
pub fn confidence_interval(mean: f64, se: f64, z: f64) -> (f64, f64) {
    let margin = z * se;
    (mean - margin, mean + margin)
}

/// Smallest total sample size `n` whose optimally allocated stratified
/// standard error satisfies `z · SE ≤ target_margin` (absolute units of the
/// measurement).
///
/// This is the solver behind Fig. 8: the paper reports, per workload, the
/// sample size SimProf needs for a 99.7 % confidence interval (`z = 3`) with
/// a 5 % or 2 % relative error (`target_margin = 0.05 · mean_CPI` etc.).
///
/// Returns `None` when even enumerating every unit misses the target (cannot
/// happen mathematically — SE is 0 at full enumeration — but guards against
/// degenerate inputs).
pub fn required_sample_size(strata: &[StratumStats], z: f64, target_margin: f64) -> Option<usize> {
    let total_units: usize = strata.iter().map(|s| s.units).sum();
    if total_units == 0 {
        return Some(0);
    }
    let meets = |n: usize| -> bool {
        let alloc = optimal_allocation(n, strata);
        z * stratified_se(strata, &alloc) <= target_margin
    };
    if !meets(total_units) {
        return None;
    }
    // Binary search the smallest satisfying n. SE is monotonically
    // non-increasing in n under optimal allocation (up to rounding wiggle),
    // so binary search gives the right neighbourhood; a short linear scan
    // afterwards absorbs rounding non-monotonicity.
    let mut lo = 1usize;
    let mut hi = total_units;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // Absorb rounding wiggle: scan a small window below.
    let mut best = lo;
    let window_lo = lo.saturating_sub(8).max(1);
    for n in (window_lo..lo).rev() {
        if meets(n) {
            best = n;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strata() -> Vec<StratumStats> {
        vec![
            StratumStats { units: 100, stddev: 2.0 },
            StratumStats { units: 100, stddev: 0.5 },
            StratumStats { units: 50, stddev: 0.0 },
        ]
    }

    #[test]
    fn neyman_favors_high_variance() {
        let alloc = optimal_allocation(20, &strata());
        assert_eq!(alloc.iter().sum::<usize>(), 20);
        assert!(alloc[0] > alloc[1], "{alloc:?}");
        assert!(alloc[1] > alloc[2] || alloc[2] == 1, "{alloc:?}");
        // σ=0 stratum still gets its floor of one point.
        assert_eq!(alloc[2], 1);
    }

    #[test]
    fn neyman_matches_formula_ratio() {
        // Weights: 200 vs 50 vs 0 → ≈ 16 vs 4 vs floor.
        let alloc = optimal_allocation(20, &strata());
        assert!(alloc[0] >= 14 && alloc[0] <= 16, "{alloc:?}");
    }

    #[test]
    fn proportional_ignores_variance() {
        let alloc = proportional_allocation(25, &strata());
        assert_eq!(alloc.iter().sum::<usize>(), 25);
        assert_eq!(alloc[0], alloc[1], "{alloc:?}");
    }

    #[test]
    fn allocation_caps_at_stratum_size() {
        let s =
            vec![StratumStats { units: 3, stddev: 10.0 }, StratumStats { units: 100, stddev: 0.1 }];
        let alloc = optimal_allocation(50, &s);
        assert!(alloc[0] <= 3);
        assert_eq!(alloc.iter().sum::<usize>(), 50);
    }

    #[test]
    fn allocation_handles_total_oversubscription() {
        let s =
            vec![StratumStats { units: 3, stddev: 1.0 }, StratumStats { units: 2, stddev: 1.0 }];
        let alloc = optimal_allocation(50, &s);
        assert_eq!(alloc, vec![3, 2]);
    }

    #[test]
    fn allocation_all_zero_variance_falls_back_proportional() {
        let s =
            vec![StratumStats { units: 60, stddev: 0.0 }, StratumStats { units: 30, stddev: 0.0 }];
        let alloc = optimal_allocation(9, &s);
        assert_eq!(alloc.iter().sum::<usize>(), 9);
        assert!(alloc[0] > alloc[1]);
    }

    #[test]
    fn allocation_tolerates_non_finite_stddev() {
        // A NaN stddev (degenerate phase measurement) used to poison every
        // Neyman share through the weight sum and then panic inside the
        // largest-remainder sort (`partial_cmp(..).unwrap()` on NaN
        // fractions). It must instead act as a zero-variance stratum: keep
        // the ≥1 floor, surrender the variance-driven share.
        let s = vec![
            StratumStats { units: 10, stddev: f64::NAN },
            StratumStats { units: 10, stddev: 1.0 },
        ];
        let alloc = optimal_allocation(5, &s);
        assert_eq!(alloc.iter().sum::<usize>(), 5, "{alloc:?}");
        assert!(alloc[0] >= 1 && alloc[1] > alloc[0], "{alloc:?}");

        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let s = vec![
                StratumStats { units: 8, stddev: bad },
                StratumStats { units: 8, stddev: 2.0 },
                StratumStats { units: 4, stddev: 0.5 },
            ];
            let alloc = optimal_allocation(6, &s);
            assert_eq!(alloc.iter().sum::<usize>(), 6, "stddev={bad}: {alloc:?}");
            assert!(alloc.iter().all(|&a| a >= 1), "stddev={bad}: {alloc:?}");
        }
    }

    #[test]
    fn allocation_all_non_finite_falls_back_proportional() {
        let s = vec![
            StratumStats { units: 60, stddev: f64::NAN },
            StratumStats { units: 30, stddev: f64::INFINITY },
        ];
        let alloc = optimal_allocation(9, &s);
        assert_eq!(alloc.iter().sum::<usize>(), 9, "{alloc:?}");
        assert!(alloc[0] > alloc[1], "unit-proportional fallback: {alloc:?}");
    }

    #[test]
    fn allocation_empty_inputs() {
        assert!(optimal_allocation(5, &[]).is_empty());
        assert_eq!(optimal_allocation(0, &strata()), vec![0, 0, 0]);
        let s = vec![StratumStats { units: 0, stddev: 1.0 }];
        assert_eq!(optimal_allocation(5, &s), vec![0]);
    }

    #[test]
    fn se_decreases_with_sample_size() {
        let s = strata();
        let se5 = stratified_se(&s, &optimal_allocation(5, &s));
        let se20 = stratified_se(&s, &optimal_allocation(20, &s));
        let se100 = stratified_se(&s, &optimal_allocation(100, &s));
        assert!(se5 > se20, "{se5} > {se20}");
        assert!(se20 > se100, "{se20} > {se100}");
    }

    #[test]
    fn se_zero_at_full_enumeration() {
        let s = strata();
        let full: Vec<usize> = s.iter().map(|x| x.units).collect();
        assert_eq!(stratified_se(&s, &full), 0.0);
    }

    #[test]
    fn se_matches_hand_computation() {
        // Single stratum:
        //   SE = sqrt(N² fpc s²/n)/N = s/sqrt(n) · sqrt((N−n)/(N−1))
        //      = 2/sqrt(25) · sqrt(75/99)
        let s = vec![StratumStats { units: 100, stddev: 2.0 }];
        let se = stratified_se(&s, &[25]);
        let expect = 2.0 / 5.0 * ((100.0 - 25.0) / 99.0f64).sqrt();
        assert!((se - expect).abs() < 1e-12, "{se} vs {expect}");
    }

    #[test]
    fn se_uses_standard_fpc_not_simplified() {
        // Two strata, hand-computed with the standard without-replacement
        // fpc (N−n)/(N−1):
        //   h=0: N=10, s=3, n=4 → 100 · (6/9) · 9/4  = 150
        //   h=1: N=5,  s=1, n=2 → 25  · (3/4) · 1/2  = 9.375
        //   SE = sqrt(159.375) / 15
        let s =
            vec![StratumStats { units: 10, stddev: 3.0 }, StratumStats { units: 5, stddev: 1.0 }];
        let se = stratified_se(&s, &[4, 2]);
        let expect = (150.0f64 + 9.375).sqrt() / 15.0;
        assert!((se - expect).abs() < 1e-12, "{se} vs {expect}");
        // The simplified 1−n/N form would claim less error; the standard
        // fpc must be strictly larger for these tiny strata.
        let simplified = (100.0f64 * 0.6 * 9.0 / 4.0 + 25.0 * 0.6 * 0.5).sqrt() / 15.0;
        assert!(se > simplified, "{se} must exceed optimistic {simplified}");
    }

    #[test]
    fn confidence_interval_symmetric() {
        let (lo, hi) = confidence_interval(10.0, 0.5, 3.0);
        assert_eq!(lo, 8.5);
        assert_eq!(hi, 11.5);
    }

    #[test]
    fn required_size_tightens_with_margin() {
        let s = strata();
        let n5 = required_sample_size(&s, 3.0, 0.25).unwrap();
        let n2 = required_sample_size(&s, 3.0, 0.10).unwrap();
        assert!(n2 > n5, "{n2} > {n5}");
        // The found n actually meets the target.
        let alloc = optimal_allocation(n2, &s);
        assert!(3.0 * stratified_se(&s, &alloc) <= 0.10 + 1e-12);
    }

    #[test]
    fn required_size_minimal() {
        let s = strata();
        let n = required_sample_size(&s, 3.0, 0.25).unwrap();
        assert!(n >= 3, "floors force at least one per stratum: {n}");
        if n > 3 {
            let alloc = optimal_allocation(n - 1, &s);
            assert!(
                3.0 * stratified_se(&s, &alloc) > 0.25,
                "n-1 = {} should not meet the target",
                n - 1
            );
        }
    }

    #[test]
    fn required_size_zero_variance_population() {
        let s = vec![StratumStats { units: 50, stddev: 0.0 }];
        assert_eq!(required_sample_size(&s, 3.0, 0.01), Some(1));
    }
}
