//! Univariate linear-regression feature scoring.
//!
//! The paper (§III-B) selects the top-K methods whose per-unit frequencies are
//! most correlated with performance (IPC), using "the univariate linear
//! regression test". This is the classic F-test on the slope of a univariate
//! least-squares fit — the same statistic as scikit-learn's `f_regression` —
//! applied to one feature column at a time:
//!
//! ```text
//! r_j = corr(X[:, j], y)          F_j = r_j^2 / (1 - r_j^2) * (n - 2)
//! ```
//!
//! Constant columns (zero variance) carry no information about performance and
//! score `0`; this is exactly how the ubiquitous executor-startup methods the
//! paper mentions get eliminated.

use crate::matrix::Matrix;

/// Computes the univariate regression F-score for every column of `x` against
/// the response `y`.
///
/// Returns one score per column. Degenerate cases (fewer than 3 observations,
/// constant column, constant response) score `0.0`. Perfectly correlated
/// columns score `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`.
pub fn f_regression(x: &Matrix, y: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), x.rows(), "response length must match rows");
    let n = x.rows();
    if n < 3 {
        return vec![0.0; x.cols()];
    }
    let nf = n as f64;
    let y_mean = y.iter().sum::<f64>() / nf;
    let y_ss: f64 = y.iter().map(|&v| (v - y_mean) * (v - y_mean)).sum();
    if y_ss == 0.0 {
        return vec![0.0; x.cols()];
    }

    // One pass per column over the row-major matrix: accumulate column sums,
    // then a second pass for centered cross-products.
    let cols = x.cols();
    let mut col_mean = vec![0.0; cols];
    for row in x.iter_rows() {
        for (m, &v) in col_mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut col_mean {
        *m /= nf;
    }

    let mut sxy = vec![0.0; cols];
    let mut sxx = vec![0.0; cols];
    for (i, row) in x.iter_rows().enumerate() {
        let dy = y[i] - y_mean;
        for j in 0..cols {
            let dx = row[j] - col_mean[j];
            sxy[j] += dx * dy;
            sxx[j] += dx * dx;
        }
    }

    (0..cols)
        .map(|j| {
            if sxx[j] == 0.0 {
                return 0.0;
            }
            let r2 = (sxy[j] * sxy[j]) / (sxx[j] * y_ss);
            // Clamp tiny numeric overshoot of r^2 past 1.
            let r2 = r2.min(1.0);
            if r2 >= 1.0 {
                f64::INFINITY
            } else {
                r2 / (1.0 - r2) * (nf - 2.0)
            }
        })
        .collect()
}

/// Returns the indices of the `k` highest-scoring features, sorted by
/// descending score (ties break toward the lower column index, keeping
/// selection deterministic).
///
/// Features with score `0` are only included if fewer than `k` features have
/// positive scores — matching the intent of dropping uninformative methods.
pub fn top_k_features(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx.truncate(k);
    // Drop trailing zero-score features; keep a single column when every
    // score is zero so downstream clustering still has a feature space.
    let positive = idx.iter().filter(|&&j| scores[j] > 0.0).count();
    idx.truncate(positive.max(1).min(idx.len()));
    idx
}

/// Convenience: scores all features of `x` against `y` and projects `x` onto
/// the top-`k` columns. Returns the projected matrix and the kept column
/// indices (in score order).
pub fn select_top_k(x: &Matrix, y: &[f64], k: usize) -> (Matrix, Vec<usize>) {
    let scores = f_regression(x, y);
    let keep = top_k_features(&scores, k);
    (x.select_columns(&keep), keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_correlated_feature_wins() {
        // col0 = y exactly, col1 = noise-ish fixed values, col2 constant.
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = Matrix::from_rows(&[
            vec![1.0, 3.0, 7.0],
            vec![2.0, 1.0, 7.0],
            vec![3.0, 4.0, 7.0],
            vec![4.0, 1.0, 7.0],
            vec![5.0, 5.0, 7.0],
        ]);
        let s = f_regression(&x, &y);
        assert!(s[0].is_infinite());
        assert!(s[1].is_finite() && s[1] > 0.0);
        assert_eq!(s[2], 0.0);
        assert_eq!(top_k_features(&s, 2), vec![0, 1]);
    }

    #[test]
    fn constant_response_scores_zero() {
        let y = vec![2.0; 4];
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        assert_eq!(f_regression(&x, &y), vec![0.0]);
    }

    #[test]
    fn negative_correlation_scores_high() {
        let y = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]]);
        let s = f_regression(&x, &y);
        assert!(s[0].is_infinite(), "sign must not matter: {:?}", s);
    }

    #[test]
    fn too_few_rows_scores_zero() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert_eq!(f_regression(&x, &[1.0, 2.0]), vec![0.0]);
    }

    #[test]
    fn top_k_drops_zero_scores() {
        let scores = [0.0, 5.0, 0.0, 3.0];
        assert_eq!(top_k_features(&scores, 4), vec![1, 3]);
        assert_eq!(top_k_features(&scores, 1), vec![1]);
    }

    #[test]
    fn top_k_all_zero_keeps_one() {
        let scores = [0.0, 0.0, 0.0];
        assert_eq!(top_k_features(&scores, 2), vec![0]);
    }

    #[test]
    fn select_top_k_projects_matrix() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let x =
            Matrix::from_rows(&[vec![9.0, 1.0], vec![9.0, 2.0], vec![9.0, 3.0], vec![9.0, 4.0]]);
        let (proj, keep) = select_top_k(&x, &y, 1);
        assert_eq!(keep, vec![1]);
        assert_eq!(proj.cols(), 1);
        assert_eq!(proj.column(0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scores_match_hand_computed_f() {
        // y = [1,2,3,4], x = [1,2,2,3]: r = cov/sd, F = r^2/(1-r^2)*(n-2).
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![2.0], vec![3.0]]);
        let s = f_regression(&x, &y)[0];
        // sxy = 3, sxx = 2, syy = 5 → r² = 9/10; F = 0.9/0.1 · (4-2) = 18.
        assert!((s - 18.0).abs() < 1e-9, "{s}");
    }
}
