//! Univariate linear-regression feature scoring.
//!
//! The paper (§III-B) selects the top-K methods whose per-unit frequencies are
//! most correlated with performance (IPC), using "the univariate linear
//! regression test". This is the classic F-test on the slope of a univariate
//! least-squares fit — the same statistic as scikit-learn's `f_regression` —
//! applied to one feature column at a time:
//!
//! ```text
//! r_j = corr(X[:, j], y)          F_j = r_j^2 / (1 - r_j^2) * (n - 2)
//! ```
//!
//! Constant columns (zero variance) carry no information about performance and
//! score `0`; this is exactly how the ubiquitous executor-startup methods the
//! paper mentions get eliminated.

use crate::matrix::Matrix;

/// Computes the univariate regression F-score for every column of `x` against
/// the response `y`.
///
/// Returns one score per column. Degenerate cases (fewer than 3 observations,
/// constant column, constant response) score `0.0`. Perfectly correlated
/// columns score `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`.
pub fn f_regression(x: &Matrix, y: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), x.rows(), "response length must match rows");
    let n = x.rows();
    if n < 3 {
        return vec![0.0; x.cols()];
    }
    let nf = n as f64;
    let y_mean = y.iter().sum::<f64>() / nf;
    let y_ss: f64 = y.iter().map(|&v| (v - y_mean) * (v - y_mean)).sum();
    if y_ss == 0.0 {
        return vec![0.0; x.cols()];
    }

    // One pass per column over the row-major matrix: accumulate column sums,
    // then a second pass for centered cross-products.
    let cols = x.cols();
    let mut col_mean = vec![0.0; cols];
    for row in x.iter_rows() {
        for (m, &v) in col_mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut col_mean {
        *m /= nf;
    }

    let mut sxy = vec![0.0; cols];
    let mut sxx = vec![0.0; cols];
    for (i, row) in x.iter_rows().enumerate() {
        let dy = y[i] - y_mean;
        for j in 0..cols {
            let dx = row[j] - col_mean[j];
            sxy[j] += dx * dy;
            sxx[j] += dx * dx;
        }
    }

    (0..cols)
        .map(|j| {
            if sxx[j] == 0.0 {
                return 0.0;
            }
            let r2 = (sxy[j] * sxy[j]) / (sxx[j] * y_ss);
            // Clamp tiny numeric overshoot of r^2 past 1.
            let r2 = r2.min(1.0);
            if r2 >= 1.0 {
                f64::INFINITY
            } else {
                r2 / (1.0 - r2) * (nf - 2.0)
            }
        })
        .collect()
}

/// Per-feature sufficient statistics for the streaming F-score: the raw
/// moments `Σx`, `Σx²` and `Σxy` of one feature column against the response.
///
/// These are exactly the quantities a single pass over a unit stream can
/// accumulate without materializing the dense `n × universe` matrix; combined
/// with the global response moments (`n`, `Σy`, `Σy²`) they determine the
/// same F statistic [`f_regression`] computes from centered sums.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ColumnMoments {
    /// `Σ x_i` over all observations of this column.
    pub sum_x: f64,
    /// `Σ x_i²`.
    pub sum_xx: f64,
    /// `Σ x_i · y_i`.
    pub sum_xy: f64,
}

impl ColumnMoments {
    /// Folds one `(x, y)` observation into the moments.
    pub fn push(&mut self, x: f64, y: f64) {
        self.sum_x += x;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }
}

/// Computes the univariate regression F-score of one column from its raw
/// moments and the global response moments.
///
/// Algebraically identical to [`f_regression`]'s statistic via
/// `Σ(x-x̄)(y-ȳ) = Σxy − ΣxΣy/n` (and likewise for the squared sums), with
/// the same degenerate-case contract: fewer than 3 observations, a constant
/// column, or a constant response score `0.0`; perfect correlation scores
/// `f64::INFINITY`. The raw-moment form can go slightly negative on constant
/// columns through rounding, so centered sums are clamped at zero.
pub fn f_score_from_moments(col: &ColumnMoments, n: usize, sum_y: f64, sum_yy: f64) -> f64 {
    if n < 3 {
        return 0.0;
    }
    let nf = n as f64;
    let y_css = (sum_yy - sum_y * sum_y / nf).max(0.0);
    if y_css == 0.0 {
        return 0.0;
    }
    let sxx = (col.sum_xx - col.sum_x * col.sum_x / nf).max(0.0);
    if sxx == 0.0 {
        return 0.0;
    }
    let sxy = col.sum_xy - col.sum_x * sum_y / nf;
    let r2 = ((sxy * sxy) / (sxx * y_css)).min(1.0);
    if r2 >= 1.0 {
        f64::INFINITY
    } else {
        r2 / (1.0 - r2) * (nf - 2.0)
    }
}

/// Returns the indices of the `k` highest-scoring features, sorted by
/// descending score (ties break toward the lower column index, keeping
/// selection deterministic).
///
/// Features with score `0` are only included if fewer than `k` features have
/// positive scores — matching the intent of dropping uninformative methods.
pub fn top_k_features(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx.truncate(k);
    // Drop trailing zero-score features; keep a single column when every
    // score is zero so downstream clustering still has a feature space.
    let positive = idx.iter().filter(|&&j| scores[j] > 0.0).count();
    idx.truncate(positive.max(1).min(idx.len()));
    idx
}

/// Convenience: scores all features of `x` against `y` and projects `x` onto
/// the top-`k` columns. Returns the projected matrix and the kept column
/// indices (in score order).
pub fn select_top_k(x: &Matrix, y: &[f64], k: usize) -> (Matrix, Vec<usize>) {
    let scores = f_regression(x, y);
    let keep = top_k_features(&scores, k);
    (x.select_columns(&keep), keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_correlated_feature_wins() {
        // col0 = y exactly, col1 = noise-ish fixed values, col2 constant.
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = Matrix::from_rows(&[
            vec![1.0, 3.0, 7.0],
            vec![2.0, 1.0, 7.0],
            vec![3.0, 4.0, 7.0],
            vec![4.0, 1.0, 7.0],
            vec![5.0, 5.0, 7.0],
        ]);
        let s = f_regression(&x, &y);
        assert!(s[0].is_infinite());
        assert!(s[1].is_finite() && s[1] > 0.0);
        assert_eq!(s[2], 0.0);
        assert_eq!(top_k_features(&s, 2), vec![0, 1]);
    }

    #[test]
    fn constant_response_scores_zero() {
        let y = vec![2.0; 4];
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        assert_eq!(f_regression(&x, &y), vec![0.0]);
    }

    #[test]
    fn negative_correlation_scores_high() {
        let y = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]]);
        let s = f_regression(&x, &y);
        assert!(s[0].is_infinite(), "sign must not matter: {:?}", s);
    }

    #[test]
    fn too_few_rows_scores_zero() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert_eq!(f_regression(&x, &[1.0, 2.0]), vec![0.0]);
    }

    #[test]
    fn top_k_drops_zero_scores() {
        let scores = [0.0, 5.0, 0.0, 3.0];
        assert_eq!(top_k_features(&scores, 4), vec![1, 3]);
        assert_eq!(top_k_features(&scores, 1), vec![1]);
    }

    #[test]
    fn top_k_all_zero_keeps_one() {
        let scores = [0.0, 0.0, 0.0];
        assert_eq!(top_k_features(&scores, 2), vec![0]);
    }

    #[test]
    fn select_top_k_projects_matrix() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let x =
            Matrix::from_rows(&[vec![9.0, 1.0], vec![9.0, 2.0], vec![9.0, 3.0], vec![9.0, 4.0]]);
        let (proj, keep) = select_top_k(&x, &y, 1);
        assert_eq!(keep, vec![1]);
        assert_eq!(proj.cols(), 1);
        assert_eq!(proj.column(0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn moment_scores_agree_with_dense_f_regression() {
        // Deterministic pseudo-data with varied magnitudes, a constant
        // column, and a perfectly correlated column.
        let n = 23usize;
        let y: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 37 + 11) % 17) as f64 * 0.21).collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    ((i * 13 + 5) % 9) as f64,  // weakly related
                    y[i] * 3.0 - 1.0,           // perfectly correlated
                    4.2,                        // constant
                    ((i * 29 + 3) % 23) as f64, // unrelated-ish
                ]
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let dense = f_regression(&x, &y);

        let sum_y: f64 = y.iter().sum();
        let sum_yy: f64 = y.iter().map(|v| v * v).sum();
        for j in 0..x.cols() {
            let mut m = ColumnMoments::default();
            for (i, row) in x.iter_rows().enumerate() {
                m.push(row[j], y[i]);
            }
            let s = f_score_from_moments(&m, n, sum_y, sum_yy);
            if dense[j].is_infinite() || dense[j] > 1e12 {
                // Perfect correlation: r² rounds differently in the two
                // formulations, landing on either ∞ or an astronomically
                // large finite F — both mean "keep this column first".
                assert!(s.is_infinite() || s > 1e12, "col {j}: {s} vs {}", dense[j]);
            } else {
                assert!(
                    (s - dense[j]).abs() < 1e-6 * (1.0 + dense[j].abs()),
                    "col {j}: moments {s} vs dense {}",
                    dense[j]
                );
            }
        }
    }

    #[test]
    fn moment_score_degenerate_cases() {
        let mut m = ColumnMoments::default();
        m.push(1.0, 1.0);
        m.push(2.0, 2.0);
        assert_eq!(f_score_from_moments(&m, 2, 3.0, 5.0), 0.0, "n < 3");
        // Constant response.
        let mut m = ColumnMoments::default();
        for x in [1.0, 2.0, 3.0] {
            m.push(x, 5.0);
        }
        assert_eq!(f_score_from_moments(&m, 3, 15.0, 75.0), 0.0);
        // Constant column.
        let mut m = ColumnMoments::default();
        for y in [1.0, 2.0, 3.0] {
            m.push(7.0, y);
        }
        assert_eq!(f_score_from_moments(&m, 3, 6.0, 14.0), 0.0);
    }

    #[test]
    fn scores_match_hand_computed_f() {
        // y = [1,2,3,4], x = [1,2,2,3]: r = cov/sd, F = r^2/(1-r^2)*(n-2).
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![2.0], vec![3.0]]);
        let s = f_regression(&x, &y)[0];
        // sxy = 3, sxx = 2, syy = 5 → r² = 9/10; F = 0.9/0.1 · (4-2) = 18.
        assert!((s - 18.0).abs() < 1e-9, "{s}");
    }
}
