//! K-means clustering with k-means++ seeding and triangle-inequality
//! acceleration.
//!
//! Phase formation (§III-B) clusters sampling-unit feature vectors with
//! k-means. The implementation is deterministic given a seed: k-means++
//! initialization draws from a seeded RNG, Lloyd iterations are synchronous,
//! ties in assignment break toward the lower center index, and empty clusters
//! are reseeded to the farthest points from their current centers (distinct
//! points when several clusters empty in one iteration).
//!
//! The assignment step uses Hamerly-style distance bounds to skip most
//! point-center evaluations while producing **bit-identical** results to the
//! plain Lloyd scan: a point is only skipped when its (conservatively
//! inflated) upper bound to its own center is *strictly* below both its lower
//! bound to every other center and half the separation to the nearest other
//! center — which certifies its center is the unique minimum, so the
//! tie-break can never be exercised. Points that fail the test fall back to
//! the exact scan Lloyd would run. [`kmeans_from_centers_reference`] exposes
//! the unaccelerated loop so equivalence stays property-testable
//! (DESIGN.md §15).
//!
//! [`kmeans_from_centers`] runs the Lloyd loop from explicit initial centers;
//! the `choose_k` sweep uses it to warm-start each k from the previous
//! solution. [`kmeans_minibatch`] is an opt-in stochastic variant for the
//! streaming path.
//!
//! Distance computations over all points are parallelized with rayon; results
//! are identical to the sequential computation because each point's
//! assignment is independent.

use rand::RngExt;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::rng::{seeded, SeedRng};

/// Configuration for one k-means run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iter: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Number of independent k-means++ restarts; the run with the lowest
    /// inertia wins (scikit-learn-style `n_init`).
    pub n_init: usize,
}

impl KMeans {
    /// Creates a configuration with the workspace defaults of 100 iterations
    /// and 4 restarts.
    pub fn new(k: usize, seed: u64) -> Self {
        Self { k, max_iter: 100, seed, n_init: 4 }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster centers, one row per cluster (`k × cols`).
    pub centers: Matrix,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of every point to its center.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.rows()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Runs k-means++ + Lloyd iterations on `data`, taking the best of
/// `config.n_init` seeded restarts by inertia.
///
/// `k` is clamped to the number of rows. With `k == 0` or an empty matrix the
/// result has no centers and no assignments.
///
/// # Examples
///
/// ```
/// use simprof_stats::{kmeans, KMeans, Matrix};
///
/// let data = Matrix::from_rows(&[
///     vec![0.0, 0.1], vec![0.1, 0.0],    // blob A
///     vec![9.0, 9.1], vec![9.1, 9.0],    // blob B
/// ]);
/// let result = kmeans(&data, KMeans::new(2, 42));
/// assert_eq!(result.centers.rows(), 2);
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// ```
pub fn kmeans(data: &Matrix, config: KMeans) -> KMeansResult {
    let restarts = config.n_init.max(1);
    let mut best: Option<KMeansResult> = None;
    for r in 0..restarts {
        let seed = config.seed.wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = kmeans_once(data, KMeans { seed, n_init: 1, ..config });
        if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    best.expect("restarts >= 1")
}

fn kmeans_once(data: &Matrix, config: KMeans) -> KMeansResult {
    let n = data.rows();
    let k = config.k.min(n);
    if k == 0 || n == 0 {
        return KMeansResult {
            centers: Matrix::zeros(0, data.cols()),
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }

    let mut rng = seeded(config.seed);
    let centers = plus_plus_init(data, k, &mut rng);
    lloyd_impl(data, centers, config.max_iter, true)
}

/// Runs synchronous Lloyd iterations from the given initial `centers` until
/// the assignment stabilizes (or `max_iter`).
///
/// This is the warm-start entry point of the `choose_k` sweep: seeding with
/// the previous k's converged centers plus one fresh center typically
/// converges in a handful of iterations instead of a full cold run.
///
/// # Panics
///
/// Panics if `centers` has more rows than `data` or a different column count
/// (a center per point is the densest meaningful clustering).
pub fn kmeans_from_centers(data: &Matrix, centers: Matrix, max_iter: usize) -> KMeansResult {
    kmeans_from_centers_impl(data, centers, max_iter, true)
}

/// The unaccelerated reference Lloyd loop: a full `nearest_row` scan for
/// every point in every iteration, no distance bounds.
///
/// Exists so the Hamerly-accelerated default ([`kmeans_from_centers`]) can be
/// property-tested bit-identical against it (see
/// `tests/parallel_equivalence.rs`); prefer the accelerated entry points for
/// real work.
pub fn kmeans_from_centers_reference(
    data: &Matrix,
    centers: Matrix,
    max_iter: usize,
) -> KMeansResult {
    kmeans_from_centers_impl(data, centers, max_iter, false)
}

fn kmeans_from_centers_impl(
    data: &Matrix,
    centers: Matrix,
    max_iter: usize,
    accel: bool,
) -> KMeansResult {
    assert!(centers.rows() <= data.rows(), "more centers than points");
    assert_eq!(centers.cols(), data.cols(), "center/point dimension mismatch");
    if centers.rows() == 0 || data.rows() == 0 {
        return KMeansResult {
            centers: Matrix::zeros(0, data.cols()),
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    lloyd_impl(data, centers, max_iter, accel)
}

/// Multiplicative safety margins for the Hamerly bounds. Every upper bound is
/// inflated and every lower bound deflated by ~1e-9 relative at each update,
/// which dwarfs the accumulated floating-point rounding of the bound
/// arithmetic (≲ 100 iterations × machine epsilon ≈ 2e-14 relative) while
/// still skipping essentially every stable point. The margins make the skip
/// test conservative: a skip certifies the assigned center is the *strict*
/// minimum under Lloyd's own computed `sq_dist` comparisons, so the
/// accelerated loop can never diverge from the reference scan.
const BOUND_UP: f64 = 1.0 + 1e-9;
const BOUND_DOWN: f64 = 1.0 - 1e-9;

/// The Lloyd loop shared by cold (k-means++) and warm starts. `k ≥ 1` and
/// `n ≥ k` are the caller's invariants.
///
/// With `accel`, the assignment step keeps Hamerly-style per-point bounds —
/// `upper[i]` ≥ distance to the assigned center, `lower[i]` ≤ distance to
/// every other center — and skips the full scan whenever
/// `upper[i] < max(lower[i], s[a])` (with `s[a]` half the distance from
/// center `a` to its nearest other center). Both conditions are strict and
/// margin-padded, so a skipped point provably keeps the exact assignment the
/// reference scan would produce (tie-breaks only arise on the exact path,
/// which *is* the reference scan). Center updates are byte-for-byte the same
/// code in both modes, so identical assignments yield identical centers,
/// iteration counts, and inertia bits.
fn lloyd_impl(data: &Matrix, mut centers: Matrix, max_iter: usize, accel: bool) -> KMeansResult {
    let n = data.rows();
    let k = centers.rows();
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut upper = vec![0.0f64; n];
    let mut lower = vec![0.0f64; n]; // 0 ⇒ the first iteration evaluates exactly
    let mut last_sq = vec![0.0f64; n];
    let mut converged = false;
    let mut reseed_in_last = false;
    let mut all_exact_last = false;

    for iter in 0..max_iter.max(1) {
        iterations = iter + 1;
        // Assignment step (parallel; deterministic tie-break to lower index).
        // Each point either proves its assignment unchanged from the bounds or
        // falls back to the exact scan, returning
        // (assignment, upper, lower, assigned sq-dist, was-exact).
        let skip_ok = accel && iter > 0;
        let s = if skip_ok { half_separation(&centers) } else { Vec::new() };
        let evals: Vec<(usize, f64, f64, f64, bool)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let a = assignments[i];
                if skip_ok {
                    let guard = if lower[i] > s[a] { lower[i] } else { s[a] };
                    if upper[i] < guard {
                        return (a, upper[i], lower[i], last_sq[i], false);
                    }
                }
                let (best, best_sq, second_sq) = nearest_two(&centers, data.row(i));
                (best, best_sq.sqrt() * BOUND_UP, second_sq.sqrt() * BOUND_DOWN, best_sq, true)
            })
            .collect();
        let new_assignments: Vec<usize> = evals.iter().map(|e| e.0).collect();
        let all_exact = evals.iter().all(|e| e.4);
        for (i, e) in evals.into_iter().enumerate() {
            upper[i] = e.1;
            lower[i] = e.2;
            last_sq[i] = e.3;
        }
        let changed = new_assignments != assignments;
        assignments = new_assignments;

        // Update step.
        let cols = data.cols();
        let mut sums = Matrix::zeros(k, cols);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            let row = data.row(i);
            let acc = sums.row_mut(a);
            for (s, &v) in acc.iter_mut().zip(row) {
                *s += v;
            }
        }
        // Empty clusters reseed to the farthest point from its current
        // center; `reseeded` keeps the picks distinct when several clusters
        // go empty in the same iteration (reusing one point would collapse
        // them right back together). At most k−1 clusters can be empty and
        // k ≤ n, so a distinct point always exists.
        let mut reseeded: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)] // `c` also indexes `sums` rows
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .filter(|i| !reseeded.contains(i))
                    .max_by(|&a, &b| {
                        let da = Matrix::sq_dist(data.row(a), centers.row(assignments[a]));
                        let db = Matrix::sq_dist(data.row(b), centers.row(assignments[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("more points than empty clusters");
                reseeded.push(far);
                sums.row_mut(c).copy_from_slice(data.row(far));
                counts[c] = 1;
            }
            let inv = 1.0 / counts[c] as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }

        if accel {
            // Bound maintenance: each center's drift loosens the bounds of
            // the points it serves (upper grows by its own center's drift,
            // lower shrinks by the largest drift of any center), with the
            // same margin padding. A reseeded center simply shows up as a
            // large drift — no special case needed.
            let mut max_drift = 0.0f64;
            let drifts: Vec<f64> = (0..k)
                .map(|c| {
                    let d = Matrix::dist(centers.row(c), sums.row(c)) * BOUND_UP;
                    if d > max_drift {
                        max_drift = d;
                    }
                    d
                })
                .collect();
            for (i, &a) in assignments.iter().enumerate() {
                upper[i] = (upper[i] + drifts[a]) * BOUND_UP;
                let l = (lower[i] - max_drift) * BOUND_DOWN;
                lower[i] = if l > 0.0 { l } else { 0.0 };
            }
        }
        centers = sums;

        if !changed && iter > 0 {
            converged = true;
            reseed_in_last = !reseeded.is_empty();
            all_exact_last = all_exact;
            break;
        }
    }

    // Final inertia. On a convergence exit with no reseed in the final
    // update, the assignments did not change, so that update recomputed the
    // same sums as the previous one and the centers are bitwise the ones the
    // last assignment step measured against — the assignment-step distances
    // *are* the final distances, no second pass needed (when the whole final
    // step ran exactly). The fallback recomputation uses the identical
    // `sq_dist` call and the identical parallel-sum chunking, so both paths
    // produce the same bits.
    let inertia = if converged && !reseed_in_last && all_exact_last {
        (0..n).into_par_iter().map(|i| last_sq[i]).sum()
    } else {
        (0..n)
            .into_par_iter()
            .map(|i| Matrix::sq_dist(data.row(i), centers.row(assignments[i])))
            .sum()
    };

    KMeansResult { centers, assignments, inertia, iterations }
}

/// Exact assignment scan: bit-compatible with [`Matrix::nearest_row`]
/// (same iteration order, same strict `<` tie-break toward the lower index),
/// additionally returning the best and second-best squared distances for the
/// Hamerly bounds. `second` is `∞` when `k == 1`.
fn nearest_two(centers: &Matrix, point: &[f64]) -> (usize, f64, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    let mut second_d = f64::INFINITY;
    for (idx, c) in centers.iter_rows().enumerate() {
        let d = Matrix::sq_dist(c, point);
        if d < best_d {
            second_d = best_d;
            best_d = d;
            best = idx;
        } else if d < second_d {
            second_d = d;
        }
    }
    (best, best_d, second_d)
}

/// Half the distance from each center to its nearest other center, deflated
/// by the bound margin: if a point is strictly closer to its center than
/// `s[a]`, no other center can be closer. `∞` when there is a single center.
fn half_separation(centers: &Matrix) -> Vec<f64> {
    let k = centers.rows();
    (0..k)
        .map(|c| {
            let mut min_d = f64::INFINITY;
            for j in 0..k {
                if j != c {
                    let d = Matrix::dist(centers.row(c), centers.row(j));
                    if d < min_d {
                        min_d = d;
                    }
                }
            }
            0.5 * min_d * BOUND_DOWN
        })
        .collect()
}

/// k-means++ seeding: first center uniform, subsequent centers sampled with
/// probability proportional to squared distance from the nearest chosen
/// center.
fn plus_plus_init(data: &Matrix, k: usize, rng: &mut SeedRng) -> Matrix {
    let n = data.rows();
    let cols = data.cols();
    let mut centers = Matrix::zeros(k, cols);
    let first = rng.random_range(0..n);
    centers.row_mut(0).copy_from_slice(data.row(first));

    let mut d2: Vec<f64> = (0..n).map(|i| Matrix::sq_dist(data.row(i), centers.row(0))).collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            // All points coincide with existing centers; pick uniformly.
            rng.random_range(0..n)
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.row_mut(c).copy_from_slice(data.row(pick));
        for (i, d) in d2.iter_mut().enumerate() {
            let nd = Matrix::sq_dist(data.row(i), centers.row(c));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centers
}

/// Opt-in mini-batch k-means (Sculley-style) for the future streaming path.
///
/// Each of up to `config.max_iter` rounds draws `batch_size` seeded random
/// samples and takes one incremental step per sample with learning rate
/// `1 / count(c)`, which keeps every center at the running mean of the
/// samples it has absorbed. Deterministic given `config.seed` (samples are
/// drawn and applied serially); stops early when a whole batch moves the
/// centers by less than 1e-12. The returned assignments and inertia come
/// from one final full hard-assignment pass against the learned centers.
///
/// This trades the exact-Lloyd guarantees of [`kmeans`] for `O(batch)` work
/// per round — use it when the data no longer fits a full pass per
/// iteration, not as a drop-in replacement.
pub fn kmeans_minibatch(data: &Matrix, config: KMeans, batch_size: usize) -> KMeansResult {
    let n = data.rows();
    let k = config.k.min(n);
    if k == 0 || n == 0 {
        return KMeansResult {
            centers: Matrix::zeros(0, data.cols()),
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let mut rng = seeded(config.seed);
    let mut centers = plus_plus_init(data, k, &mut rng);
    let b = batch_size.clamp(1, n);
    let mut counts = vec![0u64; k];
    let mut iterations = 0;
    for _ in 0..config.max_iter.max(1) {
        iterations += 1;
        let mut moved_sq = 0.0f64;
        for _ in 0..b {
            let i = rng.random_range(0..n);
            let x = data.row(i);
            let c = Matrix::nearest_row(&centers, x).expect("k >= 1");
            counts[c] += 1;
            let eta = 1.0 / counts[c] as f64;
            for (cv, &xv) in centers.row_mut(c).iter_mut().zip(x) {
                let step = eta * (xv - *cv);
                moved_sq += step * step;
                *cv += step;
            }
        }
        if moved_sq <= 1e-24 {
            break;
        }
    }

    let assignments: Vec<usize> = (0..n)
        .into_par_iter()
        .map(|i| Matrix::nearest_row(&centers, data.row(i)).expect("k >= 1"))
        .collect();
    let inertia = (0..n)
        .into_par_iter()
        .map(|i| Matrix::sq_dist(data.row(i), centers.row(assignments[i])))
        .sum();
    KMeansResult { centers, assignments, inertia, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            rows.push(vec![10.0 + (i as f64) * 0.01, 10.0]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let r = kmeans(&data, KMeans::new(2, 42));
        assert_eq!(r.centers.rows(), 2);
        // All even rows (blob A) share a cluster, all odd rows (blob B) the other.
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in 0..40 {
            assert_eq!(r.assignments[i], if i % 2 == 0 { a } else { b });
        }
        assert!(r.inertia < 1.0, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = two_blobs();
        let r1 = kmeans(&data, KMeans::new(3, 7));
        let r2 = kmeans(&data, KMeans::new(3, 7));
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centers, r2.centers);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let r = kmeans(&data, KMeans::new(5, 1));
        assert_eq!(r.centers.rows(), 2);
        assert_eq!(r.assignments.len(), 2);
    }

    #[test]
    fn k_zero_or_empty() {
        let data = Matrix::from_rows(&[vec![1.0]]);
        let r = kmeans(&data, KMeans::new(0, 1));
        assert!(r.assignments.is_empty());
        let empty = Matrix::zeros(0, 3);
        let r = kmeans(&empty, KMeans::new(2, 1));
        assert!(r.assignments.is_empty());
    }

    #[test]
    fn identical_points_single_effective_cluster() {
        let data = Matrix::from_rows(&vec![vec![3.0, 3.0]; 10]);
        let r = kmeans(&data, KMeans::new(3, 11));
        // All points distance 0 from every center; inertia must be 0.
        assert_eq!(r.inertia, 0.0);
        assert_eq!(r.assignments.len(), 10);
    }

    #[test]
    fn k1_center_is_mean() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![4.0]]);
        let r = kmeans(&data, KMeans::new(1, 3));
        assert!((r.centers.get(0, 0) - 2.0).abs() < 1e-12);
        assert_eq!(r.cluster_sizes(), vec![3]);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = two_blobs();
        let i1 = kmeans(&data, KMeans::new(1, 5)).inertia;
        let i2 = kmeans(&data, KMeans::new(2, 5)).inertia;
        assert!(i2 < i1);
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let data = two_blobs();
        let r = kmeans(&data, KMeans::new(4, 9));
        assert_eq!(r.cluster_sizes().iter().sum::<usize>(), 40);
    }

    #[test]
    fn simultaneous_empty_clusters_reseed_to_distinct_points() {
        // Initial centers: center 0 sits on the data, centers 1–3 are so far
        // away that every point assigns to center 0 — three clusters go
        // empty in the same iteration. The reseed must hand each a
        // *different* point or they collapse into duplicates.
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let init = Matrix::from_rows(&[vec![0.0], vec![1000.0], vec![2000.0], vec![3000.0]]);
        let r = kmeans_from_centers(&data, init, 50);
        let sizes = r.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 1), "each point its own cluster: {sizes:?}");
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert_ne!(r.centers.row(a), r.centers.row(b), "centers {a} and {b} collapsed");
            }
        }
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn warm_start_converges_and_matches_quality() {
        let data = two_blobs();
        let cold = kmeans(&data, KMeans::new(2, 42));
        // Warm-start from slightly perturbed converged centers.
        let mut init = cold.centers.clone();
        for v in init.row_mut(0) {
            *v += 0.05;
        }
        let warm = kmeans_from_centers(&data, init, 100);
        assert_eq!(warm.assignments, cold.assignments);
        assert!(warm.iterations <= cold.iterations);
        assert!((warm.inertia - cold.inertia).abs() < 1e-9);
    }

    #[test]
    fn accelerated_matches_reference_bitwise() {
        // Same init ⇒ the Hamerly loop and the plain scan must agree on every
        // bit: assignments, centers, iteration count, inertia.
        let data = two_blobs();
        for seed in [1u64, 7, 42, 1234] {
            for k in [1usize, 2, 3, 5] {
                let init = plus_plus_init(&data, k, &mut seeded(seed));
                let fast = kmeans_from_centers(&data, init.clone(), 100);
                let slow = kmeans_from_centers_reference(&data, init, 100);
                assert_eq!(fast.assignments, slow.assignments, "seed {seed} k {k}");
                assert_eq!(fast.centers, slow.centers, "seed {seed} k {k}");
                assert_eq!(fast.iterations, slow.iterations, "seed {seed} k {k}");
                assert_eq!(fast.inertia.to_bits(), slow.inertia.to_bits(), "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn accelerated_matches_reference_on_identical_points() {
        // Everything ties everywhere: the bounds all sit at zero, so every
        // point must take the exact path and reproduce the tie-breaks.
        let data = Matrix::from_rows(&vec![vec![2.0, 2.0]; 8]);
        let init = plus_plus_init(&data, 3, &mut seeded(9));
        let fast = kmeans_from_centers(&data, init.clone(), 50);
        let slow = kmeans_from_centers_reference(&data, init, 50);
        assert_eq!(fast.assignments, slow.assignments);
        assert_eq!(fast.inertia.to_bits(), slow.inertia.to_bits());
    }

    #[test]
    fn converged_inertia_reuse_matches_recompute() {
        // The reference path reuses assignment-step distances on a
        // convergence exit; an independent recomputation must agree exactly.
        let data = two_blobs();
        let r = kmeans(&data, KMeans::new(2, 42));
        let recomputed: f64 = (0..data.rows())
            .map(|i| Matrix::sq_dist(data.row(i), r.centers.row(r.assignments[i])))
            .sum();
        assert!((r.inertia - recomputed).abs() <= 1e-12 * recomputed.max(1.0));
    }

    #[test]
    fn minibatch_deterministic_and_separates_blobs() {
        let data = two_blobs();
        let config = KMeans::new(2, 42);
        let r1 = kmeans_minibatch(&data, config, 16);
        let r2 = kmeans_minibatch(&data, config, 16);
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centers, r2.centers);
        assert_eq!(r1.inertia.to_bits(), r2.inertia.to_bits());
        let a = r1.assignments[0];
        let b = r1.assignments[1];
        assert_ne!(a, b);
        for i in 0..40 {
            assert_eq!(r1.assignments[i], if i % 2 == 0 { a } else { b });
        }
        // Stochastic centers land near the Lloyd optimum on clean blobs.
        let full = kmeans(&data, config);
        assert!(r1.inertia <= full.inertia * 4.0 + 1.0, "{} vs {}", r1.inertia, full.inertia);
    }

    #[test]
    fn minibatch_degenerate_inputs() {
        let r = kmeans_minibatch(&Matrix::zeros(0, 3), KMeans::new(2, 1), 8);
        assert!(r.assignments.is_empty());
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let r = kmeans_minibatch(&data, KMeans::new(5, 1), 100);
        assert_eq!(r.centers.rows(), 2);
        assert_eq!(r.assignments.len(), 2);
    }

    #[test]
    fn from_centers_rejects_mismatched_dims() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let init = Matrix::from_rows(&[vec![1.0]]);
        assert!(std::panic::catch_unwind(|| kmeans_from_centers(&data, init, 10)).is_err());
    }
}
