//! BIC-based model selection for k-means — the SimPoint / X-means
//! alternative to the silhouette rule.
//!
//! SimPoint (Sherwood et al., the paper's baseline lineage) and Perelman et
//! al. pick the number of phases with the Bayesian Information Criterion
//! under a spherical-Gaussian mixture view of k-means, choosing the smallest
//! k whose BIC reaches a fraction (SimPoint: 90 %) of the best score. This
//! module implements that rule so the workspace can ablate silhouette
//! against BIC selection.

use serde::{Deserialize, Serialize};

use crate::kmeans::{kmeans, KMeans, KMeansResult};
use crate::matrix::Matrix;

/// BIC of a k-means clustering under the identical-spherical-variance model
/// (Pelleg & Moore, X-means). Larger is better.
///
/// Returns `f64::NEG_INFINITY` for an empty clustering.
pub fn bic_score(data: &Matrix, result: &KMeansResult) -> f64 {
    let n = data.rows();
    let k = result.centers.rows();
    if n == 0 || k == 0 {
        return f64::NEG_INFINITY;
    }
    let d = data.cols().max(1) as f64;
    let nf = n as f64;
    // Pooled maximum-likelihood variance; floored to keep degenerate
    // (duplicate-point) clusterings finite.
    let sigma2 = (result.inertia / ((n.saturating_sub(k)) as f64).max(1.0) / d).max(1e-12);

    let sizes = result.cluster_sizes();
    let mut log_likelihood = 0.0;
    for &nj in &sizes {
        if nj == 0 {
            continue;
        }
        let njf = nj as f64;
        log_likelihood += njf * (njf / nf).ln()
            - njf * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (njf - 1.0) * d / 2.0;
    }
    let params = k as f64 * (d + 1.0);
    log_likelihood - params / 2.0 * nf.ln()
}

/// Outcome of the BIC k-selection sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BicSelection {
    /// Chosen number of clusters.
    pub k: usize,
    /// Clustering result for the chosen `k`.
    pub result: KMeansResult,
    /// `(k, bic)` pairs for every candidate evaluated.
    pub scores: Vec<(usize, f64)>,
}

/// Sweeps `k ∈ 1..=k_max` and applies the SimPoint rule: the smallest `k`
/// whose BIC is at least `threshold` (e.g. 0.9) of the way from the worst to
/// the best score (BIC values are negative, so the rule interpolates the
/// observed range rather than scaling by the maximum).
pub fn choose_k_bic(data: &Matrix, k_max: usize, threshold: f64, seed: u64) -> BicSelection {
    let n = data.rows();
    let k_max = k_max.min(n).max(1);
    if n == 0 {
        return BicSelection { k: 1, result: kmeans(data, KMeans::new(1, seed)), scores: vec![] };
    }
    let candidates: Vec<(usize, KMeansResult, f64)> = (1..=k_max)
        .map(|k| {
            let r = kmeans(data, KMeans::new(k, seed));
            let b = bic_score(data, &r);
            (k, r, b)
        })
        .collect();
    let best = candidates.iter().map(|&(_, _, b)| b).fold(f64::NEG_INFINITY, f64::max);
    let worst = candidates.iter().map(|&(_, _, b)| b).fold(f64::INFINITY, f64::min);
    let cutoff = if best.is_finite() && worst.is_finite() && best > worst {
        worst + threshold * (best - worst)
    } else {
        best
    };
    let scores: Vec<(usize, f64)> = candidates.iter().map(|&(k, _, b)| (k, b)).collect();
    let chosen = candidates
        .into_iter()
        .find(|&(_, _, b)| b >= cutoff)
        .expect("the best-scoring k satisfies the cutoff");
    BicSelection { k: chosen.0, result: chosen.1, scores }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random noise in [-0.5, 0.5) from an integer key (keeps the
    /// blobs genuinely noisy so per-point variance cannot collapse to the
    /// epsilon floor, which would let BIC fit arbitrarily many clusters).
    fn noise(key: u64) -> f64 {
        let mut z = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn blobs(centers: &[(f64, f64)], per: usize) -> Matrix {
        let mut rows = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..per {
                let key = (ci * 1000 + i) as u64;
                rows.push(vec![cx + noise(key), cy + noise(key ^ 0xABCD)]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn bic_prefers_true_k_over_underfit() {
        let data = blobs(&[(0.0, 0.0), (8.0, 8.0), (0.0, 8.0)], 15);
        let b1 = bic_score(&data, &kmeans(&data, KMeans::new(1, 3)));
        let b3 = bic_score(&data, &kmeans(&data, KMeans::new(3, 3)));
        assert!(b3 > b1, "b3 {b3} vs b1 {b1}");
    }

    #[test]
    fn bic_penalizes_gross_overfit() {
        let data = blobs(&[(0.0, 0.0), (8.0, 8.0)], 20);
        let b2 = bic_score(&data, &kmeans(&data, KMeans::new(2, 3)));
        let b12 = bic_score(&data, &kmeans(&data, KMeans::new(12, 3)));
        assert!(b2 > b12, "b2 {b2} vs b12 {b12}");
    }

    #[test]
    fn choose_k_bic_finds_blob_count() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], 14);
        let sel = choose_k_bic(&data, 8, 0.9, 7);
        assert!(sel.k >= 2 && sel.k <= 4, "k = {} scores {:?}", sel.k, sel.scores);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Matrix::zeros(0, 2);
        assert_eq!(choose_k_bic(&empty, 5, 0.9, 1).k, 1);
        let dup = Matrix::from_rows(&vec![vec![1.0, 1.0]; 8]);
        let sel = choose_k_bic(&dup, 5, 0.9, 1);
        assert!(sel.k >= 1);
        assert!(bic_score(&dup, &sel.result).is_finite());
    }

    #[test]
    fn scores_recorded_for_all_k() {
        let data = blobs(&[(0.0, 0.0), (9.0, 9.0)], 10);
        let sel = choose_k_bic(&data, 5, 0.9, 2);
        let ks: Vec<usize> = sel.scores.iter().map(|&(k, _)| k).collect();
        assert_eq!(ks, vec![1, 2, 3, 4, 5]);
    }
}
