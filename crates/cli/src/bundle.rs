//! The on-disk trace format: a profile plus everything needed to interpret
//! it later (method registry, provenance).

use serde::{Deserialize, Serialize};

use simprof_engine::MethodRegistry;
use simprof_profiler::ProfileTrace;

/// Format version written into every bundle.
pub const FORMAT_VERSION: u32 = 1;

/// A self-contained profiled run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Workload label (`wc_sp`, …).
    pub label: String,
    /// Seed the run used.
    pub seed: u64,
    /// Scale preset name ("paper" / "tiny").
    pub scale: String,
    /// The profiled sampling units.
    pub trace: ProfileTrace,
    /// Method names/classes for the trace's `MethodId`s.
    pub registry: MethodRegistry,
}

impl TraceBundle {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("serialize bundle: {e}"))
    }

    /// Parses a bundle, validating the format version.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let bundle: TraceBundle =
            serde_json::from_str(s).map_err(|e| format!("parse bundle: {e}"))?;
        if bundle.version != FORMAT_VERSION {
            return Err(format!(
                "unsupported bundle version {} (expected {FORMAT_VERSION})",
                bundle.version
            ));
        }
        Ok(bundle)
    }

    /// Writes the bundle to `path`.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()?).map_err(|e| format!("write {path}: {e}"))
    }

    /// Loads a bundle from `path`.
    pub fn load(path: &str) -> Result<Self, String> {
        let s = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_workloads::{Benchmark, Framework, WorkloadConfig};

    fn bundle() -> TraceBundle {
        let cfg = WorkloadConfig::tiny(3);
        let out = Benchmark::Grep.run_full(Framework::Spark, &cfg);
        TraceBundle {
            version: FORMAT_VERSION,
            label: "grep_sp".into(),
            seed: 3,
            scale: "tiny".into(),
            trace: out.trace,
            registry: out.registry,
        }
    }

    #[test]
    fn json_roundtrip() {
        let b = bundle();
        let s = b.to_json().unwrap();
        let back = TraceBundle::from_json(&s).unwrap();
        assert_eq!(back.label, "grep_sp");
        assert_eq!(back.trace, b.trace);
        assert_eq!(back.registry.len(), b.registry.len());
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut b = bundle();
        b.version = 999;
        let s = serde_json::to_string(&b).unwrap();
        assert!(TraceBundle::from_json(&s).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let b = bundle();
        let path = std::env::temp_dir().join("simprof_bundle_test.json");
        let path = path.to_str().unwrap();
        b.save(path).unwrap();
        let back = TraceBundle::load(path).unwrap();
        assert_eq!(back.trace, b.trace);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TraceBundle::load("/nonexistent/simprof.json").is_err());
    }
}
