//! The **legacy** on-disk trace format: one monolithic JSON blob holding a
//! profile plus everything needed to interpret it later (method registry,
//! provenance).
//!
//! This format predates the chunked streaming format in `simprof-trace` and
//! is kept for compatibility: every trace-consuming command auto-detects
//! which format a file uses (see [`crate::input::TraceInput`]), and
//! `profile` still writes a bundle when the output path ends in `.json`.
//! Prefer the chunked format for new traces — it is written while the
//! engine runs and read without materializing the whole trace.
//!
//! Bundles are written as *compact* JSON; [`TraceBundle::load`] accepts
//! both compact and the pretty-printed form older versions emitted (JSON
//! parsing is whitespace-insensitive).

use serde::{Deserialize, Serialize};

use simprof_engine::MethodRegistry;
use simprof_profiler::ProfileTrace;

/// Format version written into every bundle.
pub const FORMAT_VERSION: u32 = 1;

/// A self-contained profiled run (legacy monolithic format).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Workload label (`wc_sp`, …).
    pub label: String,
    /// Seed the run used.
    pub seed: u64,
    /// Scale preset name ("paper" / "tiny").
    pub scale: String,
    /// The profiled sampling units.
    pub trace: ProfileTrace,
    /// Method names/classes for the trace's `MethodId`s.
    pub registry: MethodRegistry,
}

impl TraceBundle {
    /// Serializes to compact JSON (roughly half the bytes of the
    /// pretty-printed form this format used to emit; traces dominated by
    /// numeric arrays gain nothing from indentation).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("serialize bundle: {e}"))
    }

    /// Parses a bundle (compact or pretty JSON), validating the format
    /// version.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let bundle: TraceBundle =
            serde_json::from_str(s).map_err(|e| format!("parse bundle: {e}"))?;
        if bundle.version != FORMAT_VERSION {
            return Err(format!(
                "unsupported bundle version {} (expected {FORMAT_VERSION})",
                bundle.version
            ));
        }
        Ok(bundle)
    }

    /// Writes the bundle to `path`.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()?).map_err(|e| format!("write {path}: {e}"))
    }

    /// Loads a bundle from `path`.
    pub fn load(path: &str) -> Result<Self, String> {
        let s = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simprof_workloads::{Benchmark, Framework, WorkloadConfig};

    fn bundle() -> TraceBundle {
        let cfg = WorkloadConfig::tiny(3);
        let out = Benchmark::Grep.run_full(Framework::Spark, &cfg);
        TraceBundle {
            version: FORMAT_VERSION,
            label: "grep_sp".into(),
            seed: 3,
            scale: "tiny".into(),
            trace: out.trace,
            registry: out.registry,
        }
    }

    #[test]
    fn json_roundtrip() {
        let b = bundle();
        let s = b.to_json().unwrap();
        let back = TraceBundle::from_json(&s).unwrap();
        assert_eq!(back.label, "grep_sp");
        assert_eq!(back.trace, b.trace);
        assert_eq!(back.registry.len(), b.registry.len());
    }

    #[test]
    fn compact_output_and_pretty_input_both_supported() {
        let b = bundle();
        let compact = b.to_json().unwrap();
        assert!(!compact.contains('\n'), "bundles are written compact");
        // Pretty JSON from older versions still loads.
        let pretty = serde_json::to_string_pretty(&b).unwrap();
        assert!(pretty.contains('\n'));
        let back = TraceBundle::from_json(&pretty).unwrap();
        assert_eq!(back.trace, b.trace);
        assert!(pretty.len() > compact.len());
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut b = bundle();
        b.version = 999;
        let s = serde_json::to_string(&b).unwrap();
        assert!(TraceBundle::from_json(&s).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let b = bundle();
        let path = std::env::temp_dir().join("simprof_bundle_test.json");
        let path = path.to_str().unwrap();
        b.save(path).unwrap();
        let back = TraceBundle::load(path).unwrap();
        assert_eq!(back.trace, b.trace);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TraceBundle::load("/nonexistent/simprof.json").is_err());
    }
}
