//! The CLI subcommands.

use simprof_core::{input_sensitivity, SimProf, SimProfConfig};
use simprof_engine::MethodId;
use simprof_profiler::{SharedSink, UnitSink};
use simprof_stats::split_seed;
use simprof_trace::{TraceMeta, TraceWriter};
use simprof_workloads::{GraphInput, Kronecker, WorkloadConfig, WorkloadId};

use crate::args::{Options, Scale};
use crate::bundle::{TraceBundle, FORMAT_VERSION};
use crate::input::TraceInput;

fn workload_config(opts: &Options) -> WorkloadConfig {
    match opts.scale {
        Scale::Paper => WorkloadConfig::paper(opts.seed),
        Scale::Tiny => WorkloadConfig::tiny(opts.seed),
    }
}

fn find_workload(label: &str) -> Result<WorkloadId, String> {
    WorkloadId::all().into_iter().find(|w| w.label() == label).ok_or_else(|| {
        let labels: Vec<String> = WorkloadId::all().iter().map(|w| w.label()).collect();
        format!("unknown workload `{label}`; available: {}", labels.join(", "))
    })
}

fn pipeline(opts: &Options) -> SimProf {
    SimProf::new(SimProfConfig { seed: opts.seed, ..Default::default() })
}

/// `simprof list` — the Table I matrix.
pub fn list(_opts: &Options) -> Result<(), String> {
    println!("{:<10} {:<20} framework", "label", "benchmark");
    for w in WorkloadId::all() {
        println!("{:<10} {:<20} {:?}", w.label(), w.benchmark.abbrev(), w.framework);
    }
    Ok(())
}

fn scale_name(opts: &Options) -> String {
    match opts.scale {
        Scale::Paper => "paper".into(),
        Scale::Tiny => "tiny".into(),
    }
}

/// `simprof profile -w <label> [-o trace.sptrc | -o trace.json]`.
///
/// The output format follows the extension: a `.json` path writes the
/// legacy monolithic [`TraceBundle`]; any other path (conventionally
/// `.sptrc`) streams the chunked format — the trace writer is attached to
/// the profiler as a [`UnitSink`], so units hit the disk while the engine
/// is still running instead of being serialized in one blob afterwards.
pub fn profile(opts: &Options) -> Result<(), String> {
    let label = opts.require_workload("profile")?;
    let id = find_workload(label)?;
    let cfg = workload_config(opts);

    let streaming_out = match &opts.output {
        Some(path) if !path.ends_with(".json") => {
            let meta = TraceMeta {
                label: label.to_owned(),
                seed: opts.seed,
                scale: scale_name(opts),
                unit_instrs: cfg.profiler.unit_instrs,
                snapshot_instrs: cfg.profiler.snapshot_instrs,
                core: cfg.profiler.core,
            };
            Some((path.clone(), SharedSink::new(TraceWriter::create(path, &meta)?)))
        }
        _ => None,
    };
    let sinks: Vec<Box<dyn UnitSink>> = match &streaming_out {
        Some((_, writer)) => vec![Box::new(writer.clone())],
        None => Vec::new(),
    };

    let out = id.run_full_with_sinks(&cfg, sinks);
    println!(
        "profiled {label}: {} sampling units × {} instructions ({} methods, {} tasks)",
        out.trace.units.len(),
        out.trace.unit_instrs,
        out.registry.len(),
        out.total_tasks
    );
    println!("oracle CPI {:.4}", out.trace.oracle_cpi());

    match (&opts.output, streaming_out) {
        (Some(_), Some((path, writer))) => {
            let footer = writer.lock().finish(&out.registry)?;
            println!("wrote {path} ({} units, chunked streaming format)", footer.unit_count);
        }
        (Some(path), None) => {
            let bundle = TraceBundle {
                version: FORMAT_VERSION,
                label: label.to_owned(),
                seed: opts.seed,
                scale: scale_name(opts),
                trace: out.trace,
                registry: out.registry,
            };
            bundle.save(path)?;
            println!("wrote {path} (legacy JSON bundle)");
        }
        _ => println!("(no -o/--output given; trace not saved)"),
    }
    Ok(())
}

/// `simprof analyze -i trace.sptrc|trace.json` (format auto-detected; a
/// chunked trace streams through the analysis without being materialized).
pub fn analyze(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("analyze")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    println!(
        "{}: {} units, oracle CPI {:.4}, {} phases",
        input.label,
        analysis.cpis.len(),
        analysis.oracle_cpi(),
        analysis.k()
    );
    println!(
        "homogeneity: population CoV {:.3}, weighted {:.3}, max {:.3}",
        analysis.cov.population, analysis.cov.weighted, analysis.cov.max
    );
    for h in 0..analysis.k() {
        let s = &analysis.stats[h];
        println!(
            "  phase {h}: {:>5.1}% of units | CPI {:.3} ± {:.3} (CoV {:.3})",
            analysis.weights[h] * 100.0,
            s.mean,
            s.stddev,
            s.cov
        );
    }
    Ok(())
}

/// `simprof select -i trace.sptrc|trace.json -n 20 [-o points.json]`.
pub fn select(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("select")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    let est = analysis.estimate(&points, opts.z);
    let oracle = analysis.oracle_cpi();
    println!(
        "selected {} simulation points across {} phases (allocation {:?})",
        points.len(),
        analysis.k(),
        points.allocation
    );
    println!("unit ids: {:?}", points.points);
    println!(
        "estimated CPI {:.4} ± {:.4} (z = {}), oracle {:.4}, error {:.2}%",
        est.mean_cpi,
        opts.z * est.se,
        opts.z,
        oracle,
        (est.mean_cpi - oracle).abs() / oracle * 100.0
    );
    if let Some(path) = &opts.output {
        let json = serde_json::json!({
            "label": input.label,
            "points": points.points,
            "per_phase": points.per_phase,
            "allocation": points.allocation,
            "estimate": est,
        });
        let text =
            serde_json::to_string_pretty(&json).map_err(|e| format!("encode points: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `simprof run -w <label> [-n 20] [--report run.json] [-o points.json]` —
/// the whole pipeline end to end: profile the workload on the simulated
/// substrate, form phases, select simulation points, and estimate.
///
/// With `--report`, the pipeline executes inside an observability session
/// and the versioned JSON run report (span tree, metrics, phase summary,
/// Eq. 1 allocation table, estimate) is written to the given path. Without
/// it, no session starts and every instrumentation hook stays a single
/// relaxed atomic load; either way the numeric output is identical —
/// reports carry timings out, nothing feeds back in.
pub fn run_workload(opts: &Options) -> Result<(), String> {
    let label = opts.require_workload("run")?;
    let id = find_workload(label)?;
    let cfg = workload_config(opts);

    let session = opts.report.as_ref().map(|_| simprof_obs::Session::begin());

    let out = {
        let _span = simprof_obs::span!("cli.profile");
        id.run_full(&cfg)
    };
    println!(
        "profiled {label}: {} sampling units × {} instructions",
        out.trace.units.len(),
        out.trace.unit_instrs
    );
    let analysis = {
        let _span = simprof_obs::span!("cli.phase_formation");
        pipeline(opts).analyze(&out.trace).map_err(|e| format!("analyze: {e}"))?
    };
    let points = {
        let _span = simprof_obs::span!("cli.sampling");
        analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E))
    };
    let est = analysis.estimate(&points, opts.z);
    let oracle = analysis.oracle_cpi();
    println!(
        "{} phases; selected {} points (allocation {:?})",
        analysis.k(),
        points.len(),
        points.allocation
    );
    println!(
        "estimated CPI {:.4} ± {:.4} (z = {}), oracle {:.4}, error {:.2}%",
        est.mean_cpi,
        opts.z * est.se,
        opts.z,
        oracle,
        simprof_core::relative_error(est.mean_cpi, oracle) * 100.0
    );

    if let Some(path) = &opts.output {
        let json = serde_json::json!({
            "label": label,
            "points": points.points,
            "per_phase": points.per_phase,
            "allocation": points.allocation,
            "estimate": est,
        });
        let text =
            serde_json::to_string_pretty(&json).map_err(|e| format!("encode points: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }

    if let (Some(session), Some(path)) = (session, opts.report.as_ref()) {
        let report = session
            .finish()
            .with_section(
                "config",
                serde_json::json!({
                    "workload": label,
                    "scale": match opts.scale { Scale::Paper => "paper", Scale::Tiny => "tiny" },
                    "seed": opts.seed,
                    "points": opts.points,
                    "z": opts.z,
                }),
            )
            .with_section(
                "phases",
                serde_json::json!({
                    "stats": serde_json::to_value(&analysis.stats),
                    "homogeneity": serde_json::to_value(&analysis.cov),
                    "k_scores": serde_json::to_value(&analysis.model.k_scores),
                }),
            )
            .with_section("allocation", serde_json::to_value(&analysis.allocation_table(&points)))
            .with_section("estimate", serde_json::to_value(&est));
        std::fs::write(path, report.to_json_pretty()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote run report {path}");
    }
    Ok(())
}

/// `simprof size -i trace.sptrc|trace.json --error 0.05 [--z 3]`.
pub fn size(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("size")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    let n = analysis.required_size(opts.z, opts.error);
    println!(
        "{}: {} of {} units needed for {:.1}% relative error at z = {}",
        input.label,
        n,
        input.unit_count(),
        opts.error * 100.0,
        opts.z
    );
    Ok(())
}

/// `simprof report -i trace.sptrc|trace.json` — phases with their
/// characteristic methods.
pub fn report(opts: &Options) -> Result<(), String> {
    let input = TraceInput::open(opts.require_input("report")?)?;
    let analysis = input.analyze(&pipeline(opts))?;
    println!("{}: {} phases", input.label, analysis.k());
    for h in 0..analysis.k() {
        let s = &analysis.stats[h];
        println!(
            "phase {h}: weight {:.1}%, CPI {:.3} (CoV {:.3})",
            analysis.weights[h] * 100.0,
            s.mean,
            s.cov
        );
        for (m, w) in analysis.model.top_methods(h, 3) {
            println!("    {:.2}  {}", w, input.registry.name(MethodId(m as u32)));
        }
    }
    Ok(())
}

/// `simprof validate -i trace.json -n 6` — replay each selected simulation
/// point in isolation (fast-forward, cold caches, one-unit warm-up) and
/// compare replayed CPIs against the profile — the end-to-end check that
/// the selected points are actually simulatable.
pub fn validate(opts: &Options) -> Result<(), String> {
    let bundle = TraceInput::open(opts.require_input("validate")?)?.into_bundle()?;
    let id = find_workload(&bundle.label)?;
    let cfg = match bundle.scale.as_str() {
        "tiny" => WorkloadConfig::tiny(bundle.seed),
        _ => WorkloadConfig::paper(bundle.seed),
    };
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let n = opts.points.min(8); // each replay re-runs the job
    let points = analysis.select_points(n, split_seed(opts.seed, 0x5E1E));
    let unit_instrs = bundle.trace.unit_instrs;
    let warmup = unit_instrs;
    println!(
        "{}: replaying {} points (cold restart, {} instruction warm-up)",
        bundle.label,
        points.len(),
        warmup
    );
    println!("{:>7} {:>10} {:>10} {:>8}", "unit", "profiled", "replayed", "delta");
    let mut total = 0.0;
    let mut count = 0.0;
    for &unit in &points.points {
        let profiled = analysis.cpis[unit as usize];
        match id.replay_unit(&cfg, unit, unit_instrs, warmup) {
            Some(replayed) => {
                let delta = (replayed - profiled).abs() / profiled;
                total += delta;
                count += 1.0;
                println!("{unit:>7} {profiled:>10.4} {replayed:>10.4} {:>7.1}%", delta * 100.0);
            }
            None => println!("{unit:>7} {profiled:>10.4} {:>10} {:>8}", "-", "n/a"),
        }
    }
    if count > 0.0 {
        println!("mean per-point replay deviation: {:.1}%", total / count * 100.0);
    }
    Ok(())
}

/// `simprof export -i trace.json -n 20 -o manifest.json` — write the
/// simulation manifest a detailed simulator consumes (instruction
/// intervals, warm-up, phase weights for re-aggregation).
pub fn export(opts: &Options) -> Result<(), String> {
    let bundle = TraceInput::open(opts.require_input("export")?)?.into_bundle()?;
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    let manifest = simprof_core::SimulationManifest::build(&analysis, &bundle.trace, &points)
        .map_err(|e| format!("export: {e}"))?;
    println!(
        "{}: {} points → {} instructions of detailed simulation ({:.1}% of the job)",
        bundle.label,
        manifest.points.len(),
        manifest.simulated_instrs(),
        manifest.simulated_instrs() as f64 / bundle.trace.total_instrs() as f64 * 100.0
    );
    for p in manifest.points.iter().take(5) {
        let method = p
            .dominant_method
            .map(|m| bundle.registry.name(MethodId(m)).to_owned())
            .unwrap_or_else(|| "?".into());
        println!(
            "  unit {:>5}: instrs [{}, {}) warmup {} | phase {} (w {:.2}) | {}",
            p.unit, p.start_instr, p.end_instr, p.warmup_instrs, p.phase, p.phase_weight, method
        );
    }
    if manifest.points.len() > 5 {
        println!("  ... and {} more", manifest.points.len() - 5);
    }
    if let Some(path) = &opts.output {
        let text =
            serde_json::to_string_pretty(&manifest).map_err(|e| format!("encode manifest: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `simprof compare -i trace.json -n 20` — all sampling approaches on one
/// trace (a single-workload Fig. 7 row).
pub fn compare(opts: &Options) -> Result<(), String> {
    use simprof_core::{
        baselines, relative_error, second_points_by_cycles, srs_points, systematic_points,
    };
    let bundle = TraceInput::open(opts.require_input("compare")?)?.into_bundle()?;
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let oracle = analysis.oracle_cpi();
    let n = opts.points;
    println!(
        "{}: oracle CPI {:.4}, {} units, {} phases",
        bundle.label,
        oracle,
        bundle.trace.units.len(),
        analysis.k()
    );
    println!("{:<12} {:>8} {:>10} {:>8}", "approach", "points", "CPI", "error");

    let budget = bundle.trace.total_cycles() / 5;
    let second = second_points_by_cycles(&bundle.trace, budget);
    let reps = 20u64;
    let mut rows: Vec<(&str, usize, f64)> =
        vec![("SECOND", second.points.len(), second.predicted_cpi)];
    let sys = systematic_points(&bundle.trace, n, 0);
    rows.push(("SYSTEMATIC", sys.points.len(), sys.predicted_cpi));
    let mut srs_cpi = 0.0;
    let mut sp_cpi = 0.0;
    for rep in 0..reps {
        let seed = split_seed(opts.seed, 0xC0 + rep);
        srs_cpi += srs_points(&bundle.trace, n, seed).predicted_cpi;
        sp_cpi += baselines::simprof_points(&analysis.model, &bundle.trace, n, seed).predicted_cpi;
    }
    rows.push(("SRS (avg)", n, srs_cpi / reps as f64));
    let code = baselines::code_points(&analysis.model, &bundle.trace);
    rows.push(("CODE", code.points.len(), code.predicted_cpi));
    rows.push(("SimProf (avg)", n, sp_cpi / reps as f64));
    for (name, pts, cpi) in rows {
        println!(
            "{:<12} {:>8} {:>10.4} {:>7.2}%",
            name,
            pts,
            cpi,
            relative_error(cpi, oracle) * 100.0
        );
    }
    Ok(())
}

/// `simprof hybrid -i trace.json -n 20` — the SimProf × systematic
/// estimator at strides 1/2/5/10, with the detailed-simulation budget each
/// stride needs.
pub fn hybrid(opts: &Options) -> Result<(), String> {
    let bundle = TraceInput::open(opts.require_input("hybrid")?)?.into_bundle()?;
    let analysis = pipeline(opts).analyze(&bundle.trace).map_err(|e| format!("analyze: {e}"))?;
    let oracle = analysis.oracle_cpi();
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    println!(
        "{}: {} points over {} phases; oracle CPI {:.4}",
        bundle.label,
        points.len(),
        analysis.k(),
        oracle
    );
    println!(
        "{:>7} {:>10} {:>10} {:>14} {:>12}",
        "stride", "CPI", "error", "sim instrs", "reduction"
    );
    for stride in [1usize, 2, 5, 10] {
        let h = simprof_core::estimate_hybrid(
            &bundle.trace,
            &analysis.model.assignments,
            &points,
            stride,
            opts.z,
        );
        println!(
            "{:>7} {:>10.4} {:>9.2}% {:>14} {:>11.1}%",
            stride,
            h.mean_cpi,
            (h.mean_cpi - oracle).abs() / oracle * 100.0,
            h.simulated_instrs,
            h.slice_reduction() * 100.0
        );
    }
    Ok(())
}

/// `simprof trace-info -i trace.sptrc|trace.json` — trace metadata without
/// an analysis pass.
///
/// For a chunked trace this is O(1) in trace size: the header frame is read
/// from the front and the footer is located through the 12-byte trailer at
/// the end — no unit chunk is ever decoded. Legacy bundles must be parsed
/// whole (the format has no summary section), which is itself a reason to
/// prefer the chunked format.
pub fn trace_info(opts: &Options) -> Result<(), String> {
    let path = opts.require_input("trace-info")?;
    let input = TraceInput::open(path)?;
    match input.footer() {
        Some(footer) => {
            println!("{path}: chunked trace (schema v{})", footer.version);
            println!("  workload        {}", input.label);
            println!("  seed            {}", input.seed);
            println!("  scale           {}", input.scale);
            println!("  units           {}", footer.unit_count);
            println!("  unit size       {} instructions", input.unit_instrs());
            println!("  method universe {}", footer.method_universe);
            println!("  methods interned {}", footer.registry.len());
            println!("  total instrs    {}", footer.total_instrs);
            println!("  total cycles    {}", footer.total_cycles);
            if footer.total_instrs > 0 {
                println!(
                    "  aggregate CPI   {:.4}",
                    footer.total_cycles as f64 / footer.total_instrs as f64
                );
            }
            println!("  truncated units {}", footer.truncated_units);
            println!("  dropped snaps   {}", footer.dropped_snapshots);
        }
        None => {
            println!("{path}: legacy JSON bundle (v{FORMAT_VERSION})");
            println!("  workload        {}", input.label);
            println!("  seed            {}", input.seed);
            println!("  scale           {}", input.scale);
            println!("  units           {}", input.unit_count());
            println!("  unit size       {} instructions", input.unit_instrs());
            println!("  methods interned {}", input.registry.len());
        }
    }
    Ok(())
}

/// `simprof sensitivity -w cc_sp [--threshold 0.10]` — Algorithm 1 over the
/// Table II inputs (graph benchmarks only).
pub fn sensitivity(opts: &Options) -> Result<(), String> {
    let label = opts.require_workload("sensitivity")?;
    let id = find_workload(label)?;
    if !id.benchmark.is_graph() {
        return Err(format!(
            "`sensitivity` needs a graph workload (cc_hp, cc_sp, rank_hp, rank_sp), got {label}"
        ));
    }
    let mut cfg = workload_config(opts);
    // Same scale bump as the Fig. 12/13 harness (see DESIGN.md).
    cfg.graph_scale += 1;
    cfg.graph_degree += 2;

    let train = id.run_full(&cfg);
    let analysis = pipeline(opts).analyze(&train.trace).map_err(|e| format!("analyze: {e}"))?;
    println!("training input Google: {} units, {} phases", train.trace.units.len(), analysis.k());

    let mut references = Vec::new();
    let mut names = Vec::new();
    for &input in GraphInput::ALL.iter().filter(|&&i| i != GraphInput::Google) {
        let g = Kronecker::for_input(input, cfg.graph_scale, cfg.graph_degree)
            .generate(split_seed(cfg.seed, 0x6120 + input as u64));
        let out = id.benchmark.run_on_graph(id.framework, &cfg, &g);
        println!("  profiled reference {:<10} ({} units)", input.label(), out.trace.units.len());
        references.push(out.trace);
        names.push(input.label());
    }
    let refs: Vec<&_> = references.iter().collect();
    let rep = input_sensitivity(&analysis.model, &train.trace, &refs, opts.threshold);

    for h in 0..analysis.k() {
        let movers: Vec<&str> =
            rep.per_reference.iter().zip(&names).filter(|(p, _)| p[h]).map(|(_, &n)| n).collect();
        println!(
            "phase {h} (weight {:.1}%): {}",
            analysis.weights[h] * 100.0,
            if movers.is_empty() {
                "input INSENSITIVE".into()
            } else {
                format!("sensitive — moved by {movers:?}")
            }
        );
    }
    // §III-D-2: name the methods behind the input-sensitive phases.
    let methods = rep.sensitive_methods(&analysis.model, 1);
    if !methods.is_empty() {
        println!("input-sensitive methods:");
        for (h, m, w) in methods {
            println!("  phase {h}: {:.2}  {}", w, train.registry.name(MethodId(m as u32)));
        }
    }
    let points = analysis.select_points(opts.points, split_seed(opts.seed, 0x5E1E));
    let frac = rep.sensitive_point_fraction(&points);
    println!(
        "{}/{} phases sensitive; reference inputs need {:.0}% of the {}-point budget \
         ({:.0}% reduction)",
        rep.sensitive_count(),
        analysis.k(),
        frac * 100.0,
        points.len(),
        (1.0 - frac) * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &str) -> Options {
        let argv: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        Options::parse(&argv).unwrap()
    }

    #[test]
    fn find_workload_resolves_labels() {
        assert!(find_workload("wc_sp").is_ok());
        assert!(find_workload("rank_hp").is_ok());
        let err = find_workload("nope").unwrap_err();
        assert!(err.contains("available"), "{err}");
    }

    #[test]
    fn profile_analyze_select_roundtrip() {
        let dir = std::env::temp_dir().join("simprof_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grep.json");
        let path = path.to_str().unwrap();

        profile(&opts(&format!("-w grep_sp --scale tiny --seed 5 -o {path}"))).unwrap();
        analyze(&opts(&format!("-i {path}"))).unwrap();
        select(&opts(&format!("-i {path} -n 5"))).unwrap();
        size(&opts(&format!("-i {path} --error 0.10"))).unwrap();
        report(&opts(&format!("-i {path}"))).unwrap();
        hybrid(&opts(&format!("-i {path} -n 5"))).unwrap();
        compare(&opts(&format!("-i {path} -n 5"))).unwrap();
        let manifest_path = dir.join("manifest.json");
        let manifest_path = manifest_path.to_str().unwrap();
        export(&opts(&format!("-i {path} -n 5 -o {manifest_path}"))).unwrap();
        validate(&opts(&format!("-i {path} -n 2"))).unwrap();
        trace_info(&opts(&format!("-i {path}"))).unwrap();
        assert!(std::fs::read_to_string(manifest_path).unwrap().contains("warmup_instrs"));
        let _ = std::fs::remove_file(manifest_path);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn chunked_profile_feeds_every_trace_command() {
        let dir = std::env::temp_dir().join("simprof_cli_chunked_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grep.sptrc");
        let path = path.to_str().unwrap();

        // A non-.json output streams the chunked format while profiling.
        profile(&opts(&format!("-w grep_sp --scale tiny --seed 5 -o {path}"))).unwrap();
        assert!(simprof_trace::is_chunked(path), "profile wrote the chunked format");
        trace_info(&opts(&format!("-i {path}"))).unwrap();
        analyze(&opts(&format!("-i {path}"))).unwrap();
        select(&opts(&format!("-i {path} -n 5"))).unwrap();
        size(&opts(&format!("-i {path} --error 0.10"))).unwrap();
        report(&opts(&format!("-i {path}"))).unwrap();
        hybrid(&opts(&format!("-i {path} -n 5"))).unwrap();
        validate(&opts(&format!("-i {path} -n 2"))).unwrap();
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn run_emits_versioned_report_with_required_sections() {
        let dir = std::env::temp_dir().join("simprof_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("run_report.json");
        let report_path = report_path.to_str().unwrap();

        run_workload(&opts(&format!(
            "-w grep_sp --scale tiny --seed 5 -n 5 --report {report_path}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(report_path).unwrap();
        let report: simprof_obs::RunReport = serde_json::from_str(text.trim_end()).unwrap();
        assert_eq!(report.version, simprof_obs::REPORT_VERSION);
        // The span tree covers the three pipeline stages, with the engine
        // and phase-formation internals nested beneath them.
        for stage in ["cli.profile", "cli.phase_formation", "cli.sampling"] {
            assert!(report.find_span(stage).is_some(), "missing span {stage}");
        }
        assert!(report.find_span("cli.profile").unwrap().find("engine.run").is_some());
        assert!(report
            .find_span("cli.phase_formation")
            .unwrap()
            .find("core.form_phases")
            .is_some());
        assert!(report.find_span("cli.sampling").unwrap().find("core.select_points").is_some());
        // Metrics and the caller-attached sections made it through.
        assert!(report.metrics.counters.contains_key("profiler.units"));
        for section in ["config", "phases", "allocation", "estimate"] {
            assert!(report.sections.contains_key(section), "missing section {section}");
        }
        let _ = std::fs::remove_file(report_path);

        // Without --report, the same invocation runs sessionless.
        run_workload(&opts("-w grep_sp --scale tiny --seed 5 -n 5")).unwrap();
    }

    #[test]
    fn sensitivity_rejects_text_workloads() {
        let err = sensitivity(&opts("-w wc_sp --scale tiny")).unwrap_err();
        assert!(err.contains("graph workload"), "{err}");
    }

    #[test]
    fn profile_requires_known_workload() {
        assert!(profile(&opts("-w bogus --scale tiny")).is_err());
    }
}
